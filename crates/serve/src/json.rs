//! A minimal, dependency-free JSON layer for the wire protocol.
//!
//! The server renders every response by hand (like
//! `spider-telemetry`'s stable JSON report) and parses requests with
//! the small recursive-descent parser below, so the wire path has no
//! serde dependency and behaves identically under the offline stub
//! harness and under cargo. The subset is full JSON minus
//! `\u` surrogate-pair pedantry: objects, arrays, strings (all
//! standard escapes; lone surrogates decode to U+FFFD), numbers
//! (parsed as `f64`; integers up to 2^53 round-trip), booleans, null.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; integers round-trip exactly up to 2^53.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys kept as-is).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up a key in an object; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if whole and in range.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.pos));
    }
    Ok(v)
}

/// Appends `s` to `out` as a quoted JSON string with standard escapes.
pub fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 64;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("expected `{lit}` at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'n') => self.eat("null").map(|()| Json::Null),
            Some(b't') => self.eat("true").map(|()| Json::Bool(true)),
            Some(b'f') => self.eat("false").map(|()| Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected byte 0x{b:02x} at offset {}", self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // `[`
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.pos += 1; // `{`
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(":")?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        if self.peek() != Some(b'"') {
            return Err(format!("expected string at offset {}", self.pos));
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let cp = self.hex4()?;
                            // A decodable BMP codepoint, else U+FFFD
                            // (no surrogate-pair reassembly).
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            continue;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at offset {}", self.pos));
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|e| e.to_string())?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err("truncated \\u escape".into());
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end]).map_err(|e| e.to_string())?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.pos = end;
        Ok(cp)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number `{text}` at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let v = parse(r#"{"a":[1,2.5,-3],"b":{"c":"x\ny"},"d":true,"e":null}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x\ny"));
        assert_eq!(v.get("d").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("e"), Some(&Json::Null));
    }

    #[test]
    fn large_integers_round_trip() {
        let v = parse("9007199254740992").unwrap();
        assert_eq!(v.as_u64(), Some(9_007_199_254_740_992));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
    }

    #[test]
    fn escape_round_trips() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\nd\te\u{1}");
        let back = parse(&out).unwrap();
        assert_eq!(back.as_str(), Some("a\"b\\c\nd\te\u{1}"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"\\q\"",
            "1 2",
            "{\"a\" 1}",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse(r#""\u0041\u00e9""#).unwrap().as_str(), Some("Aé"));
        // Lone surrogate degrades to U+FFFD rather than erroring.
        assert_eq!(parse(r#""\ud800""#).unwrap().as_str(), Some("\u{fffd}"));
    }
}
