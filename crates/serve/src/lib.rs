//! # spider-serve
//!
//! A concurrent, multi-tenant query service over the snapshot store —
//! the "live" counterpart to the batch pipeline. The SC '17 study ran
//! its SparkSQL analyses as offline jobs; this crate models the other
//! operating point: many analysts issuing small aggregate queries
//! against the same petascale metadata snapshots, with the operator
//! concerns that come with it.
//!
//! * [`proto`] — a versioned line-delimited JSON wire protocol: a
//!   query is a typed [`spider_snapshot::Pred`] tree plus an
//!   aggregate spec; a response carries the result, staleness marker,
//!   degradation notes, and per-query telemetry.
//! * [`admission`] — per-tenant scan budgets (one token per day
//!   scanned) with manual or per-second refill.
//! * [`engine`] — query execution over a scrubbed store through the
//!   shared [`spider_core::FrameLoader`], with a response cache whose
//!   rendered bytes back the shed path.
//! * [`server`] — the admission state machine and std-thread worker
//!   pool (no async runtime): budget → shed-if-cached → bounded
//!   queue → typed rejection. Graceful degradation means a stale
//!   cached answer beats queueing, and a typed `queue_full` beats an
//!   unbounded backlog.
//! * [`loadgen`] — a seeded closed+open-loop load generator producing
//!   the throughput / latency-quantile curves in `BENCH_serve.json`.
//!
//! Multi-tenancy reaches all the way down: the server attributes each
//! query's frame loads to its tenant via
//! [`spider_core::FrameCache::attribute`], and the cache's
//! fairness-aware eviction keeps one tenant's cold sweep from
//! flushing everyone else's hot days.

#![warn(missing_docs)]

pub mod admission;
pub mod engine;
pub mod json;
pub mod loadgen;
pub mod proto;
pub mod server;

pub use admission::{Admission, Refill};
pub use engine::{CachedAnswer, EngineConfig, ExecResult, QueryEngine, RefreshStats};
pub use loadgen::{
    render_bench_json, run_load, sample_query, scrape_metrics, synth_snapshot, synth_store,
    Arrival, BenchLevel, LoadReport, LoadSpec, QueryPort, TcpPort,
};
pub use proto::{
    parse_metrics_request, trace_from_hex, trace_to_hex, AggSpec, ErrorCode, GroupBy,
    ParsedResponse, ProtoError, Query, QueryCost, METRICS_VERSION, PROTOCOL_VERSION,
};
pub use server::{Client, OutcomeCounts, Server, ServerConfig};
