//! Seeded load generation against a running server.
//!
//! Models the paper's analyst population: a pool of virtual analysts,
//! each drawing from a small deterministic family of query shapes
//! (uid/gid windows, stripe and mtime ranges, extension groups), so
//! the hot set repeats and the server's caches see realistic reuse.
//! Three arrival disciplines:
//!
//! * **closed loop** — each analyst waits for its answer before
//!   sending the next query (steady state);
//! * **open burst** — every request fires back-to-back with no think
//!   time (worst-case flood; exercises shed and reject paths);
//! * **open paced** — requests dispatch on a fixed schedule
//!   regardless of completions (offered-load sweeps). Dispatchers
//!   that fall behind record the lateness as latency rather than
//!   thinning the schedule.
//!
//! All randomness flows from one seed; the same seed against the same
//! store produces the same query sequence.

use crate::proto::{AggSpec, GroupBy, ParsedResponse, Query};
use crate::server::Client;
use rustc_hash::FxHashMap;
use spider_snapshot::record::SnapshotRecord;
use spider_snapshot::store::StoreError;
use spider_snapshot::{OsIo, Pred, RetryPolicy, Snapshot, SnapshotStore};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::Path;
use std::sync::Mutex;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Deterministic synthetic store
// ---------------------------------------------------------------------------

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const EXTS: [&str; 6] = ["dat", "h5", "nc", "txt", "c", "py"];

/// One synthetic weekly snapshot shaped like the serve workload wants:
/// a handful of project trees, uids in `10_000..10_097`, gids in
/// `2_000..2_011`, a known extension palette plus extensionless names.
pub fn synth_snapshot(day: u32, rows: usize, seed: u64) -> Snapshot {
    let mut rng = seed ^ (day as u64).wrapping_mul(0xA076_1D64_78BD_642F);
    let base = 1_420_000_000 + day as u64 * 86_400;
    let records: Vec<SnapshotRecord> = (0..rows)
        .map(|i| {
            let r = splitmix(&mut rng);
            let is_dir = r % 11 == 0;
            let name = if is_dir || r % 7 == 0 {
                format!("set{:03}", r % 500)
            } else {
                format!(
                    "run{:04}.{}",
                    r % 2_000,
                    EXTS[(r >> 6) as usize % EXTS.len()]
                )
            };
            SnapshotRecord {
                path: format!(
                    "/lustre/atlas1/proj{:02}/u{:03}/{name}.{i:06}x/{name}",
                    r % 9,
                    (r >> 8) % 40
                ),
                atime: base - r % 2_000_000,
                ctime: base - (r >> 16) % 4_000_000,
                mtime: base - (r >> 24) % 3_000_000,
                uid: 10_000 + ((r >> 32) % 97) as u32,
                gid: 2_000 + ((r >> 40) % 11) as u32,
                mode: if is_dir { 0o040_770 } else { 0o100_664 },
                ino: day as u64 * 1_000_000 + i as u64,
                osts: if is_dir {
                    Vec::new()
                } else {
                    (0..(1 + (r >> 48) % 4) as u16)
                        .map(|k| (k * 67, (r >> 52) as u32 + k as u32))
                        .collect()
                },
            }
        })
        .collect();
    Snapshot::new(day, base, records)
}

/// Writes `day_count` weekly snapshots (days 0, 7, 14, ...) of `rows`
/// records each into a store at `dir`. Returns the day list.
pub fn synth_store(
    dir: &Path,
    day_count: u32,
    rows: usize,
    seed: u64,
) -> Result<Vec<u32>, StoreError> {
    let mut store =
        SnapshotStore::open_with_io(dir, std::sync::Arc::new(OsIo), RetryPolicy::default())?;
    let mut days = Vec::with_capacity(day_count as usize);
    for week in 0..day_count {
        let day = week * 7;
        if !store.days().contains(&day) {
            store.put(&synth_snapshot(day, rows, seed))?;
        }
        days.push(day);
    }
    Ok(days)
}

// ---------------------------------------------------------------------------
// Query mix
// ---------------------------------------------------------------------------

/// Draws one query from the deterministic shape family. `day_hi` is
/// the last stored day; shapes quantize their parameters so the
/// population revisits a small hot set of distinct fingerprints.
pub fn sample_query(id: u64, tenant: &str, day_hi: u32, draw: u64) -> Query {
    let shape = draw % 12;
    let p1 = (draw >> 8) % 4;
    let p2 = (draw >> 16) % 3;
    let week = 7 * ((draw >> 24) % (day_hi as u64 / 7 + 1)) as u32;
    let (pred, days, agg) = match shape {
        0 => (None, None, AggSpec::Count),
        1 => (None, Some((0, day_hi)), AggSpec::FilesDirs),
        2 => (
            Some(Pred::uid(
                10_000 + 24 * p1 as u32..=10_000 + 24 * p1 as u32 + 23,
            )),
            None,
            AggSpec::Count,
        ),
        3 => (
            Some(Pred::gid(2_000 + 4 * p2 as u32..=2_000 + 4 * p2 as u32 + 3)),
            None,
            AggSpec::StripesSum,
        ),
        4 => (Some(Pred::stripes(2 + p2 as u32..)), None, AggSpec::Count),
        5 => (Some(Pred::ext_in(["h5", "nc"])), None, AggSpec::FilesDirs),
        6 => (Some(Pred::ext_none()), Some((0, day_hi)), AggSpec::Count),
        7 => (
            Some(Pred::mtime(
                1_420_000_000 - 1_000_000 * (1 + p1)..=1_420_000_000 + 86_400 * day_hi as u64,
            )),
            None,
            AggSpec::Count,
        ),
        8 => (
            None,
            Some((week, week)),
            AggSpec::GroupCount {
                by: GroupBy::Uid,
                top: 5,
            },
        ),
        9 => (
            None,
            None,
            AggSpec::GroupCount {
                by: GroupBy::Ext,
                top: 8,
            },
        ),
        10 => (
            Some(Pred::and(vec![
                Pred::uid(10_000..=10_047),
                Pred::stripes(1..),
            ])),
            Some((0, day_hi.min(21))),
            AggSpec::StripesSum,
        ),
        _ => (
            Some(Pred::or(vec![
                Pred::ext_in(["c", "py"]),
                Pred::depth(0..=4),
            ])),
            None,
            AggSpec::GroupCount {
                by: GroupBy::Gid,
                top: 4,
            },
        ),
    };
    Query {
        id,
        trace: 0,
        tenant: tenant.to_string(),
        pred,
        days,
        agg,
    }
}

// ---------------------------------------------------------------------------
// Ports
// ---------------------------------------------------------------------------

/// One request line in, one response line out. Implemented by the
/// in-process [`Client`] and by [`TcpPort`].
pub trait QueryPort: Send {
    /// Submits a line; `Err` means the transport dropped the request.
    fn request(&mut self, line: &str) -> Result<String, String>;
}

impl QueryPort for Client {
    fn request(&mut self, line: &str) -> Result<String, String> {
        Ok(Client::request(self, line))
    }
}

/// A line-oriented TCP connection to a remote server.
pub struct TcpPort {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl TcpPort {
    /// Connects to `addr` (e.g. `127.0.0.1:7474`).
    pub fn connect(addr: &str) -> Result<TcpPort, String> {
        let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
        let reader = BufReader::new(
            stream
                .try_clone()
                .map_err(|e| format!("clone stream: {e}"))?,
        );
        Ok(TcpPort {
            reader,
            writer: BufWriter::new(stream),
        })
    }
}

impl QueryPort for TcpPort {
    fn request(&mut self, line: &str) -> Result<String, String> {
        self.writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
            .and_then(|()| self.writer.flush())
            .map_err(|e| format!("send: {e}"))?;
        let mut response = String::new();
        let n = self
            .reader
            .read_line(&mut response)
            .map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err("connection closed".into());
        }
        Ok(response.trim_end().to_string())
    }
}

// ---------------------------------------------------------------------------
// Load loops
// ---------------------------------------------------------------------------

/// Arrival discipline.
#[derive(Debug, Clone, Copy)]
pub enum Arrival {
    /// Each analyst sends `queries_per_analyst` queries, one at a time.
    Closed {
        /// Queries per analyst.
        queries_per_analyst: usize,
    },
    /// `total` queries fired back-to-back with no pacing.
    OpenBurst {
        /// Total queries across all dispatchers.
        total: usize,
    },
    /// `total` queries dispatched at `qps`, completions ignored.
    OpenPaced {
        /// Offered load in queries per second.
        qps: u64,
        /// Total queries across all dispatchers.
        total: usize,
    },
}

/// One load run's shape.
#[derive(Debug, Clone, Copy)]
pub struct LoadSpec {
    /// Seed for the query mix.
    pub seed: u64,
    /// Virtual analyst population.
    pub analysts: usize,
    /// Distinct tenant names (`t0`, `t1`, ...; analysts round-robin).
    pub tenants: usize,
    /// Dispatcher threads (each with its own port).
    pub threads: usize,
    /// Last stored day (query shapes window against it).
    pub day_hi: u32,
    /// Arrival discipline.
    pub arrival: Arrival,
}

/// What a load run observed.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests sent.
    pub sent: u64,
    /// Responses received (any status).
    pub answered: u64,
    /// Transport-level losses (must be 0 against a healthy server).
    pub dropped: u64,
    /// Fresh answers.
    pub ok: u64,
    /// Stale cached answers.
    pub shed: u64,
    /// Typed admission refusals.
    pub rejected: u64,
    /// Unparseable responses, `status:"error"` lines, or responses
    /// whose correlation id didn't match the request.
    pub protocol_errors: u64,
    /// Shed/ok responses whose `result` bytes disagreed with an
    /// earlier response to the same query (must be 0).
    pub result_mismatches: u64,
    /// Responses missing a trace id, or echoing a different one than
    /// the request carried (must be 0).
    pub trace_violations: u64,
    /// Fresh (`ok`) responses whose stage breakdown — admission +
    /// queue + prune + decode + fold + render — fell outside ±10% of
    /// the reported `total_ns` (must be 0).
    pub stage_sum_violations: u64,
    /// Wall-clock for the whole run.
    pub wall_ns: u64,
    /// Per-request latencies, sorted ascending.
    pub latencies_ns: Vec<u64>,
}

impl LoadReport {
    /// The `q`-quantile latency in nanoseconds (0 when empty).
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.latencies_ns.is_empty() {
            return 0;
        }
        let idx = ((self.latencies_ns.len() - 1) as f64 * q).round() as usize;
        self.latencies_ns[idx.min(self.latencies_ns.len() - 1)]
    }

    /// Achieved throughput in queries per second.
    pub fn achieved_qps(&self) -> f64 {
        if self.wall_ns == 0 {
            return 0.0;
        }
        self.answered as f64 * 1e9 / self.wall_ns as f64
    }

    fn merge(&mut self, other: LoadReport) {
        self.sent += other.sent;
        self.answered += other.answered;
        self.dropped += other.dropped;
        self.ok += other.ok;
        self.shed += other.shed;
        self.rejected += other.rejected;
        self.protocol_errors += other.protocol_errors;
        self.result_mismatches += other.result_mismatches;
        self.trace_violations += other.trace_violations;
        self.stage_sum_violations += other.stage_sum_violations;
        self.latencies_ns.extend(other.latencies_ns);
    }
}

/// Shared across dispatcher threads: the first `result` bytes seen
/// for each fingerprint. Every later ok/shed response must match.
type ResultLedger = Mutex<FxHashMap<u64, String>>;

fn classify(
    report: &mut LoadReport,
    ledger: &ResultLedger,
    query: &Query,
    response: Result<String, String>,
) {
    let line = match response {
        Ok(line) => line,
        Err(_) => {
            report.dropped += 1;
            return;
        }
    };
    report.answered += 1;
    let parsed = match ParsedResponse::parse(&line) {
        Ok(p) => p,
        Err(_) => {
            report.protocol_errors += 1;
            return;
        }
    };
    if parsed.id != query.id {
        report.protocol_errors += 1;
        return;
    }
    // Every response must carry a trace id, and when the request named
    // one the response must echo it exactly.
    if parsed.trace == 0 || (query.trace != 0 && parsed.trace != query.trace) {
        report.trace_violations += 1;
    }
    match parsed.status.as_str() {
        "ok" | "shed" => {
            if parsed.status == "ok" {
                report.ok += 1;
                // Fresh answers expose the full stage decomposition;
                // the stages must cover the request's wall clock.
                match &parsed.cost {
                    Some(cost) => {
                        let sum = cost.admission_ns
                            + cost.queue_ns
                            + cost.prune_ns
                            + cost.decode_ns
                            + cost.fold_ns
                            + cost.render_ns;
                        let slack = cost.total_ns / 10;
                        if sum < cost.total_ns.saturating_sub(slack) || sum > cost.total_ns + slack
                        {
                            report.stage_sum_violations += 1;
                        }
                    }
                    None => report.stage_sum_violations += 1,
                }
            } else {
                report.shed += 1;
            }
            if let Some(result) = parsed.result_raw {
                let mut ledger = ledger.lock().unwrap();
                match ledger.get(&query.fingerprint()) {
                    Some(first) if *first != result => report.result_mismatches += 1,
                    Some(_) => {}
                    None => {
                        ledger.insert(query.fingerprint(), result);
                    }
                }
            } else {
                report.protocol_errors += 1;
            }
        }
        "rejected" => report.rejected += 1,
        _ => report.protocol_errors += 1,
    }
}

/// Runs one load phase. `connect` supplies each dispatcher thread its
/// own port; the run fails only if a port cannot be created at all.
pub fn run_load<F>(spec: LoadSpec, connect: F) -> Result<LoadReport, String>
where
    F: Fn() -> Result<Box<dyn QueryPort>, String> + Sync,
{
    let threads = spec.threads.max(1);
    let ledger = ResultLedger::default();
    let started = Instant::now();
    let reports: Vec<Result<LoadReport, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|worker| {
                let connect = &connect;
                let ledger = &ledger;
                scope.spawn(move || dispatcher(spec, worker, threads, connect, ledger, started))
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut merged = LoadReport::default();
    for report in reports {
        merged.merge(report?);
    }
    merged.wall_ns = started.elapsed().as_nanos() as u64;
    merged.latencies_ns.sort_unstable();
    Ok(merged)
}

fn dispatcher(
    spec: LoadSpec,
    worker: usize,
    threads: usize,
    connect: &(dyn Fn() -> Result<Box<dyn QueryPort>, String> + Sync),
    ledger: &ResultLedger,
    epoch: Instant,
) -> Result<LoadReport, String> {
    let mut port = connect()?;
    let mut report = LoadReport::default();
    let mut send = |report: &mut LoadReport, analyst: usize, round: usize| {
        let tenant = format!("t{}", analyst % spec.tenants.max(1));
        let mut rng = spec
            .seed
            .wrapping_add((analyst as u64) << 32)
            .wrapping_add(round as u64);
        let draw = splitmix(&mut rng);
        let id = (analyst as u64) << 20 | round as u64;
        let mut query = sample_query(id, &tenant, spec.day_hi, draw);
        // Tag the request with a deterministic, nonzero trace id so the
        // echo (and its propagation through server spans) is checkable.
        query.trace = (draw ^ (id << 1)) | 1;
        let line = query.render();
        let sent_at = Instant::now();
        report.sent += 1;
        let response = port.request(&line);
        report
            .latencies_ns
            .push(sent_at.elapsed().as_nanos() as u64);
        classify(report, ledger, &query, response);
    };
    match spec.arrival {
        Arrival::Closed {
            queries_per_analyst,
        } => {
            // Analysts are striped across dispatchers; each dispatcher
            // serializes its analysts, so every analyst is closed-loop.
            for round in 0..queries_per_analyst {
                for analyst in (worker..spec.analysts.max(1)).step_by(threads) {
                    send(&mut report, analyst, round);
                }
            }
        }
        Arrival::OpenBurst { total } => {
            let mine = share(total, worker, threads);
            for k in 0..mine {
                let seq = worker + k * threads;
                send(&mut report, seq % spec.analysts.max(1), seq);
            }
        }
        Arrival::OpenPaced { qps, total } => {
            let mine = share(total, worker, threads);
            let interval =
                Duration::from_nanos(1_000_000_000u64.saturating_mul(threads as u64) / qps.max(1));
            for k in 0..mine {
                let seq = worker + k * threads;
                let due = epoch + interval.saturating_mul(k as u32) + interval / threads as u32;
                if let Some(wait) = due.checked_duration_since(Instant::now()) {
                    std::thread::sleep(wait);
                }
                send(&mut report, seq % spec.analysts.max(1), seq);
            }
        }
    }
    Ok(report)
}

fn share(total: usize, worker: usize, threads: usize) -> usize {
    total / threads + usize::from(worker < total % threads)
}

/// Scrapes the server's `metrics` endpoint through `port`, returning
/// the raw response line. Sweeps call this between phases so each
/// bench level carries the telemetry the phase accumulated.
pub fn scrape_metrics(port: &mut dyn QueryPort) -> Result<String, String> {
    let line = port.request("{\"v\":1,\"metrics\":true}")?;
    if !line.contains("\"status\":\"metrics\"") {
        return Err(format!("not a metrics response: {line}"));
    }
    Ok(line)
}

// ---------------------------------------------------------------------------
// Bench rendering
// ---------------------------------------------------------------------------

/// One offered-load level of a sweep.
pub struct BenchLevel {
    /// Human label (`0.5x`, `2.0x`, ...).
    pub label: String,
    /// Offered load in qps (0 = closed-loop, as fast as answers come).
    pub offered_qps: u64,
    /// What the run observed.
    pub report: LoadReport,
    /// The raw `metrics` scrape taken right after the phase, when the
    /// sweep scraped one (see [`scrape_metrics`]).
    pub telemetry: Option<String>,
}

/// Renders `BENCH_serve.json`: throughput and latency quantiles per
/// offered-load level, stable field order, hand-rendered like every
/// other bench artifact in this repo.
pub fn render_bench_json(
    seed: u64,
    store_days: u32,
    rows_per_day: usize,
    levels: &[BenchLevel],
) -> String {
    let mut out = String::with_capacity(512);
    out.push_str(&format!(
        "{{\n  \"schema_version\": 1,\n  \"bench\": \"serve\",\n  \"seed\": {seed},\n  \"store\": {{\"days\": {store_days}, \"rows_per_day\": {rows_per_day}}},\n  \"levels\": [\n"
    ));
    for (i, level) in levels.iter().enumerate() {
        let r = &level.report;
        let telemetry = match &level.telemetry {
            // The scrape line is already JSON — embed it verbatim.
            Some(line) => format!(", \"telemetry\": {line}"),
            None => String::new(),
        };
        out.push_str(&format!(
            "    {{\"label\": \"{}\", \"offered_qps\": {}, \"achieved_qps\": {:.1}, \"sent\": {}, \"answered\": {}, \"ok\": {}, \"shed\": {}, \"rejected\": {}, \"protocol_errors\": {}, \"dropped\": {}, \"result_mismatches\": {}, \"trace_violations\": {}, \"stage_sum_violations\": {}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \"max_us\": {}, \"wall_ms\": {}{}}}{}\n",
            level.label,
            level.offered_qps,
            r.achieved_qps(),
            r.sent,
            r.answered,
            r.ok,
            r.shed,
            r.rejected,
            r.protocol_errors,
            r.dropped,
            r.result_mismatches,
            r.trace_violations,
            r.stage_sum_violations,
            r.quantile_ns(0.50) / 1_000,
            r.quantile_ns(0.95) / 1_000,
            r.quantile_ns(0.99) / 1_000,
            r.latencies_ns.last().copied().unwrap_or(0) / 1_000,
            r.wall_ns / 1_000_000,
            telemetry,
            if i + 1 < levels.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synth_snapshot_is_deterministic() {
        let a = synth_snapshot(7, 100, 42);
        let b = synth_snapshot(7, 100, 42);
        assert_eq!(a.records().len(), 100);
        assert_eq!(
            spider_snapshot::colf::encode(&a),
            spider_snapshot::colf::encode(&b)
        );
        let c = synth_snapshot(7, 100, 43);
        assert_ne!(
            spider_snapshot::colf::encode(&a),
            spider_snapshot::colf::encode(&c)
        );
    }

    #[test]
    fn query_mix_is_deterministic_and_repeats() {
        let a = sample_query(1, "t0", 35, 777);
        let b = sample_query(1, "t0", 35, 777);
        assert_eq!(a, b);
        // The shape family quantizes parameters: a modest number of
        // draws must revisit fingerprints (the hot set the shed path
        // relies on).
        let mut fps = std::collections::HashSet::new();
        for draw in 0..200u64 {
            let mut rng = draw;
            fps.insert(sample_query(0, "t0", 35, splitmix(&mut rng)).fingerprint());
        }
        assert!(
            fps.len() < 120,
            "expected a bounded hot set, got {}",
            fps.len()
        );
    }

    #[test]
    fn quantiles_and_shares() {
        let report = LoadReport {
            latencies_ns: (1..=100).collect(),
            ..LoadReport::default()
        };
        assert_eq!(report.quantile_ns(0.0), 1);
        assert_eq!(report.quantile_ns(0.5), 51);
        assert_eq!(report.quantile_ns(1.0), 100);
        assert_eq!(
            (0..4).map(|w| share(10, w, 4)).collect::<Vec<_>>(),
            vec![3, 3, 2, 2]
        );
    }

    #[test]
    fn bench_json_is_well_formed() {
        let levels = [BenchLevel {
            label: "1.0x".into(),
            offered_qps: 100,
            report: LoadReport {
                sent: 10,
                answered: 10,
                ok: 8,
                shed: 2,
                wall_ns: 1_000_000_000,
                latencies_ns: vec![1_000; 10],
                ..LoadReport::default()
            },
            telemetry: Some("{\"status\":\"metrics\",\"scrape\":0}".into()),
        }];
        let text = render_bench_json(42, 6, 500, &levels);
        let doc = crate::json::parse(&text).unwrap();
        assert_eq!(doc.get("bench").unwrap().as_str(), Some("serve"));
        let level = &doc.get("levels").unwrap().as_arr().unwrap()[0];
        assert_eq!(level.get("sent").unwrap().as_u64(), Some(10));
        assert_eq!(level.get("trace_violations").unwrap().as_u64(), Some(0));
        // The embedded scrape stays structured, not stringified.
        assert_eq!(
            level
                .get("telemetry")
                .unwrap()
                .get("scrape")
                .unwrap()
                .as_u64(),
            Some(0)
        );
    }
}
