//! The line-delimited wire protocol (version 1).
//!
//! One request per line, one response per line. A request is a JSON
//! object:
//!
//! ```json
//! {"v":1,"id":7,"tenant":"climate","agg":"count","pred":{"uid":[10000,10010]}}
//! ```
//!
//! * `v` — protocol version (required, must be `1`);
//! * `id` — caller-chosen correlation id, echoed back (default 0);
//! * `tenant` — tenant name for admission control (default `"anon"`);
//! * `agg` — `"count"`, `"files_dirs"`, `"stripes_sum"`, or
//!   `{"group_count":{"by":"uid"|"gid"|"ext","top":N}}`;
//! * `pred` — optional [`Pred`] tree (see [`pred_from_json`]);
//! * `days` — optional `[lo,hi]` inclusive day window, ANDed into the
//!   predicate;
//! * `trace` — optional hex trace id: echoed in the response and
//!   stamped on every telemetry event inside the query's extent
//!   (minted by the server's front-end when absent).
//!
//! A `{"v":1,"metrics":true}` line is a **metrics scrape**, answered by
//! the front-end without queueing ([`parse_metrics_request`]): the
//! response carries the live [`spider_telemetry::TelemetrySnapshot`]
//! plus counter deltas since the previous scrape and per-tenant gauges.
//!
//! A response echoes `v`, `id`, and `trace` and carries a `status`:
//!
//! * `"ok"` — fresh result, `"stale":false`;
//! * `"shed"` — the admission controller served a cached answer under
//!   load, `"stale":true`; the `result` bytes are identical to the
//!   `ok` response they were cached from;
//! * `"rejected"` — typed admission refusal (`over_budget`,
//!   `queue_full`); the query was **not** executed;
//! * `"error"` — protocol or execution failure (`bad_query`,
//!   `unsupported_version`, `store`, `internal`).

use crate::json::{self, Json};
use spider_snapshot::Pred;

/// The wire protocol version this build speaks.
pub const PROTOCOL_VERSION: u64 = 1;

// ---------------------------------------------------------------------------
// Queries
// ---------------------------------------------------------------------------

/// Grouping key for [`AggSpec::GroupCount`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroupBy {
    /// Group matched rows by owner uid.
    Uid,
    /// Group matched rows by owner gid (project allocation).
    Gid,
    /// Group matched rows by file extension.
    Ext,
}

impl GroupBy {
    fn as_str(self) -> &'static str {
        match self {
            GroupBy::Uid => "uid",
            GroupBy::Gid => "gid",
            GroupBy::Ext => "ext",
        }
    }
}

/// What to compute over the rows matched by the predicate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggSpec {
    /// Matched row count.
    Count,
    /// Matched file and directory counts.
    FilesDirs,
    /// Sum of stripe counts over matched rows (the study's size proxy).
    StripesSum,
    /// Top-N group counts by uid/gid/extension.
    GroupCount {
        /// Grouping key.
        by: GroupBy,
        /// How many groups to return (count-descending, key-ascending).
        top: usize,
    },
}

/// A parsed query.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// Caller correlation id, echoed in the response.
    pub id: u64,
    /// Tenant name for admission control.
    pub tenant: String,
    /// Optional predicate tree.
    pub pred: Option<Pred>,
    /// Optional inclusive day window.
    pub days: Option<(u32, u32)>,
    /// Aggregate to compute.
    pub agg: AggSpec,
    /// Trace id (0 = unset): minted by the client, or by the server's
    /// front-end when absent; echoed in the response and stamped on
    /// every telemetry event inside the query's extent. Wire form:
    /// lowercase hex digits.
    pub trace: u64,
}

/// A typed request-parse failure: the error code, a human detail, and
/// whatever correlation id could be salvaged from the line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Typed error code.
    pub code: ErrorCode,
    /// Human-readable detail.
    pub detail: String,
    /// Parsed `id`, or 0 when the line was unparseable.
    pub id: u64,
}

impl ProtoError {
    fn bad(id: u64, detail: impl Into<String>) -> ProtoError {
        ProtoError {
            code: ErrorCode::BadQuery,
            detail: detail.into(),
            id,
        }
    }
}

impl Query {
    /// Parses one request line.
    pub fn parse(line: &str) -> Result<Query, ProtoError> {
        let doc = json::parse(line).map_err(|e| ProtoError::bad(0, format!("not JSON: {e}")))?;
        if !matches!(doc, Json::Obj(_)) {
            return Err(ProtoError::bad(0, "request must be a JSON object"));
        }
        let id = doc.get("id").and_then(Json::as_u64).unwrap_or(0);
        let version = doc
            .get("v")
            .and_then(Json::as_u64)
            .ok_or_else(|| ProtoError::bad(id, "missing protocol version `v`"))?;
        if version != PROTOCOL_VERSION {
            return Err(ProtoError {
                code: ErrorCode::UnsupportedVersion,
                detail: format!(
                    "protocol version {version} (this server speaks {PROTOCOL_VERSION})"
                ),
                id,
            });
        }
        let tenant = match doc.get("tenant") {
            None => "anon".to_string(),
            Some(t) => t
                .as_str()
                .ok_or_else(|| ProtoError::bad(id, "`tenant` must be a string"))?
                .to_string(),
        };
        if tenant.is_empty() || tenant.len() > 64 {
            return Err(ProtoError::bad(id, "`tenant` must be 1..=64 bytes"));
        }
        let pred = match doc.get("pred") {
            None | Some(Json::Null) => None,
            Some(p) => Some(pred_from_json(p).map_err(|e| ProtoError::bad(id, e))?),
        };
        let days = match doc.get("days") {
            None | Some(Json::Null) => None,
            Some(d) => {
                let (lo, hi) = u32_pair(d).ok_or_else(|| {
                    ProtoError::bad(id, "`days` must be a [lo,hi] pair of day numbers")
                })?;
                if lo > hi {
                    return Err(ProtoError::bad(id, "`days` lo exceeds hi"));
                }
                Some((lo, hi))
            }
        };
        let agg = match doc.get("agg") {
            None => AggSpec::Count,
            Some(a) => agg_from_json(a).map_err(|e| ProtoError::bad(id, e))?,
        };
        let trace = match doc.get("trace") {
            None | Some(Json::Null) => 0,
            Some(t) => t
                .as_str()
                .and_then(trace_from_hex)
                .ok_or_else(|| ProtoError::bad(id, "`trace` must be a hex string"))?,
        };
        Ok(Query {
            id,
            tenant,
            pred,
            days,
            agg,
            trace,
        })
    }

    /// The predicate actually evaluated: `pred AND days`, where a
    /// missing `pred` matches everything.
    pub fn effective_pred(&self) -> Pred {
        let mut parts = Vec::new();
        if let Some((lo, hi)) = self.days {
            parts.push(Pred::day(lo..=hi));
        }
        if let Some(p) = &self.pred {
            parts.push(p.clone());
        }
        Pred::and(parts)
    }

    /// A stable identity for the *answer* this query produces:
    /// predicate fingerprint mixed with the aggregate spec. Two queries
    /// with the same fingerprint return byte-identical `result` fields,
    /// which is what lets the shed path reuse cached answers.
    pub fn fingerprint(&self) -> u64 {
        let mut h = self.effective_pred().fingerprint();
        h = mix64(h ^ 0x5345_5256_4501); // "SERVE\x01"
        match &self.agg {
            AggSpec::Count => h = mix64(h ^ 1),
            AggSpec::FilesDirs => h = mix64(h ^ 2),
            AggSpec::StripesSum => h = mix64(h ^ 3),
            AggSpec::GroupCount { by, top } => {
                h = mix64(h ^ 4 ^ ((*by as u64) << 8) ^ ((*top as u64) << 16));
            }
        }
        h
    }

    /// Renders the query as a request line (client side; no trailing
    /// newline).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(96);
        out.push_str(&format!("{{\"v\":{PROTOCOL_VERSION},\"id\":{},", self.id));
        if self.trace != 0 {
            out.push_str(&format!("\"trace\":\"{}\",", trace_to_hex(self.trace)));
        }
        out.push_str("\"tenant\":");
        json::escape_into(&mut out, &self.tenant);
        out.push_str(",\"agg\":");
        match &self.agg {
            AggSpec::Count => out.push_str("\"count\""),
            AggSpec::FilesDirs => out.push_str("\"files_dirs\""),
            AggSpec::StripesSum => out.push_str("\"stripes_sum\""),
            AggSpec::GroupCount { by, top } => {
                out.push_str(&format!(
                    "{{\"group_count\":{{\"by\":\"{}\",\"top\":{top}}}}}",
                    by.as_str()
                ));
            }
        }
        if let Some((lo, hi)) = self.days {
            out.push_str(&format!(",\"days\":[{lo},{hi}]"));
        }
        if let Some(p) = &self.pred {
            out.push_str(",\"pred\":");
            render_pred(p, &mut out);
        }
        out.push('}');
        out
    }
}

/// The wire spelling of a trace id: 16 lowercase hex digits.
pub fn trace_to_hex(trace: u64) -> String {
    format!("{trace:016x}")
}

/// Parses a wire trace id (any-length hex, matching what we render).
pub fn trace_from_hex(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// Version of the `metrics` scrape response payload. Bumped when the
/// scrape's field set changes shape (the embedded telemetry snapshot
/// has its own `schema_version`).
pub const METRICS_VERSION: u64 = 1;

/// Recognizes a `metrics` scrape request — `{"v":1,"metrics":true}`,
/// optionally with an `id` — returning the correlation id. The server's
/// front-end answers these directly without queueing a query.
pub fn parse_metrics_request(line: &str) -> Option<u64> {
    if !line.contains("\"metrics\"") {
        return None;
    }
    let doc = json::parse(line).ok()?;
    if doc.get("v").and_then(Json::as_u64)? != PROTOCOL_VERSION {
        return None;
    }
    if doc.get("metrics").and_then(Json::as_bool) != Some(true) {
        return None;
    }
    Some(doc.get("id").and_then(Json::as_u64).unwrap_or(0))
}

fn mix64(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    x ^= x >> 33;
    x = x.wrapping_mul(0xC4CE_B9FE_1A85_EC53);
    x ^ (x >> 33)
}

fn u32_pair(v: &Json) -> Option<(u32, u32)> {
    let items = v.as_arr()?;
    if items.len() != 2 {
        return None;
    }
    let lo = items[0].as_u64()?;
    let hi = items[1].as_u64()?;
    Some((u32::try_from(lo).ok()?, u32::try_from(hi).ok()?))
}

fn u64_pair(v: &Json) -> Option<(u64, u64)> {
    let items = v.as_arr()?;
    if items.len() != 2 {
        return None;
    }
    Some((items[0].as_u64()?, items[1].as_u64()?))
}

fn agg_from_json(v: &Json) -> Result<AggSpec, String> {
    if let Some(name) = v.as_str() {
        return match name {
            "count" => Ok(AggSpec::Count),
            "files_dirs" => Ok(AggSpec::FilesDirs),
            "stripes_sum" => Ok(AggSpec::StripesSum),
            other => Err(format!("unknown aggregate `{other}`")),
        };
    }
    let gc = v
        .get("group_count")
        .ok_or("`agg` must be a name or {\"group_count\":...}")?;
    let by = match gc.get("by").and_then(Json::as_str) {
        Some("uid") => GroupBy::Uid,
        Some("gid") => GroupBy::Gid,
        Some("ext") => GroupBy::Ext,
        _ => return Err("`group_count.by` must be uid|gid|ext".into()),
    };
    let top = gc.get("top").and_then(Json::as_u64).unwrap_or(10);
    if top == 0 || top > 1_000 {
        return Err("`group_count.top` must be 1..=1000".into());
    }
    Ok(AggSpec::GroupCount {
        by,
        top: top as usize,
    })
}

/// Decodes a predicate tree from its JSON form. Each node is an
/// object with exactly one key: a range field (`day`, `uid`, `gid`,
/// `depth`, `stripes` as `[lo,hi]` u32; `mtime`, `atime` as `[lo,hi]`
/// u64), `ext` (array of extension strings), `ext_none` (`true`), or
/// a combinator (`and` / `or` over child arrays).
pub fn pred_from_json(v: &Json) -> Result<Pred, String> {
    let Json::Obj(fields) = v else {
        return Err("predicate must be a JSON object".into());
    };
    if fields.len() != 1 {
        return Err(format!(
            "predicate node must have exactly one key, got {}",
            fields.len()
        ));
    }
    let (key, val) = &fields[0];
    let range32 =
        |what: &str| u32_pair(val).ok_or_else(|| format!("`{what}` wants a [lo,hi] pair of u32"));
    let range64 =
        |what: &str| u64_pair(val).ok_or_else(|| format!("`{what}` wants a [lo,hi] pair of u64"));
    match key.as_str() {
        "day" => range32("day").map(|(lo, hi)| Pred::day(lo..=hi)),
        "uid" => range32("uid").map(|(lo, hi)| Pred::uid(lo..=hi)),
        "gid" => range32("gid").map(|(lo, hi)| Pred::gid(lo..=hi)),
        "depth" => range32("depth").map(|(lo, hi)| Pred::depth(lo..=hi)),
        "stripes" => range32("stripes").map(|(lo, hi)| Pred::stripes(lo..=hi)),
        "mtime" => range64("mtime").map(|(lo, hi)| Pred::mtime(lo..=hi)),
        "atime" => range64("atime").map(|(lo, hi)| Pred::atime(lo..=hi)),
        "ext" => {
            let items = val.as_arr().ok_or("`ext` wants an array of strings")?;
            let mut exts = Vec::with_capacity(items.len());
            for item in items {
                exts.push(
                    item.as_str()
                        .ok_or("`ext` wants an array of strings")?
                        .to_string(),
                );
            }
            if exts.is_empty() {
                return Err("`ext` wants at least one extension".into());
            }
            Ok(Pred::ext_in(exts))
        }
        "ext_none" => match val.as_bool() {
            Some(true) => Ok(Pred::ext_none()),
            _ => Err("`ext_none` wants the literal true".into()),
        },
        "and" | "or" => {
            let items = val
                .as_arr()
                .ok_or_else(|| format!("`{key}` wants an array of predicates"))?;
            let children = items
                .iter()
                .map(pred_from_json)
                .collect::<Result<Vec<_>, _>>()?;
            if key == "and" {
                Ok(Pred::and(children))
            } else {
                Ok(Pred::or(children))
            }
        }
        other => Err(format!("unknown predicate key `{other}`")),
    }
}

/// Renders a predicate tree in the wire form [`pred_from_json`] reads.
pub fn render_pred(p: &Pred, out: &mut String) {
    match p {
        Pred::Day { lo, hi } => out.push_str(&format!("{{\"day\":[{lo},{hi}]}}")),
        Pred::Uid { lo, hi } => out.push_str(&format!("{{\"uid\":[{lo},{hi}]}}")),
        Pred::Gid { lo, hi } => out.push_str(&format!("{{\"gid\":[{lo},{hi}]}}")),
        Pred::Depth { lo, hi } => out.push_str(&format!("{{\"depth\":[{lo},{hi}]}}")),
        Pred::Stripes { lo, hi } => out.push_str(&format!("{{\"stripes\":[{lo},{hi}]}}")),
        Pred::Mtime { lo, hi } => out.push_str(&format!("{{\"mtime\":[{lo},{hi}]}}")),
        Pred::Atime { lo, hi } => out.push_str(&format!("{{\"atime\":[{lo},{hi}]}}")),
        Pred::ExtIn(exts) => {
            out.push_str("{\"ext\":[");
            for (i, e) in exts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                json::escape_into(out, e);
            }
            out.push_str("]}");
        }
        Pred::ExtNone => out.push_str("{\"ext_none\":true}"),
        Pred::And(children) | Pred::Or(children) => {
            out.push_str(if matches!(p, Pred::And(_)) {
                "{\"and\":["
            } else {
                "{\"or\":["
            });
            for (i, c) in children.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                render_pred(c, out);
            }
            out.push_str("]}");
        }
    }
}

// ---------------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------------

/// Typed error / rejection codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The request line did not parse into a valid query.
    BadQuery,
    /// The request named a protocol version this server doesn't speak.
    UnsupportedVersion,
    /// Admission: the tenant's scan budget is exhausted and no cached
    /// answer exists.
    OverBudget,
    /// Admission: the work queue is at capacity and no cached answer
    /// exists.
    QueueFull,
    /// The snapshot store failed while executing the query.
    Store,
    /// The server lost the worker mid-query.
    Internal,
}

impl ErrorCode {
    /// Wire spelling of the code.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::BadQuery => "bad_query",
            ErrorCode::UnsupportedVersion => "unsupported_version",
            ErrorCode::OverBudget => "over_budget",
            ErrorCode::QueueFull => "queue_full",
            ErrorCode::Store => "store",
            ErrorCode::Internal => "internal",
        }
    }

    /// True for genuine protocol/execution failures. `over_budget` and
    /// `queue_full` are *admission outcomes*, not protocol errors —
    /// the load generator counts them separately.
    pub fn is_protocol_error(self) -> bool {
        !matches!(self, ErrorCode::OverBudget | ErrorCode::QueueFull)
    }
}

/// Per-query timing and scan effort, echoed in `ok`/`shed` responses.
///
/// The stage fields decompose a fresh execution end to end:
/// `admission + queue + prune + decode + fold + render` covers the
/// request's `total_ns` up to front-end/worker glue (enforced to within
/// 10% by the serve soak). `render_ns` is defined as the exec wall time
/// not spent in prune/decode/fold plus response assembly, so the
/// decomposition is exact by construction inside the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCost {
    /// Nanoseconds spent queued before a worker picked the query up.
    pub queue_ns: u64,
    /// Nanoseconds of execution (0 for shed answers).
    pub exec_ns: u64,
    /// Days actually scanned (for shed answers: the original scan's).
    pub days_scanned: u64,
    /// Rows matched.
    pub rows: u64,
    /// Nanoseconds in the admission front-end (parse to verdict).
    pub admission_ns: u64,
    /// Execution: predicate compile + zone-map day pruning.
    pub prune_ns: u64,
    /// Execution: frame load/decode (cache misses pay here).
    pub decode_ns: u64,
    /// Execution: the row / fast-path fold over surviving days.
    pub fold_ns: u64,
    /// Execution remainder + response assembly.
    pub render_ns: u64,
    /// Front-end arrival to response render, wall clock.
    pub total_ns: u64,
}

fn render_answer(
    id: u64,
    trace: u64,
    status: &str,
    stale: bool,
    result: &str,
    notes: &[String],
    cost: QueryCost,
) -> String {
    let mut out = String::with_capacity(result.len() + notes.len() * 48 + 256);
    out.push_str(&format!(
        "{{\"v\":{PROTOCOL_VERSION},\"id\":{id},\"trace\":\"{}\",\"status\":\"{status}\",\"stale\":{stale},\"result\":{result},\"notes\":[",
        trace_to_hex(trace)
    ));
    for (i, note) in notes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::escape_into(&mut out, note);
    }
    out.push_str(&format!(
        "],\"telemetry\":{{\"queue_ns\":{},\"exec_ns\":{},\"admission_ns\":{},\"prune_ns\":{},\"decode_ns\":{},\"fold_ns\":{},\"render_ns\":{},\"total_ns\":{},\"days_scanned\":{},\"rows\":{}}}}}",
        cost.queue_ns,
        cost.exec_ns,
        cost.admission_ns,
        cost.prune_ns,
        cost.decode_ns,
        cost.fold_ns,
        cost.render_ns,
        cost.total_ns,
        cost.days_scanned,
        cost.rows
    ));
    out
}

/// Renders a fresh `ok` response.
pub fn render_ok(id: u64, trace: u64, result: &str, notes: &[String], cost: QueryCost) -> String {
    render_answer(id, trace, "ok", false, result, notes, cost)
}

/// Renders a `shed` response reusing a cached answer's `result` bytes
/// verbatim (the staleness marker is the `"status":"shed"` +
/// `"stale":true` pair).
pub fn render_shed(id: u64, trace: u64, result: &str, notes: &[String], cost: QueryCost) -> String {
    render_answer(id, trace, "shed", true, result, notes, cost)
}

/// Renders a typed admission rejection (the query did not run).
pub fn render_rejected(id: u64, trace: u64, code: ErrorCode, detail: &str) -> String {
    let mut out = String::with_capacity(96);
    out.push_str(&format!(
        "{{\"v\":{PROTOCOL_VERSION},\"id\":{id},\"trace\":\"{}\",\"status\":\"rejected\",\"code\":\"{}\",\"detail\":",
        trace_to_hex(trace),
        code.as_str()
    ));
    json::escape_into(&mut out, detail);
    out.push('}');
    out
}

/// Renders a typed error response.
pub fn render_error(id: u64, trace: u64, code: ErrorCode, detail: &str) -> String {
    let mut out = String::with_capacity(96);
    out.push_str(&format!(
        "{{\"v\":{PROTOCOL_VERSION},\"id\":{id},\"trace\":\"{}\",\"status\":\"error\",\"code\":\"{}\",\"detail\":",
        trace_to_hex(trace),
        code.as_str()
    ));
    json::escape_into(&mut out, detail);
    out.push('}');
    out
}

/// Extracts the raw `result` bytes from a rendered response line —
/// the exact substring, so shed-vs-ok byte identity can be asserted
/// without re-rendering. Returns `None` for reject/error lines.
pub fn extract_result_raw(line: &str) -> Option<&str> {
    let key = "\"result\":";
    let start = line.find(key)? + key.len();
    let bytes = line.as_bytes();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    for (i, &b) in bytes[start..].iter().enumerate() {
        if in_str {
            if escaped {
                escaped = false;
            } else if b == b'\\' {
                escaped = true;
            } else if b == b'"' {
                in_str = false;
            }
            continue;
        }
        match b {
            b'"' => in_str = true,
            b'{' | b'[' => depth += 1,
            b'}' | b']' => {
                depth -= 1;
                if depth == 0 {
                    return Some(&line[start..start + i + 1]);
                }
            }
            _ => {}
        }
    }
    None
}

/// A client-side view of one response line.
#[derive(Debug, Clone)]
pub struct ParsedResponse {
    /// Echoed correlation id.
    pub id: u64,
    /// `ok`, `shed`, `rejected`, or `error`.
    pub status: String,
    /// Staleness marker (true only for `shed`).
    pub stale: bool,
    /// Typed code on reject/error lines.
    pub code: Option<String>,
    /// Raw `result` bytes on ok/shed lines.
    pub result_raw: Option<String>,
    /// Substitution / degradation notes on ok/shed lines.
    pub notes: Vec<String>,
    /// Echoed trace id (0 when the line carried none).
    pub trace: u64,
    /// The cost telemetry object on ok/shed lines.
    pub cost: Option<QueryCost>,
}

impl ParsedResponse {
    /// Parses one response line.
    pub fn parse(line: &str) -> Result<ParsedResponse, String> {
        let doc = json::parse(line)?;
        let status = doc
            .get("status")
            .and_then(Json::as_str)
            .ok_or("response missing `status`")?
            .to_string();
        let notes = doc
            .get("notes")
            .and_then(Json::as_arr)
            .map(|items| {
                items
                    .iter()
                    .filter_map(|n| n.as_str().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default();
        let cost = doc.get("telemetry").map(|t| {
            let f = |k: &str| t.get(k).and_then(Json::as_u64).unwrap_or(0);
            QueryCost {
                queue_ns: f("queue_ns"),
                exec_ns: f("exec_ns"),
                days_scanned: f("days_scanned"),
                rows: f("rows"),
                admission_ns: f("admission_ns"),
                prune_ns: f("prune_ns"),
                decode_ns: f("decode_ns"),
                fold_ns: f("fold_ns"),
                render_ns: f("render_ns"),
                total_ns: f("total_ns"),
            }
        });
        Ok(ParsedResponse {
            id: doc.get("id").and_then(Json::as_u64).unwrap_or(0),
            status,
            stale: doc.get("stale").and_then(Json::as_bool).unwrap_or(false),
            code: doc.get("code").and_then(Json::as_str).map(str::to_string),
            result_raw: extract_result_raw(line).map(str::to_string),
            notes,
            trace: doc
                .get("trace")
                .and_then(Json::as_str)
                .and_then(trace_from_hex)
                .unwrap_or(0),
            cost,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn query_render_parse_round_trips() {
        let q = Query {
            id: 42,
            tenant: "climate".into(),
            pred: Some(Pred::and(vec![
                Pred::uid(10_000..=10_010),
                Pred::or(vec![Pred::ext_in(["h5", "nc"]), Pred::ext_none()]),
                Pred::mtime(1_420_000_000..=1_421_000_000),
            ])),
            days: Some((0, 21)),
            agg: AggSpec::GroupCount {
                by: GroupBy::Gid,
                top: 5,
            },
            trace: 0xdead_beef_0042,
        };
        let back = Query::parse(&q.render()).unwrap();
        assert_eq!(back, q);
        assert_eq!(back.fingerprint(), q.fingerprint());
        // An untraced query renders without the field and parses back.
        let mut bare = q.clone();
        bare.trace = 0;
        assert!(!bare.render().contains("trace"));
        assert_eq!(Query::parse(&bare.render()).unwrap(), bare);
    }

    #[test]
    fn fingerprint_separates_aggregates_and_windows() {
        let base = Query {
            id: 0,
            tenant: "a".into(),
            pred: Some(Pred::uid(1..=2)),
            days: None,
            agg: AggSpec::Count,
            trace: 0,
        };
        let mut other = base.clone();
        other.agg = AggSpec::FilesDirs;
        assert_ne!(base.fingerprint(), other.fingerprint());
        let mut windowed = base.clone();
        windowed.days = Some((0, 7));
        assert_ne!(base.fingerprint(), windowed.fingerprint());
        // The id and tenant do NOT change the answer identity.
        let mut renamed = base.clone();
        renamed.id = 99;
        renamed.tenant = "b".into();
        renamed.trace = 0x77;
        assert_eq!(base.fingerprint(), renamed.fingerprint());
    }

    #[test]
    fn version_and_shape_errors_are_typed() {
        let err = Query::parse(r#"{"v":9,"id":3}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::UnsupportedVersion);
        assert_eq!(err.id, 3);
        let err = Query::parse("not json").unwrap_err();
        assert_eq!(err.code, ErrorCode::BadQuery);
        let err = Query::parse(r#"{"v":1,"pred":{"uid":[5]}}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadQuery);
        let err = Query::parse(r#"{"v":1,"agg":"median"}"#).unwrap_err();
        assert_eq!(err.code, ErrorCode::BadQuery);
        let err = Query::parse(r#"{"id":1}"#).unwrap_err();
        assert!(err.detail.contains("version"));
    }

    #[test]
    fn responses_render_and_extract() {
        let cost = QueryCost {
            queue_ns: 10,
            exec_ns: 20,
            days_scanned: 3,
            rows: 7,
            admission_ns: 2,
            prune_ns: 5,
            decode_ns: 9,
            fold_ns: 4,
            render_ns: 2,
            total_ns: 34,
        };
        let ok = render_ok(
            5,
            0xabc,
            r#"{"count":7}"#,
            &["day 21 degraded: lost atime".into()],
            cost,
        );
        let parsed = ParsedResponse::parse(&ok).unwrap();
        assert_eq!(parsed.status, "ok");
        assert!(!parsed.stale);
        assert_eq!(parsed.result_raw.as_deref(), Some(r#"{"count":7}"#));
        assert_eq!(parsed.notes.len(), 1);
        assert_eq!(parsed.trace, 0xabc);
        assert_eq!(parsed.cost, Some(cost));

        let shed = render_shed(5, 0xabc, r#"{"count":7}"#, &[], cost);
        let parsed = ParsedResponse::parse(&shed).unwrap();
        assert_eq!(parsed.status, "shed");
        assert!(parsed.stale);
        assert_eq!(
            parsed.result_raw.as_deref(),
            extract_result_raw(&ok).as_deref()
        );

        let rej = render_rejected(6, 0x9, ErrorCode::QueueFull, "queue at capacity (32)");
        let parsed = ParsedResponse::parse(&rej).unwrap();
        assert_eq!(parsed.status, "rejected");
        assert_eq!(parsed.code.as_deref(), Some("queue_full"));
        assert!(parsed.result_raw.is_none());
        assert_eq!(parsed.trace, 0x9);

        let err = render_error(7, 0, ErrorCode::BadQuery, "nope \"quoted\"");
        let parsed = ParsedResponse::parse(&err).unwrap();
        assert_eq!(parsed.status, "error");
        assert_eq!(parsed.code.as_deref(), Some("bad_query"));
    }

    #[test]
    fn result_extraction_handles_nested_braces_and_strings() {
        let result = r#"{"groups":[["a}b",2],["c]{",1]],"distinct":2}"#;
        let line = render_ok(1, 0, result, &[], QueryCost::default());
        assert_eq!(extract_result_raw(&line), Some(result));
    }

    #[test]
    fn metrics_requests_are_recognized() {
        assert_eq!(parse_metrics_request(r#"{"v":1,"metrics":true}"#), Some(0));
        assert_eq!(
            parse_metrics_request(r#"{"v":1,"id":9,"metrics":true}"#),
            Some(9)
        );
        // Wrong version, wrong shape, or an ordinary query: not a scrape.
        assert_eq!(parse_metrics_request(r#"{"v":2,"metrics":true}"#), None);
        assert_eq!(parse_metrics_request(r#"{"v":1,"metrics":false}"#), None);
        assert_eq!(parse_metrics_request(r#"{"v":1,"agg":"count"}"#), None);
    }

    #[test]
    fn trace_hex_round_trips() {
        assert_eq!(trace_to_hex(0xdead_beef), "00000000deadbeef");
        assert_eq!(trace_from_hex("00000000deadbeef"), Some(0xdead_beef));
        assert_eq!(trace_from_hex(""), None);
        assert_eq!(trace_from_hex("zz"), None);
        assert_eq!(trace_from_hex("12345678123456789"), None);
    }

    #[test]
    fn admission_codes_are_not_protocol_errors() {
        assert!(!ErrorCode::OverBudget.is_protocol_error());
        assert!(!ErrorCode::QueueFull.is_protocol_error());
        assert!(ErrorCode::BadQuery.is_protocol_error());
        assert!(ErrorCode::Store.is_protocol_error());
        assert!(ErrorCode::Internal.is_protocol_error());
        assert!(ErrorCode::UnsupportedVersion.is_protocol_error());
    }
}
