//! The concurrent query server.
//!
//! Plain std threads end to end — a bounded `Mutex<VecDeque>` +
//! `Condvar` work queue feeds a fixed worker pool; no async runtime.
//! Each request line passes through the admission state machine:
//!
//! 1. **parse** — malformed lines and unsupported versions get typed
//!    `error` responses;
//! 2. **budget** — the tenant's token bucket is charged one token per
//!    day the query would scan; an exhausted bucket sheds to a cached
//!    answer (marked stale) or rejects with `over_budget`;
//! 3. **queue** — past `shed_mark` queued jobs the server prefers a
//!    cached answer over queueing; at `queue_capacity` it rejects
//!    with `queue_full` (never blocks, never drops);
//! 4. **execute** — a worker runs the query under the tenant's frame
//!    cache attribution and replies.
//!
//! Shed answers reuse the response cache's rendered `result` bytes
//! verbatim, so a shed response is byte-identical (in its `result`
//! field) to the `ok` response it was cached from.
//!
//! **Observability.** Every request gets a trace id — the client's, or
//! a minted one — installed as a [`TraceScope`] on both the connection
//! thread (around the `serve.request` span) and the worker thread
//! (around `serve.execute`), so the whole request tree is attributable
//! in flight-recorder dumps and chrome-trace exports. Responses carry
//! the id back plus a per-stage cost breakdown (admission, queue,
//! prune, decode, fold, render) that sums to the request's wall clock.
//! A `{"v":1,"metrics":true}` line is answered directly by the
//! front-end — no queueing — with the full telemetry snapshot, counter
//! deltas since the previous scrape, and per-tenant admission / outcome
//! / cache-residency gauges. The onset of a shed storm (first shed
//! after a fresh-answer stretch) fires the `shed_storm` trigger so an
//! armed flight recorder freezes the moments leading into overload.

use crate::admission::{Admission, Refill};
use crate::engine::{CachedAnswer, EngineConfig, QueryEngine};
use crate::json;
use crate::proto::{self, ErrorCode, ProtoError, Query, QueryCost};
use rustc_hash::FxHashMap;
use spider_core::{TenantCacheStats, TenantId};
use std::collections::{BTreeMap, VecDeque};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use spider_telemetry as telemetry;
use spider_telemetry::{TelemetrySnapshot, TraceScope};

// Telemetry counter names are `&'static str`, so per-tenant counters
// use a fixed name table: tenants 1..=7 get their own slot, the rest
// share the overflow slot (same pattern as the scan stage counters).
const TENANT_QUERIES: [&str; 8] = [
    "serve.tenant1.queries",
    "serve.tenant2.queries",
    "serve.tenant3.queries",
    "serve.tenant4.queries",
    "serve.tenant5.queries",
    "serve.tenant6.queries",
    "serve.tenant7.queries",
    "serve.tenant8plus.queries",
];
const TENANT_SHED: [&str; 8] = [
    "serve.tenant1.shed",
    "serve.tenant2.shed",
    "serve.tenant3.shed",
    "serve.tenant4.shed",
    "serve.tenant5.shed",
    "serve.tenant6.shed",
    "serve.tenant7.shed",
    "serve.tenant8plus.shed",
];
const TENANT_REJECTED: [&str; 8] = [
    "serve.tenant1.rejected",
    "serve.tenant2.rejected",
    "serve.tenant3.rejected",
    "serve.tenant4.rejected",
    "serve.tenant5.rejected",
    "serve.tenant6.rejected",
    "serve.tenant7.rejected",
    "serve.tenant8plus.rejected",
];

fn tenant_slot(tenant: TenantId) -> usize {
    (tenant.saturating_sub(1) as usize).min(7)
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Hard bound on queued jobs; past it, `queue_full` rejections.
    pub queue_capacity: usize,
    /// Soft bound; past it the server prefers cached (shed) answers.
    pub shed_mark: usize,
    /// Per-tenant scan budget in day-tokens.
    pub tenant_budget: u64,
    /// How budgets refill.
    pub refill: Refill,
    /// Per-tenant frame-cache budget in frames (0 = whole capacity).
    pub tenant_cache_frames: usize,
    /// Engine knobs.
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 32,
            shed_mark: 8,
            tenant_budget: 10_000,
            refill: Refill::PerSecond(1_000),
            tenant_cache_frames: 0,
            engine: EngineConfig::default(),
        }
    }
}

/// Outcome counters, total and per tenant name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Requests received (parse failures included).
    pub queries: u64,
    /// Fresh answers.
    pub ok: u64,
    /// Stale cached answers served under load.
    pub shed: u64,
    /// Typed admission refusals.
    pub rejected: u64,
    /// Protocol / execution errors.
    pub errors: u64,
}

struct Job {
    query: Query,
    tenant: TenantId,
    cost: u64,
    trace: u64,
    received: Instant,
    admission_ns: u64,
    enqueued: Instant,
    reply: mpsc::Sender<String>,
}

struct Queue {
    jobs: VecDeque<Job>,
    open: bool,
}

struct Shared {
    engine: QueryEngine,
    admission: Admission,
    queue: Mutex<Queue>,
    available: Condvar,
    config: ServerConfig,
    stats: Mutex<(OutcomeCounts, FxHashMap<String, OutcomeCounts>)>,
    /// Sequence for minted trace ids (client-supplied ids win).
    trace_counter: AtomicU64,
    /// Set while shedding; the false→true edge is shed-storm onset.
    in_storm: AtomicBool,
    /// Counter values at the previous metrics scrape, for deltas.
    last_scrape: Mutex<BTreeMap<String, u64>>,
    /// Scrape sequence number, echoed in metrics responses.
    scrapes: AtomicU64,
}

enum Outcome {
    Ok,
    Shed,
    Rejected,
    Error,
}

impl Shared {
    fn note_outcome(&self, tenant_name: Option<&str>, outcome: Outcome) {
        let mut stats = self.stats.lock().unwrap();
        let apply = |c: &mut OutcomeCounts| match outcome {
            Outcome::Ok => c.ok += 1,
            Outcome::Shed => c.shed += 1,
            Outcome::Rejected => c.rejected += 1,
            Outcome::Error => c.errors += 1,
        };
        apply(&mut stats.0);
        if let Some(name) = tenant_name {
            apply(stats.1.entry(name.to_string()).or_default());
        }
    }

    /// Mints a nonzero trace id for requests that did not bring one.
    fn mint_trace(&self) -> u64 {
        let n = self.trace_counter.fetch_add(1, Ordering::Relaxed);
        n.wrapping_add(0x9E37_79B9_7F4A_7C15)
            .wrapping_mul(0xBF58_476D_1CE4_E5B9)
            | 1
    }

    fn shed_response(
        &self,
        query: &Query,
        trace: u64,
        tenant: TenantId,
        answer: &CachedAnswer,
        received: Instant,
    ) -> String {
        telemetry::global().incr("serve.shed", 1);
        telemetry::global().incr(TENANT_SHED[tenant_slot(tenant)], 1);
        if !self.in_storm.swap(true, Ordering::Relaxed) {
            telemetry::global().trigger(
                "shed_storm",
                &format!(
                    "shed onset: tenant {} query {} served stale from cache",
                    query.tenant, query.id
                ),
            );
        }
        self.note_outcome(Some(&query.tenant), Outcome::Shed);
        // A shed never executes: its whole life is the admission
        // front-end, so admission is the only nonzero stage.
        let total_ns = received.elapsed().as_nanos() as u64;
        proto::render_shed(
            query.id,
            trace,
            &answer.result,
            &answer.notes,
            QueryCost {
                queue_ns: 0,
                exec_ns: 0,
                days_scanned: answer.days_scanned,
                rows: answer.rows,
                admission_ns: total_ns,
                prune_ns: 0,
                decode_ns: 0,
                fold_ns: 0,
                render_ns: 0,
                total_ns,
            },
        )
    }

    fn handle_line(&self, line: &str) -> String {
        let received = Instant::now();
        if let Some(id) = proto::parse_metrics_request(line) {
            return self.metrics_response(id);
        }
        let response = self.admit(line, received);
        telemetry::global().record("serve.latency_ns", received.elapsed().as_nanos() as u64);
        response
    }

    fn admit(&self, line: &str, received: Instant) -> String {
        telemetry::global().incr("serve.queries", 1);
        {
            self.stats.lock().unwrap().0.queries += 1;
        }
        let query = match Query::parse(line) {
            Ok(q) => q,
            Err(ProtoError { code, detail, id }) => {
                telemetry::global().incr("serve.errors", 1);
                self.note_outcome(None, Outcome::Error);
                return proto::render_error(id, self.mint_trace(), code, &detail);
            }
        };
        let trace = if query.trace != 0 {
            query.trace
        } else {
            self.mint_trace()
        };
        let _trace_scope = TraceScope::enter(trace);
        let _span = telemetry::global().span("serve.request");
        let (tenant, created) = self.admission.tenant_id(&query.tenant);
        if created && self.config.tenant_cache_frames > 0 {
            self.engine
                .cache()
                .set_tenant_budget(tenant, self.config.tenant_cache_frames);
        }
        telemetry::global().incr(TENANT_QUERIES[tenant_slot(tenant)], 1);
        {
            let mut stats = self.stats.lock().unwrap();
            stats.1.entry(query.tenant.clone()).or_default().queries += 1;
        }

        let cost = self.engine.day_cost(&query);
        let fingerprint = query.fingerprint();

        // Stage 1: scan budget.
        if !self.admission.try_charge(tenant, cost) {
            if let Some(answer) = self.engine.cached(fingerprint) {
                return self.shed_response(&query, trace, tenant, &answer, received);
            }
            telemetry::global().incr("serve.rejected", 1);
            telemetry::global().incr(TENANT_REJECTED[tenant_slot(tenant)], 1);
            self.note_outcome(Some(&query.tenant), Outcome::Rejected);
            return proto::render_rejected(
                query.id,
                trace,
                ErrorCode::OverBudget,
                &format!(
                    "tenant {} scan budget exhausted (query costs {} day-tokens)",
                    query.tenant, cost
                ),
            );
        }

        // Stage 2: queue admission.
        let (reply_tx, reply_rx) = mpsc::channel();
        {
            let mut queue = self.queue.lock().unwrap();
            if queue.jobs.len() >= self.config.queue_capacity {
                drop(queue);
                self.admission.refund(tenant, cost);
                telemetry::global().incr("serve.rejected", 1);
                telemetry::global().incr(TENANT_REJECTED[tenant_slot(tenant)], 1);
                self.note_outcome(Some(&query.tenant), Outcome::Rejected);
                return proto::render_rejected(
                    query.id,
                    trace,
                    ErrorCode::QueueFull,
                    &format!("queue at capacity ({})", self.config.queue_capacity),
                );
            }
            if queue.jobs.len() >= self.config.shed_mark {
                if let Some(answer) = self.engine.cached(fingerprint) {
                    drop(queue);
                    self.admission.refund(tenant, cost);
                    return self.shed_response(&query, trace, tenant, &answer, received);
                }
            }
            let admission_ns = received.elapsed().as_nanos() as u64;
            queue.jobs.push_back(Job {
                query,
                tenant,
                cost,
                trace,
                received,
                admission_ns,
                enqueued: Instant::now(),
                reply: reply_tx,
            });
            self.available.notify_one();
        }

        // Stage 3: wait for the worker's reply.
        match reply_rx.recv() {
            Ok(response) => response,
            Err(_) => {
                telemetry::global().incr("serve.errors", 1);
                self.note_outcome(None, Outcome::Error);
                proto::render_error(
                    0,
                    trace,
                    ErrorCode::Internal,
                    "worker pool shut down mid-query",
                )
            }
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().unwrap();
                loop {
                    if let Some(job) = queue.jobs.pop_front() {
                        break job;
                    }
                    if !queue.open {
                        return;
                    }
                    queue = self.available.wait(queue).unwrap();
                }
            };
            let queue_ns = job.enqueued.elapsed().as_nanos() as u64;
            // The requester's trace follows the job onto this thread, so
            // the execute span (and anything the engine emits under it)
            // stays attributable to the originating query.
            let _trace_scope = TraceScope::enter(job.trace);
            // Recorded inside the exec window: a contended histogram
            // lock here must land in a stage (render/glue remainder),
            // not in the unattributed gap between queue and exec.
            let exec_started = Instant::now();
            telemetry::global().record("serve.queue_ns", queue_ns);
            let response = match self.engine.execute(job.tenant, &job.query) {
                Ok(exec) => {
                    let exec_ns = exec_started.elapsed().as_nanos() as u64;
                    // Totalled here, before any bookkeeping locks, so the
                    // staged decomposition covers the measured window.
                    let total_ns = job.received.elapsed().as_nanos() as u64;
                    telemetry::global().record("serve.exec_ns", exec_ns);
                    telemetry::global().incr("serve.ok", 1);
                    self.in_storm.store(false, Ordering::Relaxed);
                    self.note_outcome(Some(&job.query.tenant), Outcome::Ok);
                    // Render/glue is the execution wall time the staged
                    // timers did not claim — the decomposition is exact
                    // inside the execute interval by construction.
                    let staged = exec.prune_ns + exec.decode_ns + exec.fold_ns;
                    let render_ns = exec_ns.saturating_sub(staged);
                    proto::render_ok(
                        job.query.id,
                        job.trace,
                        &exec.result,
                        &exec.notes,
                        QueryCost {
                            queue_ns,
                            exec_ns,
                            days_scanned: exec.days_scanned,
                            rows: exec.rows,
                            admission_ns: job.admission_ns,
                            prune_ns: exec.prune_ns,
                            decode_ns: exec.decode_ns,
                            fold_ns: exec.fold_ns,
                            render_ns,
                            total_ns,
                        },
                    )
                }
                Err(err) => {
                    self.admission.refund(job.tenant, job.cost);
                    telemetry::global().incr("serve.errors", 1);
                    self.note_outcome(Some(&job.query.tenant), Outcome::Error);
                    proto::render_error(
                        job.query.id,
                        job.trace,
                        ErrorCode::Store,
                        &format!("store error: {err}"),
                    )
                }
            };
            // A disconnected requester just means nobody is waiting.
            let _ = job.reply.send(response);
        }
    }

    /// Renders one `metrics` scrape response: the full telemetry
    /// snapshot, per-counter deltas since the previous scrape (counters
    /// that did not move are omitted), and per-tenant gauges joining
    /// admission budgets, outcome counts, and cache residency.
    fn metrics_response(&self, id: u64) -> String {
        let trace = self.mint_trace();
        let scrape = self.scrapes.fetch_add(1, Ordering::Relaxed);
        let snapshot = TelemetrySnapshot::capture(telemetry::global());
        let mut deltas = String::new();
        {
            let mut last = self.last_scrape.lock().unwrap();
            let mut first = true;
            for c in &snapshot.counters {
                let prev = last.insert(c.name.clone(), c.value).unwrap_or(0);
                let delta = c.value.saturating_sub(prev);
                if delta == 0 {
                    continue;
                }
                if !first {
                    deltas.push(',');
                }
                first = false;
                deltas.push_str("{\"name\":");
                json::escape_into(&mut deltas, &c.name);
                deltas.push_str(&format!(",\"delta\":{delta}}}"));
            }
        }
        let cache_stats: FxHashMap<TenantId, TenantCacheStats> =
            self.engine.cache().tenant_stats().into_iter().collect();
        let outcomes: FxHashMap<String, OutcomeCounts> = self.stats.lock().unwrap().1.clone();
        let mut tenants = String::new();
        for (i, (name, tid, remaining)) in self.admission.tenants().iter().enumerate() {
            if i > 0 {
                tenants.push(',');
            }
            let oc = outcomes.get(name).cloned().unwrap_or_default();
            let cs = cache_stats.get(tid).copied().unwrap_or_default();
            tenants.push_str("{\"name\":");
            json::escape_into(&mut tenants, name);
            tenants.push_str(&format!(
                ",\"id\":{tid},\"budget_remaining\":{remaining},\"queries\":{},\"ok\":{},\
                 \"shed\":{},\"rejected\":{},\"errors\":{},\"cache_resident\":{},\
                 \"cache_hits\":{},\"cache_misses\":{}}}",
                oc.queries, oc.ok, oc.shed, oc.rejected, oc.errors, cs.resident, cs.hits, cs.misses
            ));
        }
        format!(
            "{{\"v\":{},\"id\":{id},\"trace\":\"{}\",\"status\":\"metrics\",\
             \"metrics_version\":{},\"scrape\":{scrape},\"telemetry\":{},\
             \"deltas\":[{deltas}],\"tenants\":[{tenants}]}}",
            proto::PROTOCOL_VERSION,
            proto::trace_to_hex(trace),
            proto::METRICS_VERSION,
            snapshot.to_json_compact(),
        )
    }
}

/// A running server: shared state plus its worker pool.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool over an opened engine.
    pub fn start(engine: QueryEngine, config: ServerConfig) -> Server {
        let shared = Arc::new(Shared {
            engine,
            admission: Admission::new(config.tenant_budget, config.refill),
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                open: true,
            }),
            available: Condvar::new(),
            config,
            stats: Mutex::new((OutcomeCounts::default(), FxHashMap::default())),
            trace_counter: AtomicU64::new(1),
            in_storm: AtomicBool::new(false),
            last_scrape: Mutex::new(BTreeMap::new()),
            scrapes: AtomicU64::new(0),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || shared.worker_loop())
                    .expect("spawn worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// A cheap handle for submitting request lines from any thread.
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The engine (for cache stats in tests and reports).
    pub fn engine(&self) -> &QueryEngine {
        &self.shared.engine
    }

    /// Manually refills every tenant budget (deterministic soak tick).
    pub fn refill_budgets(&self) {
        self.shared.admission.refill_all();
    }

    /// Total and per-tenant outcome counts so far.
    pub fn stats(&self) -> (OutcomeCounts, Vec<(String, OutcomeCounts)>) {
        let stats = self.shared.stats.lock().unwrap();
        let mut per_tenant: Vec<_> = stats
            .1
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        per_tenant.sort_by(|a, b| a.0.cmp(&b.0));
        (stats.0.clone(), per_tenant)
    }

    /// Accepts TCP connections forever, one reader thread per
    /// connection, one response line per request line.
    pub fn serve_listener(&self, listener: TcpListener) -> std::io::Result<()> {
        for stream in listener.incoming() {
            let stream = stream?;
            let client = self.client();
            std::thread::spawn(move || {
                let _ = serve_connection(&client, stream);
            });
        }
        Ok(())
    }

    /// Drains the queue, stops the workers, and returns final stats.
    pub fn shutdown(mut self) -> (OutcomeCounts, Vec<(String, OutcomeCounts)>) {
        self.close();
        self.stats()
    }

    fn close(&mut self) {
        {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.open = false;
            self.shared.available.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close();
    }
}

fn serve_connection(client: &Client, stream: TcpStream) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = client.request(&line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// A cloneable in-process handle: one request line in, one response
/// line out. TCP connections and tests both speak through this.
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
}

impl Client {
    /// Submits one request line and blocks for its response line.
    pub fn request(&self, line: &str) -> String {
        self.shared.handle_line(line)
    }
}
