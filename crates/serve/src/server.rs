//! The concurrent query server.
//!
//! Plain std threads end to end — a bounded `Mutex<VecDeque>` +
//! `Condvar` work queue feeds a fixed worker pool; no async runtime.
//! Each request line passes through the admission state machine:
//!
//! 1. **parse** — malformed lines and unsupported versions get typed
//!    `error` responses;
//! 2. **budget** — the tenant's token bucket is charged one token per
//!    day the query would scan; an exhausted bucket sheds to a cached
//!    answer (marked stale) or rejects with `over_budget`;
//! 3. **queue** — past `shed_mark` queued jobs the server prefers a
//!    cached answer over queueing; at `queue_capacity` it rejects
//!    with `queue_full` (never blocks, never drops);
//! 4. **execute** — a worker runs the query under the tenant's frame
//!    cache attribution and replies.
//!
//! Shed answers reuse the response cache's rendered `result` bytes
//! verbatim, so a shed response is byte-identical (in its `result`
//! field) to the `ok` response it was cached from.

use crate::admission::{Admission, Refill};
use crate::engine::{CachedAnswer, EngineConfig, QueryEngine};
use crate::proto::{self, ErrorCode, ProtoError, Query, QueryCost};
use rustc_hash::FxHashMap;
use spider_core::TenantId;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use spider_telemetry as telemetry;

// Telemetry counter names are `&'static str`, so per-tenant counters
// use a fixed name table: tenants 1..=7 get their own slot, the rest
// share the overflow slot (same pattern as the scan stage counters).
const TENANT_QUERIES: [&str; 8] = [
    "serve.tenant1.queries",
    "serve.tenant2.queries",
    "serve.tenant3.queries",
    "serve.tenant4.queries",
    "serve.tenant5.queries",
    "serve.tenant6.queries",
    "serve.tenant7.queries",
    "serve.tenant8plus.queries",
];
const TENANT_SHED: [&str; 8] = [
    "serve.tenant1.shed",
    "serve.tenant2.shed",
    "serve.tenant3.shed",
    "serve.tenant4.shed",
    "serve.tenant5.shed",
    "serve.tenant6.shed",
    "serve.tenant7.shed",
    "serve.tenant8plus.shed",
];
const TENANT_REJECTED: [&str; 8] = [
    "serve.tenant1.rejected",
    "serve.tenant2.rejected",
    "serve.tenant3.rejected",
    "serve.tenant4.rejected",
    "serve.tenant5.rejected",
    "serve.tenant6.rejected",
    "serve.tenant7.rejected",
    "serve.tenant8plus.rejected",
];

fn tenant_slot(tenant: TenantId) -> usize {
    (tenant.saturating_sub(1) as usize).min(7)
}

/// Server tuning knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// Worker threads executing queries.
    pub workers: usize,
    /// Hard bound on queued jobs; past it, `queue_full` rejections.
    pub queue_capacity: usize,
    /// Soft bound; past it the server prefers cached (shed) answers.
    pub shed_mark: usize,
    /// Per-tenant scan budget in day-tokens.
    pub tenant_budget: u64,
    /// How budgets refill.
    pub refill: Refill,
    /// Per-tenant frame-cache budget in frames (0 = whole capacity).
    pub tenant_cache_frames: usize,
    /// Engine knobs.
    pub engine: EngineConfig,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            workers: 2,
            queue_capacity: 32,
            shed_mark: 8,
            tenant_budget: 10_000,
            refill: Refill::PerSecond(1_000),
            tenant_cache_frames: 0,
            engine: EngineConfig::default(),
        }
    }
}

/// Outcome counters, total and per tenant name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OutcomeCounts {
    /// Requests received (parse failures included).
    pub queries: u64,
    /// Fresh answers.
    pub ok: u64,
    /// Stale cached answers served under load.
    pub shed: u64,
    /// Typed admission refusals.
    pub rejected: u64,
    /// Protocol / execution errors.
    pub errors: u64,
}

struct Job {
    query: Query,
    tenant: TenantId,
    cost: u64,
    enqueued: Instant,
    reply: mpsc::Sender<String>,
}

struct Queue {
    jobs: VecDeque<Job>,
    open: bool,
}

struct Shared {
    engine: QueryEngine,
    admission: Admission,
    queue: Mutex<Queue>,
    available: Condvar,
    config: ServerConfig,
    stats: Mutex<(OutcomeCounts, FxHashMap<String, OutcomeCounts>)>,
}

enum Outcome {
    Ok,
    Shed,
    Rejected,
    Error,
}

impl Shared {
    fn note_outcome(&self, tenant_name: Option<&str>, outcome: Outcome) {
        let mut stats = self.stats.lock().unwrap();
        let apply = |c: &mut OutcomeCounts| match outcome {
            Outcome::Ok => c.ok += 1,
            Outcome::Shed => c.shed += 1,
            Outcome::Rejected => c.rejected += 1,
            Outcome::Error => c.errors += 1,
        };
        apply(&mut stats.0);
        if let Some(name) = tenant_name {
            apply(stats.1.entry(name.to_string()).or_default());
        }
    }

    fn shed_response(&self, query: &Query, tenant: TenantId, answer: &CachedAnswer) -> String {
        telemetry::global().incr("serve.shed", 1);
        telemetry::global().incr(TENANT_SHED[tenant_slot(tenant)], 1);
        self.note_outcome(Some(&query.tenant), Outcome::Shed);
        proto::render_shed(
            query.id,
            &answer.result,
            &answer.notes,
            QueryCost {
                queue_ns: 0,
                exec_ns: 0,
                days_scanned: answer.days_scanned,
                rows: answer.rows,
            },
        )
    }

    fn handle_line(&self, line: &str) -> String {
        let started = Instant::now();
        let response = self.admit(line);
        telemetry::global().record("serve.latency_ns", started.elapsed().as_nanos() as u64);
        response
    }

    fn admit(&self, line: &str) -> String {
        telemetry::global().incr("serve.queries", 1);
        {
            self.stats.lock().unwrap().0.queries += 1;
        }
        let query = match Query::parse(line) {
            Ok(q) => q,
            Err(ProtoError { code, detail, id }) => {
                telemetry::global().incr("serve.errors", 1);
                self.note_outcome(None, Outcome::Error);
                return proto::render_error(id, code, &detail);
            }
        };
        let (tenant, created) = self.admission.tenant_id(&query.tenant);
        if created && self.config.tenant_cache_frames > 0 {
            self.engine
                .cache()
                .set_tenant_budget(tenant, self.config.tenant_cache_frames);
        }
        telemetry::global().incr(TENANT_QUERIES[tenant_slot(tenant)], 1);
        {
            let mut stats = self.stats.lock().unwrap();
            stats.1.entry(query.tenant.clone()).or_default().queries += 1;
        }

        let cost = self.engine.day_cost(&query);
        let fingerprint = query.fingerprint();

        // Stage 1: scan budget.
        if !self.admission.try_charge(tenant, cost) {
            if let Some(answer) = self.engine.cached(fingerprint) {
                return self.shed_response(&query, tenant, &answer);
            }
            telemetry::global().incr("serve.rejected", 1);
            telemetry::global().incr(TENANT_REJECTED[tenant_slot(tenant)], 1);
            self.note_outcome(Some(&query.tenant), Outcome::Rejected);
            return proto::render_rejected(
                query.id,
                ErrorCode::OverBudget,
                &format!(
                    "tenant {} scan budget exhausted (query costs {} day-tokens)",
                    query.tenant, cost
                ),
            );
        }

        // Stage 2: queue admission.
        let (reply_tx, reply_rx) = mpsc::channel();
        {
            let mut queue = self.queue.lock().unwrap();
            if queue.jobs.len() >= self.config.queue_capacity {
                drop(queue);
                self.admission.refund(tenant, cost);
                telemetry::global().incr("serve.rejected", 1);
                telemetry::global().incr(TENANT_REJECTED[tenant_slot(tenant)], 1);
                self.note_outcome(Some(&query.tenant), Outcome::Rejected);
                return proto::render_rejected(
                    query.id,
                    ErrorCode::QueueFull,
                    &format!("queue at capacity ({})", self.config.queue_capacity),
                );
            }
            if queue.jobs.len() >= self.config.shed_mark {
                if let Some(answer) = self.engine.cached(fingerprint) {
                    drop(queue);
                    self.admission.refund(tenant, cost);
                    return self.shed_response(&query, tenant, &answer);
                }
            }
            queue.jobs.push_back(Job {
                query,
                tenant,
                cost,
                enqueued: Instant::now(),
                reply: reply_tx,
            });
            self.available.notify_one();
        }

        // Stage 3: wait for the worker's reply.
        match reply_rx.recv() {
            Ok(response) => response,
            Err(_) => {
                telemetry::global().incr("serve.errors", 1);
                self.note_outcome(None, Outcome::Error);
                proto::render_error(0, ErrorCode::Internal, "worker pool shut down mid-query")
            }
        }
    }

    fn worker_loop(&self) {
        loop {
            let job = {
                let mut queue = self.queue.lock().unwrap();
                loop {
                    if let Some(job) = queue.jobs.pop_front() {
                        break job;
                    }
                    if !queue.open {
                        return;
                    }
                    queue = self.available.wait(queue).unwrap();
                }
            };
            let queue_ns = job.enqueued.elapsed().as_nanos() as u64;
            telemetry::global().record("serve.queue_ns", queue_ns);
            let exec_started = Instant::now();
            let response = match self.engine.execute(job.tenant, &job.query) {
                Ok(exec) => {
                    let exec_ns = exec_started.elapsed().as_nanos() as u64;
                    telemetry::global().record("serve.exec_ns", exec_ns);
                    telemetry::global().incr("serve.ok", 1);
                    self.note_outcome(Some(&job.query.tenant), Outcome::Ok);
                    proto::render_ok(
                        job.query.id,
                        &exec.result,
                        &exec.notes,
                        QueryCost {
                            queue_ns,
                            exec_ns,
                            days_scanned: exec.days_scanned,
                            rows: exec.rows,
                        },
                    )
                }
                Err(err) => {
                    self.admission.refund(job.tenant, job.cost);
                    telemetry::global().incr("serve.errors", 1);
                    self.note_outcome(Some(&job.query.tenant), Outcome::Error);
                    proto::render_error(
                        job.query.id,
                        ErrorCode::Store,
                        &format!("store error: {err}"),
                    )
                }
            };
            // A disconnected requester just means nobody is waiting.
            let _ = job.reply.send(response);
        }
    }
}

/// A running server: shared state plus its worker pool.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts the worker pool over an opened engine.
    pub fn start(engine: QueryEngine, config: ServerConfig) -> Server {
        let shared = Arc::new(Shared {
            engine,
            admission: Admission::new(config.tenant_budget, config.refill),
            queue: Mutex::new(Queue {
                jobs: VecDeque::new(),
                open: true,
            }),
            available: Condvar::new(),
            config,
            stats: Mutex::new((OutcomeCounts::default(), FxHashMap::default())),
        });
        let workers = (0..config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || shared.worker_loop())
                    .expect("spawn worker")
            })
            .collect();
        Server { shared, workers }
    }

    /// A cheap handle for submitting request lines from any thread.
    pub fn client(&self) -> Client {
        Client {
            shared: Arc::clone(&self.shared),
        }
    }

    /// The engine (for cache stats in tests and reports).
    pub fn engine(&self) -> &QueryEngine {
        &self.shared.engine
    }

    /// Manually refills every tenant budget (deterministic soak tick).
    pub fn refill_budgets(&self) {
        self.shared.admission.refill_all();
    }

    /// Total and per-tenant outcome counts so far.
    pub fn stats(&self) -> (OutcomeCounts, Vec<(String, OutcomeCounts)>) {
        let stats = self.shared.stats.lock().unwrap();
        let mut per_tenant: Vec<_> = stats
            .1
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        per_tenant.sort_by(|a, b| a.0.cmp(&b.0));
        (stats.0.clone(), per_tenant)
    }

    /// Accepts TCP connections forever, one reader thread per
    /// connection, one response line per request line.
    pub fn serve_listener(&self, listener: TcpListener) -> std::io::Result<()> {
        for stream in listener.incoming() {
            let stream = stream?;
            let client = self.client();
            std::thread::spawn(move || {
                let _ = serve_connection(&client, stream);
            });
        }
        Ok(())
    }

    /// Drains the queue, stops the workers, and returns final stats.
    pub fn shutdown(mut self) -> (OutcomeCounts, Vec<(String, OutcomeCounts)>) {
        self.close();
        self.stats()
    }

    fn close(&mut self) {
        {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.open = false;
            self.shared.available.notify_all();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.close();
    }
}

fn serve_connection(client: &Client, stream: TcpStream) -> std::io::Result<()> {
    let reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let response = client.request(&line);
        writer.write_all(response.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
    }
    Ok(())
}

/// A cloneable in-process handle: one request line in, one response
/// line out. TCP connections and tests both speak through this.
#[derive(Clone)]
pub struct Client {
    shared: Arc<Shared>,
}

impl Client {
    /// Submits one request line and blocks for its response line.
    pub fn request(&self, line: &str) -> String {
        self.shared.handle_line(line)
    }
}
