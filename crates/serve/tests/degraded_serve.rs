//! Serving from a damaged store: the fault matrix, extended through
//! the query service. For every colf section cell class — spine damage
//! (quarantine + nearest-day substitution) and column damage
//! (degradation) — a served response must stay `ok`, carry the right
//! substitution note, and never silently misreport; and the shed path
//! must preserve both the note and the exact result bytes.
//!
//! Seeds come from `SPIDER_SERVE_SEED` when set, else three defaults.

use spider_serve::{ParsedResponse, QueryEngine, Refill, Server, ServerConfig};
use spider_snapshot::colf;
use spider_snapshot::io::OsIo;
use spider_snapshot::store::{RetryPolicy, SnapshotStore};
use spider_snapshot::{Snapshot, SnapshotRecord};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn seeds() -> Vec<u64> {
    match std::env::var("SPIDER_SERVE_SEED") {
        Ok(s) => vec![s.parse().expect("SPIDER_SERVE_SEED must be a u64")],
        Err(_) => vec![660_942, 2_964_594_389, 3_237_998_146],
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const STORE_DAYS: [u32; 6] = [0, 7, 14, 21, 28, 35];
const ROWS: usize = 40;

fn sample_snapshot(day: u32) -> Snapshot {
    let records: Vec<SnapshotRecord> = (0..ROWS)
        .map(|i| SnapshotRecord {
            path: format!(
                "/lustre/atlas1/proj{:02}/u{:02}/d{day}/f.{i:06}",
                i % 5,
                i % 9
            ),
            atime: 1_420_000_000 + day as u64 * 86_400 + i as u64 * 31,
            ctime: 1_420_000_000 + i as u64 * 17,
            mtime: 1_420_000_000 + i as u64 * 19,
            uid: 10_000 + (i % 23) as u32,
            gid: 2_000 + (i % 7) as u32,
            mode: if i % 9 == 0 { 0o040_770 } else { 0o100_664 },
            ino: day as u64 * 1_000_000 + i as u64,
            osts: ((i % 4) as u16..4)
                .map(|k| (k * 97, i as u32 + k as u32))
                .collect(),
        })
        .collect();
    Snapshot::new(day, 1_420_000_000 + day as u64 * 86_400, records)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "spider-degraded-serve-{tag}-{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn seed_store(dir: &Path) {
    let mut store = SnapshotStore::open(dir).expect("open clean store");
    for day in STORE_DAYS {
        store
            .put(&sample_snapshot(day))
            .expect("put clean snapshot");
    }
}

/// Opens the (possibly damaged) store leniently and starts an
/// in-process server over it with the given per-tenant budget.
fn serve_damaged(dir: &Path, budget: u64) -> Server {
    let mut store =
        SnapshotStore::open_lenient(dir, Arc::new(OsIo), RetryPolicy::immediate()).unwrap();
    let health = store.scrub();
    let engine = QueryEngine::over_store(&store, health, Default::default())
        .expect("engine over damaged store");
    Server::start(
        engine,
        ServerConfig {
            tenant_budget: budget,
            refill: Refill::Manual,
            ..Default::default()
        },
    )
}

fn request(server: &Server, line: &str) -> ParsedResponse {
    let raw = server.client().request(line);
    ParsedResponse::parse(&raw).unwrap_or_else(|e| panic!("unparseable response {raw:?}: {e}"))
}

/// One query window that scans only day 14 (the victim), one that
/// scans only clean days.
const Q_VICTIM: &str = r#"{"v":1,"id":1,"tenant":"ops","agg":"count","days":[10,20]}"#;
const Q_CLEAN: &str = r#"{"v":1,"id":2,"tenant":"ops","agg":"count","days":[0,7]}"#;

/// Every section cell class, served: spine damage answers with a
/// quarantine + substitution note, column damage with a degradation
/// note naming the lost column — and the status is never `error`.
#[test]
fn every_degraded_cell_class_carries_a_substitution_note() {
    let spine = ["header", "section-table", "paths"];
    for seed in seeds() {
        let mut rng = seed;
        let names: Vec<&str> = {
            let probe = colf::encode(&sample_snapshot(14));
            colf::section_table(&probe)
                .unwrap()
                .iter()
                .map(|s| s.name)
                .collect()
        };
        for target in &names {
            let dir = temp_dir(&format!("sec-{seed:x}-{target}"));
            seed_store(&dir);

            // Flip one bit inside the target section of day 14's file.
            let victim = dir.join("snap-00014.colf");
            let mut bytes = fs::read(&victim).unwrap();
            let spans = colf::section_table(&bytes).unwrap();
            let span = spans.iter().find(|s| s.name == *target).unwrap().clone();
            let pos = span.offset + (splitmix(&mut rng) % span.len as u64) as usize;
            bytes[pos] ^= 1 << (splitmix(&mut rng) % 8);
            fs::write(&victim, &bytes).unwrap();

            let cell = format!("seed={seed} section={target}");
            // Budget 3 day-tokens: the clean query below costs 2, the
            // victim query 1 — so a column-cell re-ask finds the
            // budget exhausted and must shed.
            let server = serve_damaged(&dir, 3);

            // Clean-day queries stay pristine: no notes about day 14.
            let clean = request(&server, Q_CLEAN);
            assert_eq!(clean.status, "ok", "{cell}");
            assert!(
                clean.notes.is_empty(),
                "{cell}: spurious notes {:?}",
                clean.notes
            );
            assert_eq!(
                clean.result_raw.as_deref(),
                Some(&*format!(r#"{{"count":{}}}"#, 2 * ROWS)),
                "{cell}"
            );

            let resp = request(&server, Q_VICTIM);
            assert_eq!(
                resp.status, "ok",
                "{cell}: a damaged store must still answer"
            );
            assert!(!resp.stale, "{cell}: first answer is fresh");
            assert_eq!(
                resp.notes.len(),
                1,
                "{cell}: exactly one note, got {:?}",
                resp.notes
            );
            let note = &resp.notes[0];
            if spine.contains(target) {
                assert!(
                    note.starts_with("day 14 quarantined"),
                    "{cell}: wrong note {note:?}"
                );
                assert!(
                    note.ends_with("nearest surviving day is 7"),
                    "{cell}: substitution missing in {note:?}"
                );
                // The quarantined day is gone: nothing left to count.
                assert_eq!(resp.result_raw.as_deref(), Some(r#"{"count":0}"#), "{cell}");
            } else {
                assert!(
                    note.starts_with("day 14 degraded: lost") && note.contains(target),
                    "{cell}: wrong note {note:?}"
                );
                // Column loss never changes a day-window count.
                assert_eq!(
                    resp.result_raw.as_deref(),
                    Some(&*format!(r#"{{"count":{ROWS}}}"#)),
                    "{cell}"
                );

                // The victim query spent the last day-token: the
                // re-ask sheds the cached answer, byte-identical,
                // with the degradation note preserved and stale marked.
                let shed = request(&server, Q_VICTIM);
                assert_eq!(
                    shed.status, "shed",
                    "{cell}: expected shed on exhausted budget"
                );
                assert!(shed.stale, "{cell}: shed answers are stale");
                assert_eq!(
                    shed.result_raw, resp.result_raw,
                    "{cell}: shed bytes differ"
                );
                assert_eq!(shed.notes, resp.notes, "{cell}: shed notes differ");
            }

            let (totals, _) = server.shutdown();
            assert_eq!(totals.errors, 0, "{cell}: no response may be an error");
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// The last cell class: every day quarantined, so no substitute
/// remains — the service still answers, saying exactly that.
#[test]
fn fully_quarantined_store_reports_no_substitute() {
    let dir = temp_dir("all-quarantined");
    seed_store(&dir);
    for day in STORE_DAYS {
        let victim = dir.join(format!("snap-{day:05}.colf"));
        let mut bytes = fs::read(&victim).unwrap();
        let span = colf::section_table(&bytes)
            .unwrap()
            .iter()
            .find(|s| s.name == "header")
            .unwrap()
            .clone();
        bytes[span.offset] ^= 0xFF;
        fs::write(&victim, &bytes).unwrap();
    }

    let server = serve_damaged(&dir, 10);
    let resp = request(&server, Q_VICTIM);
    assert_eq!(resp.status, "ok");
    assert_eq!(resp.result_raw.as_deref(), Some(r#"{"count":0}"#));
    assert_eq!(
        resp.notes.len(),
        1,
        "one note for the one in-window day: {:?}",
        resp.notes
    );
    assert!(
        resp.notes[0].starts_with("day 14 quarantined")
            && resp.notes[0].ends_with("no substitute remains"),
        "wrong note {:?}",
        resp.notes[0]
    );

    // A whole-archive query names every quarantined day it would scan.
    let wide = request(&server, r#"{"v":1,"id":3,"tenant":"ops","agg":"count"}"#);
    assert_eq!(wide.status, "ok");
    assert_eq!(wide.notes.len(), STORE_DAYS.len(), "{:?}", wide.notes);

    let (totals, _) = server.shutdown();
    assert_eq!(totals.errors, 0);
    fs::remove_dir_all(&dir).unwrap();
}
