//! The store-epoch component of the response-cache key.
//!
//! Regression: the response cache used to be keyed by query
//! fingerprint alone, so a day appended (or removed) after an answer
//! was cached could be served a stale answer computed over the old day
//! set. The key now carries an epoch — a digest of the scannable day
//! set — so any day-set change makes every cold cached answer
//! unreachable, and `refresh` advances hot accumulator states by
//! folding in just the new days.

use spider_serve::proto::Query;
use spider_serve::{EngineConfig, QueryEngine};
use spider_snapshot::{Snapshot, SnapshotRecord, SnapshotStore};
use std::fs;
use std::path::{Path, PathBuf};

const ROWS: usize = 40;

fn sample_snapshot(day: u32) -> Snapshot {
    let records: Vec<SnapshotRecord> = (0..ROWS)
        .map(|i| SnapshotRecord {
            path: format!("/lustre/atlas1/proj{:02}/d{day}/f.{i:06}", i % 5),
            atime: 1_420_000_000 + day as u64 * 86_400 + i as u64 * 31,
            ctime: 1_420_000_000 + i as u64 * 17,
            mtime: 1_420_000_000 + i as u64 * 19,
            uid: 10_000 + (i % 23) as u32,
            gid: 2_000 + (i % 7) as u32,
            mode: if i % 9 == 0 { 0o040_770 } else { 0o100_664 },
            ino: day as u64 * 1_000_000 + i as u64,
            osts: (0..(i % 4) as u16).map(|k| (k * 97, i as u32)).collect(),
        })
        .collect();
    Snapshot::new(day, 1_420_000_000 + day as u64 * 86_400, records)
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spider-epoch-cache-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn seed_store(dir: &Path, days: &[u32]) {
    let mut store = SnapshotStore::open(dir).expect("open store");
    for &day in days {
        store.put(&sample_snapshot(day)).expect("put snapshot");
    }
}

fn append_day(dir: &Path, day: u32) {
    let mut store = SnapshotStore::open(dir).expect("reopen store");
    store.put(&sample_snapshot(day)).expect("append snapshot");
}

fn query(line: &str) -> Query {
    Query::parse(line).expect("parse query")
}

const Q_ALL: &str = r#"{"v":1,"id":1,"tenant":"ops","agg":"count"}"#;

#[test]
fn stale_epoch_answers_are_unreachable_after_day_set_change() {
    let dir = temp_dir("cold");
    seed_store(&dir, &[0, 7, 14]);
    // hot_states: 0 isolates the pure invalidation path — no hot
    // refresh can repopulate the cache for us.
    let engine = QueryEngine::open(
        &dir,
        EngineConfig {
            hot_states: 0,
            ..Default::default()
        },
    )
    .expect("open engine");
    let q = query(Q_ALL);
    let fp = q.fingerprint();

    let fresh = engine
        .execute(spider_core::UNTENANTED, &q)
        .expect("execute");
    assert_eq!(fresh.result, format!("{{\"count\":{}}}", 3 * ROWS));
    assert_eq!(engine.cached(fp).expect("cached").result, fresh.result);

    // A day lands after the answer was cached. Until refresh the
    // engine still serves the old epoch — refresh is the one
    // reconciliation point.
    append_day(&dir, 21);
    assert!(engine.cached(fp).is_some());

    let before = engine.epoch();
    let stats = engine.refresh().expect("refresh");
    assert_eq!(stats.added, vec![21]);
    assert!(stats.removed.is_empty());
    assert_ne!(stats.epoch, before, "day-set change must move the epoch");

    // The regression: this used to return the 3-day answer.
    assert!(
        engine.cached(fp).is_none(),
        "stale answer served across a day-set change"
    );
    let fresh = engine
        .execute(spider_core::UNTENANTED, &q)
        .expect("re-execute");
    assert_eq!(fresh.result, format!("{{\"count\":{}}}", 4 * ROWS));
    assert_eq!(fresh.days_scanned, 4);
    assert_eq!(engine.cached(fp).expect("recached").result, fresh.result);

    // A refresh with nothing changed keeps the epoch (and the cache).
    let stats = engine.refresh().expect("no-op refresh");
    assert!(stats.added.is_empty() && stats.removed.is_empty());
    assert_eq!(stats.epoch, engine.epoch());
    assert!(engine.cached(fp).is_some());

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn refresh_folds_new_days_into_hot_answers() {
    let dir = temp_dir("hot");
    seed_store(&dir, &[0, 7, 14]);
    let engine = QueryEngine::open(&dir, EngineConfig::default()).expect("open engine");

    // Two live answers with different shapes; one day-windowed query
    // that day 21 cannot touch.
    let q_all = query(Q_ALL);
    let q_groups = query(
        r#"{"v":1,"id":2,"tenant":"ops","agg":{"group_count":{"by":"gid","top":3}},"days":[0,40]}"#,
    );
    let q_window = query(r#"{"v":1,"id":3,"tenant":"ops","agg":"count","days":[0,7]}"#);
    for q in [&q_all, &q_groups, &q_window] {
        engine.execute(spider_core::UNTENANTED, q).expect("warm");
    }
    let groups_3day = engine.cached(q_groups.fingerprint()).unwrap();

    append_day(&dir, 21);
    let stats = engine.refresh().expect("refresh");
    assert_eq!(stats.added, vec![21]);
    assert_eq!(
        stats.hot_updated, 2,
        "both day-21-matching answers advance; the [0,7] window does not"
    );
    assert_eq!(stats.hot_dropped, 0);

    // The refreshed answers are served from cache at the new epoch —
    // no re-execution — and match a from-scratch execution exactly.
    let hot_all = engine.cached(q_all.fingerprint()).expect("hot count");
    assert_eq!(hot_all.result, format!("{{\"count\":{}}}", 4 * ROWS));
    assert_eq!(hot_all.days_scanned, 4);
    let hot_groups = engine.cached(q_groups.fingerprint()).expect("hot groups");
    assert_ne!(hot_groups.result, groups_3day.result);
    let oracle = engine
        .execute(spider_core::UNTENANTED, &q_groups)
        .expect("oracle execute");
    assert_eq!(
        hot_groups.result, oracle.result,
        "hot-folded groups must be byte-identical to a fresh fold"
    );

    // The untouched window was not re-cached under the new epoch
    // (nothing changed inside it, but its old answer belongs to the
    // old epoch — it recomputes on next ask).
    assert!(engine.cached(q_window.fingerprint()).is_none());

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn vanished_days_drop_hot_states_instead_of_reusing_them() {
    let dir = temp_dir("vanish");
    seed_store(&dir, &[0, 7, 14]);
    let engine = QueryEngine::open(&dir, EngineConfig::default()).expect("open engine");
    let q = query(Q_ALL);
    engine.execute(spider_core::UNTENANTED, &q).expect("warm");

    fs::remove_file(dir.join("snap-00014.colf")).expect("remove day 14");
    let stats = engine.refresh().expect("refresh");
    assert_eq!(stats.removed, vec![14]);
    assert_eq!(stats.hot_dropped, 1, "counts cannot retract a vanished day");
    assert_eq!(stats.hot_updated, 0);

    assert!(engine.cached(q.fingerprint()).is_none());
    let fresh = engine
        .execute(spider_core::UNTENANTED, &q)
        .expect("re-execute");
    assert_eq!(fresh.result, format!("{{\"count\":{}}}", 2 * ROWS));

    fs::remove_dir_all(&dir).unwrap();
}
