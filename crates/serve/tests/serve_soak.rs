//! Deterministic end-to-end serve soak: seeded closed-loop steady
//! traffic plus an open-loop overload burst against an in-process
//! server. Across every pinned seed: zero dropped requests, every
//! request answered, zero protocol errors, shed answers byte-identical
//! to their cached originals (the load generator's result ledger
//! enforces this), and the exported telemetry snapshot validates.
//!
//! `SPIDER_SERVE_SEED` pins one seed (CI runs one job per pinned
//! seed); unset, all three defaults run.

use spider_serve::{
    run_load, Arrival, EngineConfig, LoadSpec, QueryEngine, QueryPort, Refill, Server,
    ServerConfig, TcpPort,
};
use spider_telemetry::{global, TelemetrySnapshot};
use std::fs;
use std::path::PathBuf;

fn seeds() -> Vec<u64> {
    match std::env::var("SPIDER_SERVE_SEED") {
        Ok(s) => vec![s.parse().expect("SPIDER_SERVE_SEED must be a u64")],
        Err(_) => vec![660_942, 2_964_594_389, 3_237_998_146],
    }
}

const ANALYSTS: usize = 8;
const TENANTS: usize = 3;
const THREADS: usize = 4;
const QUERIES_PER_ANALYST: usize = 25;
const STORE_DAYS: u32 = 6;
const ROWS_PER_DAY: usize = 300;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("spider-serve-soak-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Builds a synthetic store and an in-process server over it, with
/// manual refill and the budget auto-sizing the CLI sweep uses: ~1.2x
/// one steady level's per-tenant demand, so a burst run without a
/// refill deterministically exhausts it and shedding engages.
fn start_server(dir: &PathBuf, seed: u64) -> (Server, u32) {
    let days = spider_serve::synth_store(dir, STORE_DAYS, ROWS_PER_DAY, seed).expect("synth store");
    let day_hi = *days.last().unwrap();
    let engine = QueryEngine::open(dir, EngineConfig::default()).expect("open engine");
    let demand = (ANALYSTS * QUERIES_PER_ANALYST) as u64 * days.len() as u64 / TENANTS as u64;
    let server = Server::start(
        engine,
        ServerConfig {
            workers: 4,
            tenant_budget: demand + demand / 5 + 1,
            refill: Refill::Manual,
            ..Default::default()
        },
    );
    (server, day_hi)
}

fn spec(seed: u64, day_hi: u32, arrival: Arrival) -> LoadSpec {
    LoadSpec {
        seed,
        analysts: ANALYSTS,
        tenants: TENANTS,
        threads: THREADS,
        day_hi,
        arrival,
    }
}

#[test]
fn seeded_soak_steady_then_overload() {
    // Telemetry is off by default; the soak validates the export.
    global().enable();
    for seed in seeds() {
        let dir = temp_dir(&format!("{seed:x}"));
        let (server, day_hi) = start_server(&dir, seed);
        let connect = || -> Result<Box<dyn QueryPort>, String> { Ok(Box::new(server.client())) };

        // Closed-loop steady: at most `THREADS` requests outstanding,
        // well under the shed mark, and the budget covers one full
        // level — every answer must be fresh.
        let steady = run_load(
            spec(
                seed,
                day_hi,
                Arrival::Closed {
                    queries_per_analyst: QUERIES_PER_ANALYST,
                },
            ),
            connect,
        )
        .expect("steady level");
        let want = (ANALYSTS * QUERIES_PER_ANALYST) as u64;
        assert_eq!(steady.sent, want, "seed {seed}: steady offered load");
        assert_eq!(
            steady.answered, steady.sent,
            "seed {seed}: every request answered"
        );
        assert_eq!(steady.dropped, 0, "seed {seed}: steady dropped");
        assert_eq!(
            steady.protocol_errors, 0,
            "seed {seed}: steady protocol errors"
        );
        assert_eq!(
            steady.result_mismatches, 0,
            "seed {seed}: steady result mismatches"
        );
        assert_eq!(
            steady.ok, steady.answered,
            "seed {seed}: steady must not shed or reject"
        );
        assert_eq!(
            steady.trace_violations, 0,
            "seed {seed}: every steady response must echo its trace id"
        );
        assert_eq!(
            steady.stage_sum_violations, 0,
            "seed {seed}: steady cost stages must sum to within 10% of total_ns"
        );

        // Open-loop burst at 3x the steady volume with no budget
        // refill in between: admission must engage — cached answers
        // shed (byte-identical, the ledger checks), the rest get typed
        // rejections — and still nothing drops or errors.
        let burst_total = 3 * ANALYSTS * QUERIES_PER_ANALYST;
        let burst = run_load(
            spec(seed, day_hi, Arrival::OpenBurst { total: burst_total }),
            connect,
        )
        .expect("burst level");
        assert_eq!(
            burst.sent, burst_total as u64,
            "seed {seed}: burst offered load"
        );
        assert_eq!(burst.answered, burst.sent, "seed {seed}: burst answered");
        assert_eq!(burst.dropped, 0, "seed {seed}: burst dropped");
        assert_eq!(
            burst.protocol_errors, 0,
            "seed {seed}: burst protocol errors"
        );
        assert_eq!(
            burst.result_mismatches, 0,
            "seed {seed}: burst result mismatches"
        );
        assert_eq!(
            burst.ok + burst.shed + burst.rejected,
            burst.answered,
            "seed {seed}: burst outcomes must partition"
        );
        assert!(
            burst.shed > 0,
            "seed {seed}: overload must shed stale cached answers (got ok {} shed {} rejected {})",
            burst.ok,
            burst.shed,
            burst.rejected
        );
        assert_eq!(
            burst.trace_violations, 0,
            "seed {seed}: every burst response must echo its trace id"
        );
        assert_eq!(
            burst.stage_sum_violations, 0,
            "seed {seed}: burst cost stages must sum to within 10% of total_ns"
        );

        let (totals, per_tenant) = server.shutdown();
        assert_eq!(totals.errors, 0, "seed {seed}: server-side errors");
        assert_eq!(
            totals.queries,
            steady.sent + burst.sent,
            "seed {seed}: server saw every request exactly once"
        );
        assert_eq!(per_tenant.len(), TENANTS, "seed {seed}: tenant accounting");
        assert_eq!(
            per_tenant.iter().map(|(_, c)| c.queries).sum::<u64>(),
            totals.queries,
            "seed {seed}: per-tenant queries cover the total"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    // The instrumentation the soak exercised must export a snapshot
    // that passes the same validation `telemetry --check` applies.
    let snap = TelemetrySnapshot::capture(global());
    snap.validate()
        .expect("telemetry snapshot must validate after the soak");
    let counter = |name: &str| {
        snap.counters
            .iter()
            .find(|c| c.name == name)
            .unwrap_or_else(|| panic!("missing counter {name}"))
            .value
    };
    assert!(
        counter("serve.queries") > 0,
        "serve.queries must be recorded"
    );
    assert!(counter("serve.shed") > 0, "serve.shed must be recorded");
    assert!(
        snap.histograms
            .iter()
            .any(|h| h.name == "serve.latency_ns" && h.count > 0),
        "serve.latency_ns histogram must be populated"
    );
}

/// The same traffic over real sockets: a listener thread accepts TCP
/// clients and zero connections drop.
#[test]
fn tcp_soak_drops_nothing() {
    // Enabled so the metrics scrape below carries populated counters.
    global().enable();
    let seed = seeds()[0];
    let dir = temp_dir(&format!("tcp-{seed:x}"));
    let (server, day_hi) = start_server(&dir, seed);
    // The listener loop borrows the server for the process lifetime.
    let server: &'static Server = Box::leak(Box::new(server));
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().unwrap().to_string();
    std::thread::spawn(move || {
        let _ = server.serve_listener(listener);
    });

    let connect =
        || -> Result<Box<dyn QueryPort>, String> { Ok(Box::new(TcpPort::connect(&addr)?)) };
    let report = run_load(
        spec(
            seed,
            day_hi,
            Arrival::Closed {
                queries_per_analyst: 10,
            },
        ),
        connect,
    )
    .expect("tcp load");
    assert_eq!(report.sent, (ANALYSTS * 10) as u64);
    assert_eq!(report.answered, report.sent, "every TCP request answered");
    assert_eq!(report.dropped, 0, "zero dropped connections");
    assert_eq!(report.protocol_errors, 0);
    assert_eq!(report.result_mismatches, 0);
    assert_eq!(
        report.trace_violations, 0,
        "trace ids must survive the real-socket round trip"
    );

    // Explicit trace round trip over the wire: a pinned client-chosen
    // id must come back verbatim in the response line.
    let mut port = TcpPort::connect(&addr).expect("trace round-trip connection");
    let mut query = spider_serve::sample_query(9001, "t0", day_hi, 7);
    query.trace = 0xfeed_face;
    let line = port.request(&query.render()).expect("traced request");
    assert!(
        line.contains("\"trace\":\"00000000feedface\""),
        "response must echo the request's trace id, got: {line}"
    );
    let parsed = spider_serve::ParsedResponse::parse(&line).expect("traced response parses");
    assert_eq!(parsed.trace, 0xfeed_face);

    // Metrics scrapes over the same socket: the scrape sequence
    // advances and every cumulative counter is monotonic between
    // consecutive scrapes.
    let first = spider_serve::scrape_metrics(&mut port).expect("first scrape");
    port.request(&spider_serve::sample_query(9002, "t1", day_hi, 8).render())
        .expect("traffic between scrapes");
    let second = spider_serve::scrape_metrics(&mut port).expect("second scrape");
    let counters = |line: &str| -> Vec<(String, u64)> {
        let doc = spider_serve::json::parse(line).expect("metrics line parses");
        doc.get("telemetry")
            .and_then(|t| t.get("counters"))
            .and_then(|c| c.as_arr().map(<[_]>::to_vec))
            .expect("metrics carries telemetry counters")
            .iter()
            .map(|c| {
                (
                    c.get("name").unwrap().as_str().unwrap().to_string(),
                    c.get("value").unwrap().as_u64().unwrap(),
                )
            })
            .collect()
    };
    let scrape_of = |line: &str| {
        spider_serve::json::parse(line)
            .unwrap()
            .get("scrape")
            .unwrap()
            .as_u64()
            .unwrap()
    };
    assert!(
        scrape_of(&second) > scrape_of(&first),
        "scrape seq advances"
    );
    let before: std::collections::HashMap<String, u64> = counters(&first).into_iter().collect();
    let after = counters(&second);
    assert!(!after.is_empty(), "scrape must carry counters");
    for (name, value) in &after {
        if let Some(prev) = before.get(name) {
            assert!(
                value >= prev,
                "counter {name} went backwards between scrapes: {prev} -> {value}"
            );
        }
    }
    fs::remove_dir_all(&dir).unwrap();
}
