//! Simulation configuration.

use serde::{Deserialize, Serialize};
use spider_fsmeta::PurgePolicy;
use spider_workload::PopulationConfig;

/// Full configuration of a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Master seed (population and activity derive their own streams).
    pub seed: u64,
    /// Volume scale relative to the paper's absolute numbers. At 1.0 the
    /// run would generate ~4.3 B entries over 500 days; the default of
    /// `1/1000` yields a few million — the same distributional shape at
    /// laptop scale.
    pub scale: f64,
    /// Observation window length in days (the paper: 500).
    pub days: u32,
    /// Snapshot cadence in days (the paper samples weekly).
    pub snapshot_interval_days: u32,
    /// Warm-up length in days before the observation window. The default
    /// is 231 days (33 weeks): Spider II had been in production for years
    /// before the study's window opened, so the first observed snapshot
    /// must already contain old, still-read reference data (Fig. 16's
    /// ages) and a purge-equilibrated churn population.
    pub warmup_days: u32,
    /// Population synthesis parameters.
    pub population: PopulationConfig,
    /// Purge policy (the paper: 90 days).
    pub purge: PurgePolicy,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            seed: 0x0197_3caf,
            scale: 0.001,
            days: 500,
            snapshot_interval_days: 7,
            warmup_days: 231,
            population: PopulationConfig::default(),
            purge: PurgePolicy::default(),
        }
    }
}

impl SimConfig {
    /// A configuration sized for unit/integration tests: a scaled-down
    /// population and a short window, still covering several purge cycles
    /// worth of churn behaviour per project.
    pub fn test_small(seed: u64) -> Self {
        SimConfig {
            seed,
            scale: 0.0002,
            days: 140,
            snapshot_interval_days: 7,
            warmup_days: 28,
            population: PopulationConfig {
                seed,
                project_scale: 0.12,
                ..PopulationConfig::default()
            },
            purge: PurgePolicy::default(),
        }
    }

    /// Sets the volume scale.
    pub fn with_scale(mut self, scale: f64) -> Self {
        self.scale = scale;
        self
    }

    /// Sets the observation window length.
    pub fn with_days(mut self, days: u32) -> Self {
        self.days = days;
        self
    }

    /// Sets the master seed (also seeds the population).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self.population.seed = seed;
        self
    }

    /// Number of snapshot dates in the observation window, including the
    /// day-0 scan taken as the window opens (the paper: 72 dates over
    /// 500 days).
    pub fn snapshot_count(&self) -> u32 {
        self.days / self.snapshot_interval_days + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_cadence() {
        let c = SimConfig::default();
        assert_eq!(c.days, 500);
        assert_eq!(c.snapshot_interval_days, 7);
        assert_eq!(c.purge.window_days, 90);
        // 71 full weeks in 500 days plus the window-opening scan: the
        // paper's 72 snapshot dates.
        assert_eq!(c.snapshot_count(), 72);
    }

    #[test]
    fn builders() {
        let c = SimConfig::default()
            .with_scale(0.5)
            .with_days(70)
            .with_seed(9);
        assert_eq!(c.scale, 0.5);
        assert_eq!(c.days, 70);
        assert_eq!(c.seed, 9);
        assert_eq!(c.population.seed, 9);
        assert_eq!(c.snapshot_count(), 11);
    }

    #[test]
    fn test_config_is_small() {
        let c = SimConfig::test_small(1);
        assert!(c.scale < 0.001);
        assert!(c.days <= 150);
        assert!(c.population.project_scale < 0.5);
    }
}
