//! The week-loop simulation driver.

use crate::config::SimConfig;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use spider_core::FrameLoader;
use spider_fsmeta::{
    FileSystem, FsError, Gid, InodeId, PurgeEngine, SimClock, Timestamp, Uid, DAY_SECS,
};
use spider_snapshot::store::StoreError;
use spider_snapshot::{scan, Snapshot, SnapshotStore};
use spider_workload::{Population, Project, ProjectBehavior};

/// Per-week accounting, one entry per simulated week (warm-up included,
/// with negative observation days).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WeekStats {
    /// Observation day at the week's end (0 = window start; warm-up weeks
    /// are negative).
    pub observation_day: i32,
    /// Files created this week.
    pub created: u64,
    /// Files deleted by users this week.
    pub user_deleted: u64,
    /// Files removed by the purge engine this week.
    pub purged: u64,
    /// Live files at week end.
    pub live_files: u64,
    /// Live directories at week end.
    pub live_dirs: u64,
}

/// Result of a full simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimulationOutcome {
    /// Weekly accounting, in order.
    pub weeks: Vec<WeekStats>,
    /// Days (observation) on which snapshots were persisted.
    pub snapshot_days: Vec<u32>,
    /// Observation days whose snapshot could not be persisted even
    /// after retries (transient storage failure); the analysis degrades
    /// to the surviving days, like the paper skipping unusable dumps.
    pub dropped_days: Vec<u32>,
    /// Total files ever created.
    pub total_created: u64,
    /// Total rows confirmed readable by the post-run verification sweep
    /// (every persisted day loaded back through the columnar fast path).
    #[serde(default)]
    pub verified_rows: u64,
    /// Persisted days the verification sweep could not load back (the
    /// write landed but the bytes no longer decode, even lossily).
    #[serde(default)]
    pub unverified_days: Vec<u32>,
}

/// One simulated event inside a week.
#[derive(Debug)]
enum Event {
    Create {
        project: u32,
        dir: InodeId,
        name: String,
        uid: Uid,
        stripe: Option<u32>,
        reference: bool,
    },
    Write(InodeId),
    Read(InodeId),
    Touch(InodeId),
    Delete {
        ino: InodeId,
    },
}

/// Per-project runtime state.
struct ProjectState {
    behavior: ProjectBehavior,
    /// Zipf-ish activity weights per member: most files come from a
    /// couple of active members (the paper's median project holds ~10x
    /// the files of its median user, which uniform attribution cannot
    /// produce).
    member_weights: Vec<f64>,
    /// Leaf directories currently receiving files (most recent last).
    campaign_dirs: Vec<InodeId>,
    /// Live churn files — user-delete candidates (references are tracked
    /// separately and are exempt from scratch cleanup).
    live_files: Vec<InodeId>,
    /// Long-lived reference datasets (kept alive by cyclic re-reads).
    reference_files: Vec<InodeId>,
    /// Campaign directories rotated out of the active set, awaiting user
    /// cleanup once the purge empties them.
    retired_dirs: Vec<InodeId>,
    /// Files created within the last two weeks (update/read candidates).
    recent_files: Vec<InodeId>,
    /// Name serial counter.
    serial: u64,
    /// Whether the one-off deep-chain stress test ran (stf-style).
    stress_chain_done: bool,
    /// Per-entry accounting for the dir-fraction target.
    files_created: u64,
    dirs_created: u64,
}

/// A full simulation instance.
pub struct Simulation {
    config: SimConfig,
    population: Population,
    fs: FileSystem,
    states: Vec<ProjectState>,
    rng: StdRng,
    purge: PurgeEngine,
    week_index: u32,
    total_created: u64,
}

impl Simulation {
    /// Builds the simulation: generates the population, resolves per-
    /// project behaviour, and creates the project/user directory skeleton.
    pub fn new(config: SimConfig) -> Self {
        let population = Population::generate(&config.population);
        let mut rng = StdRng::seed_from_u64(config.seed ^ 0x9e37_79b9_7f4a_7c15);
        let mut fs = FileSystem::new();
        let purge = PurgeEngine::new(config.purge);

        let mut states = Vec::with_capacity(population.projects.len());
        for project in &population.projects {
            let profile = spider_workload::profile(project.domain);
            let behavior = ProjectBehavior::resolve(project, profile, config.scale, &mut rng);
            let root = fs.root();
            let proj_dir = fs
                .mkdir(root, &project.name, Uid(0), Gid(project.gid))
                .expect("project names are unique");
            let mut campaign_dirs = Vec::new();
            for member in &project.members {
                let user = &population.users[member.0 as usize];
                let user_dir = fs
                    .mkdir(
                        proj_dir,
                        &format!("u{}", user.uid),
                        Uid(user.uid),
                        Gid(project.gid),
                    )
                    .expect("member uids are unique within a project");
                campaign_dirs.push(user_dir);
            }
            // Domain-level stripe default, applied at the project root the
            // way admins/users run `lfs setstripe` on top-level dirs.
            if let Some(tuning) = behavior.stripe_tuning {
                if tuning.max_stripe < 4 {
                    fs.set_dir_stripe_default(proj_dir, tuning.max_stripe)
                        .expect("valid stripe");
                }
            }
            let member_weights: Vec<f64> = (1..=project.members.len())
                .map(|rank| (rank as f64).powf(-1.8))
                .collect();
            states.push(ProjectState {
                behavior,
                member_weights,
                campaign_dirs,
                live_files: Vec::new(),
                reference_files: Vec::new(),
                retired_dirs: Vec::new(),
                recent_files: Vec::new(),
                serial: 0,
                stress_chain_done: false,
                files_created: 0,
                dirs_created: 0,
            });
        }

        Simulation {
            config,
            population,
            fs,
            states,
            rng,
            purge,
            week_index: 0,
            total_created: 0,
        }
    }

    /// The generated population.
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// The live file system (snapshot scans borrow it).
    pub fn file_system(&self) -> &FileSystem {
        &self.fs
    }

    /// The configuration.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// Total files created so far (warm-up included).
    pub fn total_created(&self) -> u64 {
        self.total_created
    }

    /// Observation day at the *end* of week `week_index` (may be negative
    /// during warm-up).
    fn observation_day_at_week_end(&self) -> i32 {
        let day_end = (self.week_index + 1) * self.config.snapshot_interval_days;
        day_end as i32 - self.config.warmup_days as i32
    }

    /// Runs one week: generate events, execute them, purge, and account.
    pub fn run_week(&mut self) -> WeekStats {
        let interval = self.config.snapshot_interval_days as u64;
        let week_secs = interval * DAY_SECS;
        let week_start: Timestamp =
            SimClock::day_start(self.week_index * self.config.snapshot_interval_days);
        let obs_day_end = self.observation_day_at_week_end();
        // Growth ramp uses the observation day (clamped to 0 in warm-up).
        let ramp_day = obs_day_end.max(0) as u32;

        // Phase 1: directory setup at week start.
        debug_assert!(self.fs.now() <= week_start);
        let advance = week_start - self.fs.now();
        self.fs.advance_clock(advance);
        let mut events: Vec<(Timestamp, Event)> = Vec::new();
        for pi in 0..self.states.len() {
            self.plan_project_week(pi, ramp_day, week_start, week_secs, &mut events);
        }

        // Phase 2: execute in global time order. sort_by_key is stable, so
        // equal-timestamp events keep generation order (Create before a
        // later Read of the same file).
        events.sort_by_key(|e| e.0);
        let mut created = 0u64;
        let mut user_deleted = 0u64;
        for (time, event) in events {
            let now = self.fs.now();
            if time > now {
                self.fs.advance_clock(time - now);
            }
            match self.execute(event) {
                Ok(Some(Outcome::Created)) => created += 1,
                Ok(Some(Outcome::Deleted)) => user_deleted += 1,
                Ok(None) => {}
                Err(FsError::NoSuchInode(_)) => {} // stale target: purged already
                Err(e) => panic!("simulation event failed: {e}"),
            }
        }

        // Phase 3: purge at week end, then prune stale state.
        let week_end = week_start + week_secs - 1;
        let now = self.fs.now();
        if week_end > now {
            self.fs.advance_clock(week_end - now);
        }
        let purge_report = self.purge.run(&mut self.fs).expect("purge cannot fail");
        self.prune_stale();

        self.total_created += created;
        self.week_index += 1;
        WeekStats {
            observation_day: obs_day_end,
            created,
            user_deleted,
            purged: purge_report.purged,
            live_files: self.fs.file_count(),
            live_dirs: self.fs.dir_count(),
        }
    }

    /// Runs the full configured simulation (warm-up + observation),
    /// persisting observation-window snapshots into `store`.
    pub fn run(&mut self, store: &mut SnapshotStore) -> Result<SimulationOutcome, StoreError> {
        let tel = spider_telemetry::global();
        let _simulate = tel.span("simulate");
        let mut weeks = Vec::new();
        let mut snapshot_days = Vec::new();
        let mut dropped_days = Vec::new();
        let total_weeks =
            (self.config.warmup_days + self.config.days) / self.config.snapshot_interval_days;
        for _ in 0..total_weeks {
            let stats = {
                let _generate = tel.span("generate");
                self.run_week()
            };
            if stats.observation_day >= 0 {
                let day = stats.observation_day as u32;
                let _write = tel.span("write");
                match store.put(&self.snapshot(day)) {
                    Ok(()) => snapshot_days.push(day),
                    // A persistently failing write (the store already
                    // retried transients) loses this week's dump, not
                    // the run: record the gap and keep simulating, the
                    // way the study worked around unusable snapshots.
                    Err(StoreError::Io(_)) => {
                        tel.incr("sim.dropped_days", 1);
                        dropped_days.push(day);
                    }
                    Err(e) => return Err(e),
                }
            }
            weeks.push(stats);
        }
        // Verification sweep: load every persisted day back through the
        // columnar fast path, in parallel. Per-day tolerant — a day that
        // fails to read back is reported, not fatal, matching the
        // dropped-days philosophy above (and under fault injection a
        // day may well be unreadable by design).
        let _verify = tel.span("verify");
        let mut verified_rows = 0u64;
        let mut unverified_days = Vec::new();
        let loader = FrameLoader::new(store)?;
        for (day, result) in loader.try_frames(&snapshot_days) {
            match result {
                Ok(frame) => verified_rows += frame.len() as u64,
                Err(_) => {
                    tel.incr("sim.unverified_days", 1);
                    unverified_days.push(day);
                }
            }
        }
        Ok(SimulationOutcome {
            weeks,
            snapshot_days,
            dropped_days,
            total_created: self.total_created,
            verified_rows,
            unverified_days,
        })
    }

    /// Scans the current namespace into a snapshot labelled with the given
    /// observation day.
    pub fn snapshot(&self, observation_day: u32) -> Snapshot {
        scan(&self.fs, observation_day)
    }

    // ---- internals ----

    fn plan_project_week(
        &mut self,
        pi: usize,
        ramp_day: u32,
        week_start: Timestamp,
        week_secs: u64,
        events: &mut Vec<(Timestamp, Event)>,
    ) {
        let project = self.population.projects[pi].clone();
        let surge = ProjectBehavior::surge_multiplier(project.domain, ramp_day);
        let interval_days = self.config.snapshot_interval_days;

        // --- creations ---
        let mut n_new = 0u64;
        for d in 0..interval_days {
            let state = &self.states[pi];
            n_new += state.behavior.files_for_day(
                ramp_day.saturating_sub(interval_days - 1 - d),
                surge,
                &mut self.rng,
            );
        }

        // Directory budget to hold the week's files at the domain's
        // dir-share target; chains are created synchronously (week start).
        self.ensure_directories(pi, &project, n_new);

        let state = &mut self.states[pi];
        for _ in 0..n_new {
            let offset = state.behavior.write_offset(&mut self.rng, week_secs as f64) as u64;
            let dir = *pick(&mut self.rng, &state.campaign_dirs);
            let name = state
                .behavior
                .extensions
                .sample_name(&mut self.rng, state.serial);
            state.serial += 1;
            let member_idx =
                spider_workload::rng::weighted_choice(&mut self.rng, &state.member_weights)
                    .expect("projects have members");
            let member = project.members[member_idx];
            let uid = spider_workload::population::UID_BASE + member.0;
            let stripe = state.behavior.sample_stripe(&mut self.rng);
            let reference = self.rng.random_range(0.0..1.0) < state.behavior.reference_fraction;
            events.push((
                week_start + offset,
                Event::Create {
                    project: pi as u32,
                    dir,
                    name,
                    uid: Uid(uid),
                    stripe,
                    reference,
                },
            ));
        }

        // --- checkpoint updates on recent files ---
        let n_updates =
            (state.recent_files.len() as f64 * state.behavior.weekly_update_fraction) as usize;
        for _ in 0..n_updates {
            let ino = *pick(&mut self.rng, &state.recent_files);
            let offset = state.behavior.write_offset(&mut self.rng, week_secs as f64) as u64;
            events.push((week_start + offset, Event::Write(ino)));
        }

        // --- read sessions: reference datasets + a slice of recent files ---
        let session_center = self.rng.random_range(0.15..0.9) * week_secs as f64;
        // Each reference file is re-read on its own cycle (just inside the
        // purge window), staggered by inode number.
        let week = self.week_index as u64;
        let base_cycle = state.behavior.reference_cycle_weeks as u64;
        let ref_inos: Vec<InodeId> = state
            .reference_files
            .iter()
            .copied()
            .filter(|ino| {
                let cycle = base_cycle + ino.0 % 3;
                (week + ino.0) % cycle == 0
            })
            .collect();
        for ino in ref_inos {
            let offset = state
                .behavior
                .read_offset(&mut self.rng, week_secs as f64, session_center)
                as u64;
            events.push((week_start + offset, Event::Read(ino)));
        }
        let n_recent_reads = (state.recent_files.len() as f64 * 0.04) as usize;
        for _ in 0..n_recent_reads {
            let ino = *pick(&mut self.rng, &state.recent_files);
            let offset = state
                .behavior
                .read_offset(&mut self.rng, week_secs as f64, session_center)
                as u64;
            events.push((week_start + offset, Event::Read(ino)));
        }

        // --- user deletions of non-reference scratch ---
        let n_delete =
            (state.live_files.len() as f64 * state.behavior.weekly_delete_fraction) as usize;
        for _ in 0..n_delete {
            let ino = *pick(&mut self.rng, &state.live_files);
            let offset = self.rng.random_range(0..week_secs);
            events.push((week_start + offset, Event::Delete { ino }));
        }

        // --- purge-dodging touch script (fixed small-hours slot) ---
        if state.behavior.touch_script {
            let touch_time = week_start + 6 * DAY_SECS + 3 * 3_600;
            for ino in state.live_files.iter().chain(&state.reference_files) {
                events.push((touch_time, Event::Touch(*ino)));
            }
        }

        // --- one-off deep-chain stress test (stf/gen style) ---
        if !state.stress_chain_done && state.behavior.depth_max > 100 && ramp_day > 30 {
            self.build_stress_chain(pi, &project);
        }
    }

    /// Creates new campaign directory chains so the week's files land at
    /// the domain's depth and directory-share targets.
    fn ensure_directories(&mut self, pi: usize, project: &Project, incoming_files: u64) {
        let state = &mut self.states[pi];
        let df = state.behavior.dir_fraction.clamp(0.01, 0.95);
        let target_dirs = ((state.files_created + incoming_files) as f64 * df / (1.0 - df)) as u64;
        let mut to_create = target_dirs.saturating_sub(state.dirs_created);
        // Always keep at least one active campaign dir beyond the user
        // dirs once files start flowing.
        if incoming_files > 0 && state.campaign_dirs.len() <= project.members.len() {
            to_create = to_create.max(1);
        }
        while to_create > 0 {
            let depth_target = state.behavior.sample_campaign_depth(&mut self.rng);
            let base = *pick(&mut self.rng, &state.campaign_dirs);
            let base_depth = self.fs.inode(base).expect("live dir").depth;
            let chain = (depth_target as i32 - base_depth as i32).clamp(1, 16) as u64;
            let chain = chain.min(to_create.max(1));
            let member = project.members[self.rng.random_range(0..project.members.len())];
            let uid = spider_workload::population::UID_BASE + member.0;
            let mut cur = base;
            for _ in 0..chain {
                let name = format!("d{:05}", state.dirs_created);
                cur = self
                    .fs
                    .mkdir(cur, &name, Uid(uid), Gid(project.gid))
                    .expect("serial dir names are unique");
                state.dirs_created += 1;
            }
            state.campaign_dirs.push(cur);
            // Keep the active set bounded; old campaigns stop receiving
            // files (they age out via purge) and await user cleanup.
            if state.campaign_dirs.len() > project.members.len() + 24 {
                let retired = state.campaign_dirs.remove(project.members.len());
                state.retired_dirs.push(retired);
            }
            to_create = to_create.saturating_sub(chain);
        }
    }

    /// The metadata stress test the paper attributes to Staff: a one-off
    /// directory chain thousands deep (Table 1 reports depth 2,030).
    fn build_stress_chain(&mut self, pi: usize, project: &Project) {
        let state = &mut self.states[pi];
        state.stress_chain_done = true;
        let depth_max = state.behavior.depth_max;
        let member = project.members[0];
        let uid = spider_workload::population::UID_BASE + member.0;
        let mut cur = state.campaign_dirs[0];
        let base_depth = self.fs.inode(cur).expect("live dir").depth;
        for i in 0..depth_max.saturating_sub(base_depth) {
            let name = format!("s{i:04}");
            cur = self
                .fs
                .mkdir(cur, &name, Uid(uid), Gid(project.gid))
                .expect("stress chain names are unique");
            state.dirs_created += 1;
        }
        // A single marker file at the bottom, as a stress test would leave.
        let _ = self
            .fs
            .create(cur, "probe.log", Uid(uid), Gid(project.gid), None);
    }

    fn execute(&mut self, event: Event) -> Result<Option<Outcome>, FsError> {
        match event {
            Event::Create {
                project,
                dir,
                name,
                uid,
                stripe,
                reference,
            } => {
                let gid = self.population.projects[project as usize].gid;
                let ino = self.fs.create(dir, &name, uid, Gid(gid), stripe)?;
                let state = &mut self.states[project as usize];
                if reference {
                    state.reference_files.push(ino);
                } else {
                    state.live_files.push(ino);
                }
                state.recent_files.push(ino);
                state.files_created += 1;
                Ok(Some(Outcome::Created))
            }
            Event::Write(ino) => self.fs.write(ino).map(|_| None),
            Event::Read(ino) => self.fs.read(ino).map(|_| None),
            Event::Touch(ino) => self.fs.touch(ino).map(|_| None),
            Event::Delete { ino } => {
                // Deletion events are drawn from the churn list only, so
                // reference datasets are never candidates. A stale id
                // (already purged) is a no-op.
                match self.fs.unlink(ino) {
                    Ok(()) => Ok(Some(Outcome::Deleted)),
                    Err(FsError::NoSuchInode(_)) => Ok(None),
                    Err(e) => Err(e),
                }
            }
        }
    }

    /// Drops dead inode ids from per-project lists, expires the
    /// recent-files window (two weeks), and lets users clean up emptied
    /// campaign directories (the paper notes purge leaves empty
    /// directories behind for users to remove).
    fn prune_stale(&mut self) {
        for state in &mut self.states {
            let fs = &self.fs;
            state.live_files.retain(|&ino| fs.inode(ino).is_ok());
            state.reference_files.retain(|&ino| fs.inode(ino).is_ok());
            let keep_from = state
                .recent_files
                .len()
                .saturating_sub((state.behavior.base_daily_files * 28.0) as usize + 64);
            state.recent_files.drain(..keep_from);
            state.recent_files.retain(|&ino| fs.inode(ino).is_ok());

            // User cleanup of retired campaigns: walk each emptied chain
            // upward, removing directories until a non-empty one stops us.
            let retired = std::mem::take(&mut state.retired_dirs);
            for leaf in retired {
                let mut cur = leaf;
                loop {
                    let Ok(node) = self.fs.inode(cur) else { break };
                    if !node.is_dir() || node.depth <= 5 {
                        break; // never remove project/user skeleton dirs
                    }
                    let parent = node.parent;
                    match self.fs.rmdir(cur) {
                        Ok(()) => cur = parent,
                        Err(_) => {
                            // Still holds files (purge hasn't emptied it
                            // yet): try again next week.
                            state.retired_dirs.push(cur);
                            break;
                        }
                    }
                }
            }
        }
    }
}

enum Outcome {
    Created,
    Deleted,
}

fn pick<'v, T>(rng: &mut StdRng, items: &'v [T]) -> &'v T {
    &items[rng.random_range(0..items.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_sim(seed: u64) -> Simulation {
        Simulation::new(SimConfig::test_small(seed))
    }

    #[test]
    fn setup_creates_project_and_user_dirs() {
        let sim = small_sim(1);
        let pop = sim.population();
        let fs = sim.file_system();
        // project dirs + user dirs + root
        let expected_dirs: u64 = 1
            + pop.project_count() as u64
            + pop
                .projects
                .iter()
                .map(|p| p.members.len() as u64)
                .sum::<u64>();
        assert_eq!(fs.dir_count(), expected_dirs);
        assert_eq!(fs.file_count(), 0);
    }

    #[test]
    fn one_week_creates_files() {
        let mut sim = small_sim(2);
        let stats = sim.run_week();
        assert!(stats.created > 0, "no files created");
        assert_eq!(stats.live_files, stats.created - stats.user_deleted);
        assert!(stats.observation_day < 0); // still warm-up
    }

    #[test]
    fn clock_never_goes_backwards_across_weeks() {
        let mut sim = small_sim(3);
        let mut last = sim.file_system().now();
        for _ in 0..6 {
            sim.run_week();
            let now = sim.file_system().now();
            assert!(now > last);
            last = now;
        }
    }

    #[test]
    fn purge_kicks_in_after_window() {
        let mut sim = small_sim(4);
        let mut purged_total = 0;
        // 28 warm-up days + 140 observation days > 90-day window.
        for _ in 0..22 {
            purged_total += sim.run_week().purged;
        }
        assert!(purged_total > 0, "purge never fired");
    }

    #[test]
    fn full_run_persists_snapshots() {
        let dir = std::env::temp_dir().join(format!("spider-sim-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = SnapshotStore::open(&dir).unwrap();
        let mut sim = small_sim(5);
        let outcome = sim.run(&mut store).unwrap();
        let expected_snaps = sim.config().snapshot_count() as usize;
        assert_eq!(outcome.snapshot_days.len(), expected_snaps);
        assert_eq!(store.len(), expected_snaps);
        // Snapshots are loadable and non-empty late in the run.
        let last = *outcome.snapshot_days.last().unwrap();
        let snap = store.get(last).unwrap().unwrap();
        assert!(snap.len() > 100);
        assert!(outcome.total_created > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persistent_write_failure_drops_the_week_not_the_run() {
        use spider_snapshot::faultfs::{FaultFs, FaultKind};
        use spider_snapshot::io::OsIo;
        use spider_snapshot::store::RetryPolicy;
        use std::sync::Arc;

        let dir = std::env::temp_dir().join(format!("spider-sim-drop-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let ffs = Arc::new(FaultFs::new(OsIo, 21));
        let mut store = SnapshotStore::open_with_io(
            &dir,
            ffs.clone() as Arc<dyn spider_snapshot::io::StoreIo>,
            RetryPolicy::immediate(),
        )
        .unwrap();
        // Fail every write attempt of the first snapshot put (the store
        // retries three times), so that week's dump is lost for good.
        for op in 0..3 {
            ffs.plan_write(op, FaultKind::TransientEio);
        }
        let mut sim = small_sim(5);
        let outcome = sim.run(&mut store).unwrap();
        let expected_snaps = sim.config().snapshot_count() as usize;
        assert_eq!(outcome.dropped_days.len(), 1, "one week should drop");
        assert_eq!(outcome.snapshot_days.len(), expected_snaps - 1);
        assert_eq!(store.len(), expected_snaps - 1);
        // The dropped day is the first observation day and is absent
        // from the persisted set.
        let dropped = outcome.dropped_days[0];
        assert!(!outcome.snapshot_days.contains(&dropped));
        assert!(store.get(dropped).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_records_phase_spans_when_telemetry_is_on() {
        let dir = std::env::temp_dir().join(format!("spider-sim-tel-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = SnapshotStore::open(&dir).unwrap();
        let tel = spider_telemetry::global();
        tel.enable();
        let mut sim = small_sim(6);
        sim.run(&mut store).unwrap();
        tel.disable();
        let spans = tel.span_stats();
        for path in [
            vec!["simulate"],
            vec!["simulate", "generate"],
            vec!["simulate", "write"],
            vec!["simulate", "verify"],
        ] {
            assert!(
                spans.iter().any(|(p, _)| *p == path),
                "missing span {path:?}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn simulation_is_deterministic() {
        let run = |seed| {
            let mut sim = small_sim(seed);
            for _ in 0..8 {
                sim.run_week();
            }
            let snap = sim.snapshot(0);
            (
                snap.len(),
                snap.records().first().cloned(),
                sim.total_created,
            )
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn live_count_grows_across_observation() {
        let mut sim = small_sim(9);
        let mut early = 0;
        let mut late = 0;
        let weeks = (sim.config().warmup_days + sim.config().days) / 7;
        for w in 0..weeks {
            let s = sim.run_week();
            if w == weeks / 3 {
                early = s.live_files;
            }
            if w == weeks - 1 {
                late = s.live_files;
            }
        }
        assert!(
            late as f64 > early as f64 * 1.3,
            "no growth: early {early}, late {late}"
        );
    }

    #[test]
    fn retired_campaign_dirs_get_cleaned_up() {
        // Campaigns rotate once a project exceeds its active-dir cap; the
        // purge empties retired chains and the weekly cleanup removes
        // them, keeping the live directory share bounded (Fig. 15).
        let mut sim = small_sim(31);
        let weeks = (sim.config().warmup_days + sim.config().days) / 7;
        for _ in 0..weeks {
            sim.run_week();
        }
        assert!(
            sim.file_system().removed_dirs() > 0,
            "no campaign cleanup happened"
        );
    }

    #[test]
    fn stress_chain_reaches_extreme_depth() {
        // The stf profile's depth_max is 2,030 (the paper's metadata
        // stress test); the driver builds that chain once, after the
        // warm-up.
        let mut sim = small_sim(21);
        let weeks = (sim.config().warmup_days + sim.config().days) / 7;
        for _ in 0..weeks.min(10) {
            sim.run_week();
        }
        let snap = sim.snapshot(0);
        let max_depth = snap.records().iter().map(|r| r.depth()).max().unwrap_or(0);
        assert!(max_depth > 500, "max depth {max_depth}");
        // And the probe file sits at the bottom of a very long path.
        let deepest = snap.records().iter().max_by_key(|r| r.depth()).unwrap();
        assert!(deepest.path.len() > 2_000);
    }

    #[test]
    fn touch_scripts_keep_projects_alive() {
        // With a 90-day purge and touch scripts on ~10% of projects,
        // every simulated week must leave some files alive even for
        // projects that never read.
        let mut sim = small_sim(22);
        let weeks = (sim.config().warmup_days + sim.config().days) / 7;
        let mut last = WeekStats {
            observation_day: 0,
            created: 0,
            user_deleted: 0,
            purged: 0,
            live_files: 0,
            live_dirs: 0,
        };
        for _ in 0..weeks {
            last = sim.run_week();
        }
        assert!(last.live_files > 0);
        // Deleted + purged never exceeds created.
        let total_removed: u64 = sim.file_system().unlinked_files();
        assert!(total_removed <= sim.total_created());
    }

    #[test]
    fn snapshot_records_have_expected_paths() {
        let mut sim = small_sim(10);
        for _ in 0..4 {
            sim.run_week();
        }
        let snap = sim.snapshot(0);
        let with_project_prefix = snap
            .records()
            .iter()
            .filter(|r| r.path.starts_with("/lustre/atlas1/"))
            .count();
        assert_eq!(with_project_prefix, snap.len());
        // Files are owned by synthetic uids/gids.
        for r in snap.records().iter().take(50) {
            if r.is_file() {
                assert!(r.uid >= spider_workload::population::UID_BASE);
                assert!(r.gid >= spider_workload::population::GID_BASE);
                assert!(r.stripe_count() > 0);
            }
        }
    }
}
