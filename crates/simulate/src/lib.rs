//! # spider-sim
//!
//! The simulation driver: executes the `spider-workload` behavioral model
//! against the `spider-fsmeta` substrate and emits weekly LustreDU
//! snapshots through `spider-snapshot`, reproducing the data-collection
//! side of the SC '17 Spider II study.
//!
//! The driver advances in **one-week steps** (the study's snapshot
//! cadence). Each week it:
//!
//! 1. creates any new campaign directory chains each project needs (depth
//!    targets from Table 1, directory share from Fig. 7b);
//! 2. generates the week's events — file creations with
//!    burstiness-calibrated `mtime` offsets, checkpoint updates, tightly
//!    clustered read sessions, user deletions, and purge-dodging touch
//!    scripts;
//! 3. executes all events in global timestamp order (the simulated clock
//!    only moves forward);
//! 4. runs the 90-day purge engine (the nightly process, batched weekly —
//!    the window is ~13× the batch interval, so the approximation error
//!    is a few days of extra lifetime at most);
//! 5. scans the namespace into a [`spider_snapshot::Snapshot`] and
//!    persists it to a [`spider_snapshot::SnapshotStore`].
//!
//! A 13-week **warm-up** precedes the 500-day observation window so the
//! first observed snapshot already sees a populated, purge-equilibrated
//! file system (the real study joined Spider II mid-life).

#![warn(missing_docs)]

pub mod config;
pub mod driver;

pub use config::SimConfig;
pub use driver::{Simulation, SimulationOutcome, WeekStats};
