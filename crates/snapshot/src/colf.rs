//! `colf` — **col**umn **f**ile, the Parquet stand-in of the pipeline.
//!
//! The study converts each 119 GB PSV snapshot into a columnar, compressed
//! binary format (Parquet), cutting the footprint to ~28 GB and making
//! column scans fast (Fig. 4). `colf` reproduces the two properties that
//! matter for that result:
//!
//! * **columnar layout** — each attribute is stored contiguously, so an
//!   analysis touching only `mtime` never deserializes paths;
//! * **lightweight encodings** — the path column is *front-coded* (records
//!   are sorted by path, so consecutive paths share long prefixes) and
//!   every integer column is stored as min-anchored LEB128 varints
//!   (timestamps cluster within the 500-day window, so deltas are small).
//!
//! Version 2 adds what 500 days of real operational dumps demand
//! (paper §2.2: snapshots arrive truncated, torn, or flipped, and the
//! study simply skips to the nearest usable day): **per-section XXH64
//! checksums** and a **section-skipping reader**. Every column lives in
//! its own length-prefixed, checksummed section, so a bad `osts` column
//! still yields every other column, and corruption is always *detected*
//! — never silently wrong numbers.
//!
//! v2 layout (all integers varint unless noted):
//!
//! ```text
//! magic "COLF" | version u8 = 2
//! header_len | header | xxh64(header) u64-LE
//!   header: day u32-LE | taken_at | count
//! table: n_sections u8 | n x (id u8, len, xxh64(payload) u64-LE)
//!        | xxh64(table entries) u64-LE
//! payloads, concatenated in table order:
//!   paths:  count x (shared_prefix_len, suffix_len, suffix bytes)
//!   atime:  min, count x delta     (likewise ctime, mtime, ino)
//!   uid:    count x value          (likewise gid, mode)
//!   osts:   count x (n, n x (ost, object))
//! ```
//!
//! Version 3 adds **predicate pushdown support**: every column section
//! is chunked into fixed-row *zones* (a varint length table followed by
//! the per-zone blobs, each encoded exactly like a v2 column over only
//! that zone's rows), and two new sections appear:
//!
//! * `extc` — per-row extension dictionary codes (one varint per row,
//!   `0` = no extension, `k` = the k-1'th entry of the sorted distinct
//!   extension dictionary), so extension equality compares one integer
//!   instead of a string per row;
//! * `zonemap` — the extension dictionary plus per-zone min/max
//!   statistics (uid, gid, depth, stripe count, mtime, atime) and a
//!   per-zone extension presence bitmap. A selective decode tests its
//!   predicate against these statistics and skips whole zones — in
//!   every column section — without touching their bytes.
//!
//! Zone framing costs a handful of bytes per 4096 rows; the zone map is
//! ~30 bytes per zone. Both are checksummed like any other section, and
//! both are *advisory*: a corrupt `zonemap` or `extc` section degrades
//! to a full-section decode (reported in `lost_sections`), never to a
//! wrong answer.
//!
//! v1 and v2 files (no checksums / no zones) remain readable; [`decode`]
//! dispatches on the version byte.

use crate::record::SnapshotRecord;
use crate::snapshot::Snapshot;
use crate::varint::{get_uvarint, put_uvarint, MAX_VARINT_LEN};
use crate::xxh::section_digest;
use bytes::{Buf, BufMut, BytesMut};

const MAGIC: &[u8; 4] = b"COLF";
pub(crate) const VERSION_V1: u8 = 1;
pub(crate) const VERSION_V2: u8 = 2;
pub(crate) const VERSION_V3: u8 = 3;

/// Column sections of a v2 file, in storage order. Index + 1 is the
/// on-disk section id.
pub const SECTION_NAMES: [&str; 9] = [
    "paths", "atime", "ctime", "mtime", "ino", "uid", "gid", "mode", "osts",
];

/// Column sections of a v3 file, in storage order. The first nine match
/// v2; `extc` (per-row extension dictionary codes) and `zonemap`
/// (dictionary + per-zone statistics) are new.
pub const SECTION_NAMES_V3: [&str; 11] = [
    "paths", "atime", "ctime", "mtime", "ino", "uid", "gid", "mode", "osts", "extc", "zonemap",
];

/// Rows per zone written by [`encode`]. Small enough that a selective
/// scan skips most of a day's bytes, large enough that front-coding
/// restarts and per-zone anchors cost well under 1% of the payload.
pub const DEFAULT_ZONE_ROWS: usize = 4096;

/// Hard cap on the extension dictionary. A snapshot with more distinct
/// extensions than this (pathological for a real file system — the
/// paper's Fig. 9 operates on a few dozen classes) is written with an
/// *inexact* dictionary: `extc` is absent and extension predicates fall
/// back to evaluating path suffixes.
pub(crate) const MAX_EXT_DICT: usize = 1024;

/// Errors from decoding a `colf` buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum ColfError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// The buffer ended prematurely or contained an invalid varint.
    Truncated(&'static str),
    /// A decoded value was out of range for its field.
    BadValue(&'static str),
    /// Decoded records violated the sorted-path invariant.
    Unsorted(String),
    /// A checksummed region failed verification. `offset` is the byte
    /// offset of the region within the buffer.
    Corrupt {
        /// The section (or `"header"` / `"section-table"`) that failed.
        section: &'static str,
        /// Absolute byte offset of the corrupt region's start.
        offset: usize,
    },
}

impl std::fmt::Display for ColfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColfError::BadMagic => write!(f, "not a colf buffer (bad magic)"),
            ColfError::BadVersion(v) => write!(f, "unsupported colf version {v}"),
            ColfError::Truncated(what) => write!(f, "truncated colf buffer in {what}"),
            ColfError::BadValue(what) => write!(f, "invalid value in {what}"),
            ColfError::Unsorted(msg) => write!(f, "colf records unsorted: {msg}"),
            ColfError::Corrupt { section, offset } => {
                write!(f, "checksum mismatch in {section} section at byte {offset}")
            }
        }
    }
}

impl std::error::Error for ColfError {}

fn shared_prefix_len(a: &str, b: &str) -> usize {
    // Byte-wise common prefix, trimmed back to a UTF-8 boundary of `b`.
    let max = a.len().min(b.len());
    let bytes_a = a.as_bytes();
    let bytes_b = b.as_bytes();
    let mut n = 0;
    while n < max && bytes_a[n] == bytes_b[n] {
        n += 1;
    }
    while n > 0 && !b.is_char_boundary(n) {
        n -= 1;
    }
    n
}

// ---- column encoders -----------------------------------------------------

fn encode_paths(records: &[SnapshotRecord]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(records.len() * 16);
    let mut prev = "";
    for r in records {
        let shared = shared_prefix_len(prev, &r.path);
        put_uvarint(&mut buf, shared as u64);
        let suffix = &r.path.as_bytes()[shared..];
        put_uvarint(&mut buf, suffix.len() as u64);
        buf.extend_from_slice(suffix);
        prev = &r.path;
    }
    buf
}

fn encode_anchored(records: &[SnapshotRecord], field: impl Fn(&SnapshotRecord) -> u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(records.len() * 3 + MAX_VARINT_LEN);
    let min = records.iter().map(&field).min().unwrap_or(0);
    put_uvarint(&mut buf, min);
    for r in records {
        put_uvarint(&mut buf, field(r) - min);
    }
    buf
}

fn encode_plain(records: &[SnapshotRecord], field: impl Fn(&SnapshotRecord) -> u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(records.len() * 2);
    for r in records {
        put_uvarint(&mut buf, field(r));
    }
    buf
}

fn encode_osts(records: &[SnapshotRecord]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(records.len() * 4);
    for r in records {
        put_uvarint(&mut buf, r.osts.len() as u64);
        for &(ost, obj) in &r.osts {
            put_uvarint(&mut buf, ost as u64);
            put_uvarint(&mut buf, obj as u64);
        }
    }
    buf
}

fn column_payloads(records: &[SnapshotRecord]) -> [Vec<u8>; 9] {
    [
        encode_paths(records),
        encode_anchored(records, |r| r.atime),
        encode_anchored(records, |r| r.ctime),
        encode_anchored(records, |r| r.mtime),
        encode_anchored(records, |r| r.ino),
        encode_plain(records, |r| r.uid as u64),
        encode_plain(records, |r| r.gid as u64),
        encode_plain(records, |r| r.mode as u64),
        encode_osts(records),
    ]
}

// ---- v3 zone machinery ---------------------------------------------------

/// Saturation bound shared with the frame's u16 columns; zone statistics
/// store the saturated values so pushdown agrees with frame evaluation.
pub(crate) const ZONE_U16_CAP: u32 = u16::MAX as u32;

/// The sorted distinct-extension dictionary of one snapshot. `exact`
/// is false when the snapshot overflowed [`MAX_EXT_DICT`], in which
/// case `names` is empty and extension pushdown is disabled.
pub(crate) struct ExtDict {
    pub(crate) names: Vec<String>,
    pub(crate) exact: bool,
}

fn build_ext_dict(records: &[SnapshotRecord]) -> ExtDict {
    let mut set = std::collections::BTreeSet::new();
    for r in records {
        if let Some(e) = r.extension() {
            if !set.contains(e) {
                if set.len() == MAX_EXT_DICT {
                    return ExtDict {
                        names: Vec::new(),
                        exact: false,
                    };
                }
                set.insert(e.to_string());
            }
        }
    }
    ExtDict {
        names: set.into_iter().collect(),
        exact: true,
    }
}

impl ExtDict {
    /// 1-based dictionary code of `ext`; 0 = no extension.
    fn code_of(&self, ext: Option<&str>) -> u64 {
        match ext {
            Some(e) => match self.names.binary_search_by(|n| n.as_str().cmp(e)) {
                Ok(i) => i as u64 + 1,
                Err(_) => 0,
            },
            None => 0,
        }
    }
}

/// Chunks `records` into `zone_rows`-sized zones, encodes each with
/// `enc`, and frames them as a varint length table + concatenated blobs.
fn zone_framed(
    records: &[SnapshotRecord],
    zone_rows: usize,
    enc: impl Fn(&[SnapshotRecord]) -> Vec<u8>,
) -> Vec<u8> {
    let blobs: Vec<Vec<u8>> = records.chunks(zone_rows).map(|z| enc(z)).collect();
    let mut out = Vec::with_capacity(blobs.iter().map(|b| b.len() + 2).sum());
    for b in &blobs {
        put_uvarint(&mut out, b.len() as u64);
    }
    for b in &blobs {
        out.extend_from_slice(b);
    }
    out
}

fn encode_extc(records: &[SnapshotRecord], zone_rows: usize, dict: &ExtDict) -> Vec<u8> {
    if !dict.exact {
        return vec![0];
    }
    let mut out = vec![1u8];
    let framed = zone_framed(records, zone_rows, |zone| {
        let mut blob = Vec::with_capacity(zone.len());
        for r in zone {
            put_uvarint(&mut blob, dict.code_of(r.extension()));
        }
        blob
    });
    out.extend_from_slice(&framed);
    out
}

fn encode_zonemap(records: &[SnapshotRecord], zone_rows: usize, dict: &ExtDict) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + records.len() / zone_rows.max(1) * 36);
    out.push(dict.exact as u8);
    put_uvarint(&mut out, dict.names.len() as u64);
    for n in &dict.names {
        put_uvarint(&mut out, n.len() as u64);
        out.extend_from_slice(n.as_bytes());
    }
    let n_zones = if records.is_empty() {
        0
    } else {
        (records.len() - 1) / zone_rows + 1
    };
    put_uvarint(&mut out, n_zones as u64);
    let bitmap_len = dict.names.len().div_euclid(8) + usize::from(dict.names.len() % 8 != 0);
    for zone in records.chunks(zone_rows) {
        let mut uid = (u32::MAX, 0u32);
        let mut gid = (u32::MAX, 0u32);
        let mut depth = (u32::MAX, 0u32);
        let mut stripes = (u32::MAX, 0u32);
        let mut mtime = (u64::MAX, 0u64);
        let mut atime = (u64::MAX, 0u64);
        let mut has_ext_none = false;
        let mut bitmap = vec![0u8; bitmap_len];
        for r in zone {
            uid = (uid.0.min(r.uid), uid.1.max(r.uid));
            gid = (gid.0.min(r.gid), gid.1.max(r.gid));
            let d = r.depth().min(ZONE_U16_CAP);
            depth = (depth.0.min(d), depth.1.max(d));
            let s = r.stripe_count().min(ZONE_U16_CAP);
            stripes = (stripes.0.min(s), stripes.1.max(s));
            mtime = (mtime.0.min(r.mtime), mtime.1.max(r.mtime));
            atime = (atime.0.min(r.atime), atime.1.max(r.atime));
            match dict.code_of(r.extension()) {
                0 => has_ext_none = true,
                code => {
                    let k = code as usize - 1;
                    bitmap[k / 8] |= 1 << (k % 8);
                }
            }
        }
        for v in [
            uid.0, uid.1, gid.0, gid.1, depth.0, depth.1, stripes.0, stripes.1,
        ] {
            put_uvarint(&mut out, v as u64);
        }
        for v in [mtime.0, mtime.1, atime.0, atime.1] {
            put_uvarint(&mut out, v);
        }
        out.push(has_ext_none as u8);
        if dict.exact {
            out.extend_from_slice(&bitmap);
        }
    }
    out
}

/// Serializes a snapshot to `colf` v3 bytes (checksummed zone-chunked
/// sections with zone maps) at [`DEFAULT_ZONE_ROWS`] rows per zone.
pub fn encode(snapshot: &Snapshot) -> Vec<u8> {
    encode_with_zone_rows(snapshot, DEFAULT_ZONE_ROWS)
}

/// [`encode`] with an explicit zone size — exposed so tests and
/// benchmarks can exercise many-zone files without millions of rows.
pub fn encode_with_zone_rows(snapshot: &Snapshot, zone_rows: usize) -> Vec<u8> {
    let zone_rows = zone_rows.max(1);
    let records = snapshot.records();
    let dict = build_ext_dict(records);

    let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(SECTION_NAMES_V3.len());
    payloads.push(zone_framed(records, zone_rows, encode_paths));
    payloads.push(zone_framed(records, zone_rows, |z| {
        encode_anchored(z, |r| r.atime)
    }));
    payloads.push(zone_framed(records, zone_rows, |z| {
        encode_anchored(z, |r| r.ctime)
    }));
    payloads.push(zone_framed(records, zone_rows, |z| {
        encode_anchored(z, |r| r.mtime)
    }));
    payloads.push(zone_framed(records, zone_rows, |z| {
        encode_anchored(z, |r| r.ino)
    }));
    payloads.push(zone_framed(records, zone_rows, |z| {
        encode_plain(z, |r| r.uid as u64)
    }));
    payloads.push(zone_framed(records, zone_rows, |z| {
        encode_plain(z, |r| r.gid as u64)
    }));
    payloads.push(zone_framed(records, zone_rows, |z| {
        encode_plain(z, |r| r.mode as u64)
    }));
    payloads.push(zone_framed(records, zone_rows, encode_osts));
    payloads.push(encode_extc(records, zone_rows, &dict));
    payloads.push(encode_zonemap(records, zone_rows, &dict));

    let mut header = Vec::with_capacity(20);
    header.extend_from_slice(&snapshot.day().to_le_bytes());
    put_uvarint(&mut header, snapshot.taken_at());
    put_uvarint(&mut header, records.len() as u64);
    put_uvarint(&mut header, zone_rows as u64);

    assemble_sections(VERSION_V3, &header, &payloads)
}

/// Serializes a snapshot to `colf` v2 bytes (checksummed sections, no
/// zones). Kept so compatibility tests and fixtures can regenerate
/// previous-format files.
pub fn encode_v2(snapshot: &Snapshot) -> Vec<u8> {
    let records = snapshot.records();
    let payloads = column_payloads(records);

    let mut header = Vec::with_capacity(16);
    header.extend_from_slice(&snapshot.day().to_le_bytes());
    put_uvarint(&mut header, snapshot.taken_at());
    put_uvarint(&mut header, records.len() as u64);

    assemble_sections(VERSION_V2, &header, &payloads)
}

fn assemble_sections(version: u8, header: &[u8], payloads: &[Vec<u8>]) -> Vec<u8> {
    let mut table = Vec::with_capacity(payloads.len() * 12);
    for (i, payload) in payloads.iter().enumerate() {
        table.push(i as u8 + 1);
        put_uvarint(&mut table, payload.len() as u64);
        table.extend_from_slice(&section_digest(payload).to_le_bytes());
    }

    let total: usize = payloads.iter().map(Vec::len).sum();
    let mut buf = Vec::with_capacity(5 + header.len() + table.len() + total + 32);
    buf.extend_from_slice(MAGIC);
    buf.push(version);
    put_uvarint(&mut buf, header.len() as u64);
    buf.extend_from_slice(header);
    buf.extend_from_slice(&section_digest(header).to_le_bytes());
    buf.push(payloads.len() as u8);
    buf.extend_from_slice(&table);
    buf.extend_from_slice(&section_digest(&table).to_le_bytes());
    for payload in payloads {
        buf.extend_from_slice(payload);
    }
    buf
}

/// Serializes a snapshot to legacy v1 bytes (no checksums). Kept so
/// compatibility tests and fixtures can regenerate old-format files.
pub fn encode_v1(snapshot: &Snapshot) -> Vec<u8> {
    let records = snapshot.records();
    let mut buf = BytesMut::with_capacity(64 + records.len() * 24);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION_V1);
    buf.put_u32_le(snapshot.day());
    put_uvarint(&mut buf, snapshot.taken_at());
    put_uvarint(&mut buf, records.len() as u64);
    for payload in column_payloads(records) {
        buf.put_slice(&payload);
    }
    buf.to_vec()
}

// ---- column parsers (shared by v1 and v2, and by the columnar fast
// ---- path in `columns`) --------------------------------------------------

fn parse_paths(buf: &mut &[u8], count: usize) -> Result<Vec<String>, ColfError> {
    let mut paths = Vec::with_capacity(count);
    let mut prev = String::new();
    for _ in 0..count {
        let shared = get_uvarint(buf).ok_or(ColfError::Truncated("path prefix"))? as usize;
        let suffix_len = get_uvarint(buf).ok_or(ColfError::Truncated("path suffix len"))? as usize;
        if shared > prev.len() {
            return Err(ColfError::BadValue("path prefix length"));
        }
        if buf.remaining() < suffix_len {
            return Err(ColfError::Truncated("path suffix"));
        }
        let suffix = std::str::from_utf8(&buf[..suffix_len])
            .map_err(|_| ColfError::BadValue("path utf-8"))?;
        let mut path = String::with_capacity(shared + suffix_len);
        path.push_str(&prev[..shared]);
        path.push_str(suffix);
        buf.advance(suffix_len);
        prev = path.clone();
        paths.push(path);
    }
    Ok(paths)
}

pub(crate) fn parse_anchored(
    buf: &mut &[u8],
    count: usize,
    what: &'static str,
) -> Result<Vec<u64>, ColfError> {
    let min = get_uvarint(buf).ok_or(ColfError::Truncated(what))?;
    let mut col = Vec::with_capacity(count);
    for _ in 0..count {
        let delta = get_uvarint(buf).ok_or(ColfError::Truncated(what))?;
        col.push(
            min.checked_add(delta)
                .ok_or(ColfError::BadValue("anchored overflow"))?,
        );
    }
    Ok(col)
}

pub(crate) fn parse_plain_u32(
    buf: &mut &[u8],
    count: usize,
    what: &'static str,
) -> Result<Vec<u32>, ColfError> {
    let mut col = Vec::with_capacity(count);
    for _ in 0..count {
        let v = get_uvarint(buf).ok_or(ColfError::Truncated(what))?;
        col.push(u32::try_from(v).map_err(|_| ColfError::BadValue(what))?);
    }
    Ok(col)
}

pub(crate) type OstColumn = Vec<Vec<(u16, u32)>>;

fn parse_osts(buf: &mut &[u8], count: usize) -> Result<OstColumn, ColfError> {
    let mut osts_col = Vec::with_capacity(count);
    for _ in 0..count {
        let n = get_uvarint(buf).ok_or(ColfError::Truncated("ost count"))? as usize;
        if n > buf.remaining() + 1 {
            return Err(ColfError::BadValue("ost count"));
        }
        let mut osts = Vec::with_capacity(n);
        for _ in 0..n {
            let ost = get_uvarint(buf).ok_or(ColfError::Truncated("ost id"))?;
            let obj = get_uvarint(buf).ok_or(ColfError::Truncated("ost object"))?;
            osts.push((
                u16::try_from(ost).map_err(|_| ColfError::BadValue("ost id"))?,
                u32::try_from(obj).map_err(|_| ColfError::BadValue("ost object"))?,
            ));
        }
        osts_col.push(osts);
    }
    Ok(osts_col)
}

/// All decoded columns, pre-assembly.
struct Columns {
    paths: Vec<String>,
    atimes: Vec<u64>,
    ctimes: Vec<u64>,
    mtimes: Vec<u64>,
    inos: Vec<u64>,
    uids: Vec<u32>,
    gids: Vec<u32>,
    modes: Vec<u32>,
    osts: OstColumn,
}

fn assemble(day: u32, taken_at: u64, mut cols: Columns) -> Result<Snapshot, ColfError> {
    let records: Vec<SnapshotRecord> = cols
        .paths
        .into_iter()
        .enumerate()
        .map(|(i, path)| SnapshotRecord {
            path,
            atime: cols.atimes[i],
            ctime: cols.ctimes[i],
            mtime: cols.mtimes[i],
            uid: cols.uids[i],
            gid: cols.gids[i],
            mode: cols.modes[i],
            ino: cols.inos[i],
            osts: std::mem::take(&mut cols.osts[i]),
        })
        .collect();
    Snapshot::from_sorted(day, taken_at, records).map_err(ColfError::Unsorted)
}

// ---- v1 decoding ---------------------------------------------------------

fn decode_v1(mut buf: &[u8]) -> Result<Snapshot, ColfError> {
    if buf.remaining() < 4 {
        return Err(ColfError::Truncated("header"));
    }
    let day = buf.get_u32_le();
    let taken_at = get_uvarint(&mut buf).ok_or(ColfError::Truncated("taken_at"))?;
    let count = get_uvarint(&mut buf).ok_or(ColfError::Truncated("count"))? as usize;
    // Defensive preallocation bound: every record costs at least two
    // bytes in the path column alone, so a `count` beyond the remaining
    // byte budget is corrupt — without this, a hostile header could
    // demand a terabyte-sized Vec before the first field fails to parse.
    if count > buf.remaining() / 2 + 1 {
        return Err(ColfError::BadValue("record count"));
    }

    let paths = parse_paths(&mut buf, count)?;
    let atimes = parse_anchored(&mut buf, count, "atime")?;
    let ctimes = parse_anchored(&mut buf, count, "ctime")?;
    let mtimes = parse_anchored(&mut buf, count, "mtime")?;
    let inos = parse_anchored(&mut buf, count, "ino")?;
    let uids = parse_plain_u32(&mut buf, count, "uid")?;
    let gids = parse_plain_u32(&mut buf, count, "gid")?;
    let modes = parse_plain_u32(&mut buf, count, "mode")?;
    let osts = parse_osts(&mut buf, count)?;
    assemble(
        day,
        taken_at,
        Columns {
            paths,
            atimes,
            ctimes,
            mtimes,
            inos,
            uids,
            gids,
            modes,
            osts,
        },
    )
}

// ---- v2 decoding ---------------------------------------------------------

/// One section's location within a v2 buffer, as reported by
/// [`section_table`]. Offsets are absolute, so test harnesses (and the
/// fault-matrix suite) can target corruption at specific sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionSpan {
    /// Section name (one of [`SECTION_NAMES`], `"header"`, or
    /// `"section-table"`).
    pub name: &'static str,
    /// Absolute byte offset of the section payload within the buffer.
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
}

/// Parsed v2/v3 skeleton: header fields plus the located sections.
/// Shared with the columnar fast path in [`crate::columns`].
pub(crate) struct Layout<'a> {
    pub(crate) version: u8,
    pub(crate) day: u32,
    pub(crate) taken_at: u64,
    pub(crate) count: usize,
    /// Rows per zone (v3 only; 0 for v2, which has no zones).
    pub(crate) zone_rows: usize,
    /// `(name, absolute_offset, payload_or_none, stored_digest)`;
    /// `None` payload means the file is too short for this section.
    pub(crate) sections: Vec<(&'static str, usize, Option<&'a [u8]>, u64)>,
}

impl Layout<'_> {
    /// Zone count implied by the header (v3).
    pub(crate) fn n_zones(&self) -> usize {
        if self.count == 0 {
            0
        } else {
            (self.count - 1) / self.zone_rows + 1
        }
    }
}

fn read_digest(buf: &mut &[u8], what: &'static str) -> Result<u64, ColfError> {
    if buf.remaining() < 8 {
        return Err(ColfError::Truncated(what));
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&buf[..8]);
    buf.advance(8);
    Ok(u64::from_le_bytes(raw))
}

fn section_names_of(version: u8) -> Result<&'static [&'static str], ColfError> {
    match version {
        VERSION_V2 => Ok(&SECTION_NAMES),
        VERSION_V3 => Ok(&SECTION_NAMES_V3),
        v => Err(ColfError::BadVersion(v)),
    }
}

/// Parses the v2/v3 header and section table (both checksummed); does
/// not verify or parse section payloads.
pub(crate) fn parse_layout(full: &[u8]) -> Result<Layout<'_>, ColfError> {
    let version = version_of(full)?;
    let names = section_names_of(version)?;
    let mut buf = &full[5..]; // past magic + version
    let header_len = get_uvarint(&mut buf).ok_or(ColfError::Truncated("header"))? as usize;
    let header_off = full.len() - buf.remaining();
    if buf.remaining() < header_len {
        return Err(ColfError::Truncated("header"));
    }
    let header = &buf[..header_len];
    buf.advance(header_len);
    let stored = read_digest(&mut buf, "header")?;
    if section_digest(header) != stored {
        return Err(ColfError::Corrupt {
            section: "header",
            offset: header_off,
        });
    }

    let mut h = header;
    if h.remaining() < 4 {
        return Err(ColfError::Truncated("header"));
    }
    let day = h.get_u32_le();
    let taken_at = get_uvarint(&mut h).ok_or(ColfError::Truncated("taken_at"))?;
    let count = get_uvarint(&mut h).ok_or(ColfError::Truncated("count"))? as usize;
    let zone_rows = if version == VERSION_V3 {
        let zr = get_uvarint(&mut h).ok_or(ColfError::Truncated("zone rows"))? as usize;
        if zr == 0 {
            return Err(ColfError::BadValue("zone rows"));
        }
        zr
    } else {
        0
    };
    if h.has_remaining() {
        return Err(ColfError::BadValue("header"));
    }
    // Same preallocation bound as v1: a record is never smaller than two
    // bytes of path column.
    if count > full.len() / 2 + 1 {
        return Err(ColfError::BadValue("record count"));
    }

    if !buf.has_remaining() {
        return Err(ColfError::Truncated("section-table"));
    }
    let n_sections = buf.get_u8() as usize;
    if n_sections != names.len() {
        return Err(ColfError::BadValue("section table"));
    }
    let table_off = full.len() - buf.remaining();
    let mut entries = Vec::with_capacity(n_sections);
    for expected_id in 1..=n_sections as u8 {
        if !buf.has_remaining() {
            return Err(ColfError::Truncated("section-table"));
        }
        let id = buf.get_u8();
        if id != expected_id {
            return Err(ColfError::BadValue("section table"));
        }
        let len = get_uvarint(&mut buf).ok_or(ColfError::Truncated("section-table"))? as usize;
        let digest = read_digest(&mut buf, "section-table")?;
        entries.push((names[id as usize - 1], len, digest));
    }
    let table_end = full.len() - buf.remaining();
    let stored = read_digest(&mut buf, "section-table")?;
    if section_digest(&full[table_off..table_end]) != stored {
        return Err(ColfError::Corrupt {
            section: "section-table",
            offset: table_off,
        });
    }

    // Locate payloads. A truncated file can cut sections off the tail;
    // record those as absent rather than failing here, so the lossy
    // reader can still recover the intact prefix.
    let payload_base = full.len() - buf.remaining();
    let mut offset = payload_base;
    let mut sections = Vec::with_capacity(n_sections);
    for (name, len, digest) in entries {
        let payload = full.get(offset..offset + len);
        sections.push((name, offset, payload, digest));
        offset += len;
    }
    Ok(Layout {
        version,
        day,
        taken_at,
        count,
        zone_rows,
        sections,
    })
}

// ---- v3 zone parsing (shared with `crate::columns`) ----------------------

/// Splits a zone-framed section payload (varint length table +
/// concatenated blobs) into exactly `n_zones` per-zone slices. The
/// payload must be fully covered — slack bytes mean the section is
/// misaligned with the header's zone count.
pub(crate) fn split_zone_blobs<'a>(
    mut payload: &'a [u8],
    n_zones: usize,
    what: &'static str,
) -> Result<Vec<&'a [u8]>, ColfError> {
    let buf = &mut payload;
    let mut lens = Vec::with_capacity(n_zones);
    for _ in 0..n_zones {
        lens.push(get_uvarint(buf).ok_or(ColfError::Truncated(what))? as usize);
    }
    let mut rest: &[u8] = buf;
    let mut blobs = Vec::with_capacity(n_zones);
    for len in lens {
        if rest.len() < len {
            return Err(ColfError::Truncated(what));
        }
        blobs.push(&rest[..len]);
        rest = &rest[len..];
    }
    if !rest.is_empty() {
        return Err(ColfError::BadValue("section length"));
    }
    Ok(blobs)
}

/// Per-zone statistics from the `zonemap` section. Min/max pairs are
/// inclusive; `depth` and `stripes` are u16-saturated (matching the
/// frame columns and [`crate::pred::Pred`] semantics).
pub(crate) struct ZoneStats {
    pub(crate) uid: (u32, u32),
    pub(crate) gid: (u32, u32),
    pub(crate) depth: (u32, u32),
    pub(crate) stripes: (u32, u32),
    pub(crate) mtime: (u64, u64),
    pub(crate) atime: (u64, u64),
    pub(crate) has_ext_none: bool,
    /// Extension presence bitmap over the dictionary (empty when the
    /// dictionary is inexact).
    ext_bits: Vec<u8>,
}

impl ZoneStats {
    /// Whether the 1-based dictionary code occurs in this zone.
    pub(crate) fn has_ext_code(&self, code: u32) -> bool {
        let k = code as usize - 1;
        self.ext_bits
            .get(k / 8)
            .is_some_and(|byte| byte & (1 << (k % 8)) != 0)
    }
}

/// The decoded `zonemap` section: extension dictionary + per-zone stats.
pub(crate) struct ZoneMap {
    /// False when the encoder's dictionary overflowed; extension
    /// pushdown is then disabled and `dict` is empty.
    pub(crate) exact: bool,
    /// Sorted distinct extensions (1-based codes index into this).
    pub(crate) dict: Vec<String>,
    pub(crate) zones: Vec<ZoneStats>,
}

impl ZoneMap {
    /// 1-based code of `ext`, if the dictionary is exact and holds it.
    pub(crate) fn code_of(&self, ext: &str) -> Option<u32> {
        if !self.exact {
            return None;
        }
        self.dict
            .binary_search_by(|n| n.as_str().cmp(ext))
            .ok()
            .map(|i| i as u32 + 1)
    }
}

pub(crate) fn parse_zonemap(mut payload: &[u8], n_zones: usize) -> Result<ZoneMap, ColfError> {
    let buf = &mut payload;
    if !buf.has_remaining() {
        return Err(ColfError::Truncated("zonemap"));
    }
    let exact = match buf.get_u8() {
        0 => false,
        1 => true,
        _ => return Err(ColfError::BadValue("zonemap flags")),
    };
    let dict_len = get_uvarint(buf).ok_or(ColfError::Truncated("zonemap"))? as usize;
    if dict_len > MAX_EXT_DICT || (!exact && dict_len != 0) {
        return Err(ColfError::BadValue("zonemap dictionary"));
    }
    let mut dict = Vec::with_capacity(dict_len);
    for _ in 0..dict_len {
        let len = get_uvarint(buf).ok_or(ColfError::Truncated("zonemap"))? as usize;
        if buf.remaining() < len {
            return Err(ColfError::Truncated("zonemap"));
        }
        let name = std::str::from_utf8(&buf[..len])
            .map_err(|_| ColfError::BadValue("zonemap dictionary"))?
            .to_string();
        buf.advance(len);
        if dict.last().is_some_and(|prev: &String| *prev >= name) {
            // Codes binary-search the dictionary; it must be strictly
            // sorted or lookups would silently miss entries.
            return Err(ColfError::BadValue("zonemap dictionary"));
        }
        dict.push(name);
    }
    let stored_zones = get_uvarint(buf).ok_or(ColfError::Truncated("zonemap"))? as usize;
    if stored_zones != n_zones {
        return Err(ColfError::BadValue("zonemap zone count"));
    }
    let bitmap_len = dict_len.div_euclid(8) + usize::from(dict_len % 8 != 0);
    let mut zones = Vec::with_capacity(n_zones);
    for _ in 0..n_zones {
        let mut u32s = [0u32; 8];
        for v in &mut u32s {
            let raw = get_uvarint(buf).ok_or(ColfError::Truncated("zonemap"))?;
            *v = u32::try_from(raw).map_err(|_| ColfError::BadValue("zonemap stats"))?;
        }
        let mut u64s = [0u64; 4];
        for v in &mut u64s {
            *v = get_uvarint(buf).ok_or(ColfError::Truncated("zonemap"))?;
        }
        if !buf.has_remaining() {
            return Err(ColfError::Truncated("zonemap"));
        }
        let has_ext_none = match buf.get_u8() {
            0 => false,
            1 => true,
            _ => return Err(ColfError::BadValue("zonemap flags")),
        };
        let ext_bits = if exact {
            if buf.remaining() < bitmap_len {
                return Err(ColfError::Truncated("zonemap"));
            }
            let bits = buf[..bitmap_len].to_vec();
            buf.advance(bitmap_len);
            bits
        } else {
            Vec::new()
        };
        zones.push(ZoneStats {
            uid: (u32s[0], u32s[1]),
            gid: (u32s[2], u32s[3]),
            depth: (u32s[4], u32s[5]),
            stripes: (u32s[6], u32s[7]),
            mtime: (u64s[0], u64s[1]),
            atime: (u64s[2], u64s[3]),
            has_ext_none,
            ext_bits,
        });
    }
    if buf.has_remaining() {
        return Err(ColfError::BadValue("section length"));
    }
    Ok(ZoneMap { exact, dict, zones })
}

fn parse_section(name: &str, mut payload: &[u8], count: usize) -> Result<ParsedSection, ColfError> {
    let buf = &mut payload;
    let parsed = match name {
        "paths" => ParsedSection::Paths(parse_paths(buf, count)?),
        "atime" | "ctime" | "mtime" | "ino" => {
            ParsedSection::U64(parse_anchored(buf, count, "anchored column")?)
        }
        "uid" | "gid" | "mode" => ParsedSection::U32(parse_plain_u32(buf, count, "plain column")?),
        "osts" => ParsedSection::Osts(parse_osts(buf, count)?),
        _ => unreachable!("unknown section {name}"),
    };
    if buf.has_remaining() {
        // A section that decodes but leaves bytes behind is misaligned
        // with the header's record count — corrupt, not just odd.
        return Err(ColfError::BadValue("section length"));
    }
    Ok(parsed)
}

enum ParsedSection {
    Paths(Vec<String>),
    U64(Vec<u64>),
    U32(Vec<u32>),
    Osts(OstColumn),
}

/// Outcome of a lossy decode: the snapshot assembled from every intact
/// section, plus the names of sections that were corrupt or missing and
/// got replaced with defaults (zeros / empty stripe lists).
#[derive(Debug)]
pub struct LossyDecode {
    /// The reconstructed snapshot.
    pub snapshot: Snapshot,
    /// Sections that could not be recovered (empty = full recovery).
    pub lost_sections: Vec<&'static str>,
}

fn decode_v2(full: &[u8], lossy: bool) -> Result<LossyDecode, ColfError> {
    let layout = parse_layout(full)?;
    debug_assert_eq!(layout.version, VERSION_V2);
    let count = layout.count;
    let mut cols = Columns {
        paths: Vec::new(),
        atimes: vec![0; count],
        ctimes: vec![0; count],
        mtimes: vec![0; count],
        inos: vec![0; count],
        uids: vec![0; count],
        gids: vec![0; count],
        modes: vec![0; count],
        osts: vec![Vec::new(); count],
    };
    let mut lost = Vec::new();
    let mut have_paths = false;

    let paths_offset = layout.sections.first().map(|s| s.1).unwrap_or(0);
    for &(name, offset, payload, digest) in &layout.sections {
        let intact = payload.is_some_and(|p| section_digest(p) == digest);
        let parsed = if intact {
            parse_section(name, payload.expect("intact implies present"), count)
        } else if payload.is_none() {
            Err(ColfError::Truncated(name))
        } else {
            Err(ColfError::Corrupt {
                section: name,
                offset,
            })
        };
        match parsed {
            Ok(ParsedSection::Paths(paths)) => {
                cols.paths = paths;
                have_paths = true;
            }
            Ok(ParsedSection::U64(col)) => match name {
                "atime" => cols.atimes = col,
                "ctime" => cols.ctimes = col,
                "mtime" => cols.mtimes = col,
                _ => cols.inos = col,
            },
            Ok(ParsedSection::U32(col)) => match name {
                "uid" => cols.uids = col,
                "gid" => cols.gids = col,
                _ => cols.modes = col,
            },
            Ok(ParsedSection::Osts(col)) => cols.osts = col,
            Err(e) => {
                if !lossy {
                    return Err(e);
                }
                lost.push(name);
            }
        }
    }

    // Paths are the record spine: without them there is nothing to hang
    // the other columns on, lossy or not.
    if !have_paths {
        return Err(ColfError::Corrupt {
            section: "paths",
            offset: paths_offset,
        });
    }
    let snapshot = assemble(layout.day, layout.taken_at, cols)?;
    Ok(LossyDecode {
        snapshot,
        lost_sections: lost,
    })
}

// ---- v3 decoding ---------------------------------------------------------

/// v3 row decode rides the columnar decoder in [`crate::columns`] (one
/// implementation of the zone logic), then materializes records. The
/// strictness guarantee is therefore identical on both paths by
/// construction.
fn decode_v3(full: &[u8], lossy: bool) -> Result<LossyDecode, ColfError> {
    let cols = crate::columns::decode_v3_columns(full, lossy, true, None)?;
    let lost_sections = cols.lost_sections().to_vec();
    let snapshot = cols.into_snapshot()?;
    Ok(LossyDecode {
        snapshot,
        lost_sections,
    })
}

// ---- public decode entry points ------------------------------------------

pub(crate) fn version_of(buf: &[u8]) -> Result<u8, ColfError> {
    if buf.len() < 5 || &buf[..4] != MAGIC {
        return Err(ColfError::BadMagic);
    }
    Ok(buf[4])
}

/// The telemetry counter charged when section `name` is lost by a lossy
/// decode. Static per section so recording allocates nothing; shared by
/// the row decoder here and the columnar decoder in `columns`.
pub(crate) fn lost_section_counter(name: &str) -> &'static str {
    match name {
        "paths" => "colf.lost.paths",
        "atime" => "colf.lost.atime",
        "ctime" => "colf.lost.ctime",
        "mtime" => "colf.lost.mtime",
        "ino" => "colf.lost.ino",
        "uid" => "colf.lost.uid",
        "gid" => "colf.lost.gid",
        "mode" => "colf.lost.mode",
        "osts" => "colf.lost.osts",
        "extc" => "colf.lost.extc",
        "zonemap" => "colf.lost.zonemap",
        _ => "colf.lost.other",
    }
}

/// Deserializes a `colf` buffer (v1, v2, or v3) back into a snapshot.
/// Strict: any corrupt or truncated section is an error.
pub fn decode(buf: &[u8]) -> Result<Snapshot, ColfError> {
    let result = version_of(buf).and_then(|v| match v {
        VERSION_V1 => decode_v1(&buf[5..]),
        VERSION_V2 => decode_v2(buf, false).map(|d| d.snapshot),
        VERSION_V3 => decode_v3(buf, false).map(|d| d.snapshot),
        v => Err(ColfError::BadVersion(v)),
    });
    let tel = spider_telemetry::global();
    match &result {
        Ok(snap) => {
            tel.incr("colf.decode.strict_ok", 1);
            tel.incr("colf.decode.bytes", buf.len() as u64);
            tel.incr("colf.decode.rows", snap.len() as u64);
        }
        Err(_) => tel.incr("colf.decode.failed", 1),
    }
    result
}

/// Lossy deserialization: recovers everything the checksums vouch for,
/// replacing corrupt non-spine sections with defaults and reporting
/// them. v1 files carry no checksums, so they decode strictly (a v1
/// success is a full recovery).
pub fn decode_lossy(buf: &[u8]) -> Result<LossyDecode, ColfError> {
    let result = version_of(buf).and_then(|v| match v {
        VERSION_V1 => decode_v1(&buf[5..]).map(|snapshot| LossyDecode {
            snapshot,
            lost_sections: Vec::new(),
        }),
        VERSION_V2 => decode_v2(buf, true),
        VERSION_V3 => decode_v3(buf, true),
        v => Err(ColfError::BadVersion(v)),
    });
    let tel = spider_telemetry::global();
    match &result {
        Ok(d) => {
            if d.lost_sections.is_empty() {
                tel.incr("colf.decode.lossy_clean", 1);
            } else {
                tel.incr("colf.decode.lossy_degraded", 1);
                for name in &d.lost_sections {
                    tel.incr(lost_section_counter(name), 1);
                }
            }
            tel.incr("colf.decode.bytes", buf.len() as u64);
            tel.incr("colf.decode.rows", d.snapshot.len() as u64);
        }
        Err(_) => tel.incr("colf.decode.failed", 1),
    }
    result
}

/// Locations of all checksummed regions in a v2/v3 buffer: `"header"`,
/// `"section-table"`, then one span per column section. Fault-injection
/// tests use this to target corruption precisely.
pub fn section_table(full: &[u8]) -> Result<Vec<SectionSpan>, ColfError> {
    let names = section_names_of(version_of(full)?)?;
    let mut buf = &full[5..];
    let header_len = get_uvarint(&mut buf).ok_or(ColfError::Truncated("header"))? as usize;
    let header_off = full.len() - buf.remaining();
    if buf.remaining() < header_len + 8 {
        return Err(ColfError::Truncated("header"));
    }
    buf.advance(header_len + 8);
    let mut spans = vec![SectionSpan {
        name: "header",
        offset: header_off,
        len: header_len,
    }];
    if !buf.has_remaining() {
        return Err(ColfError::Truncated("section-table"));
    }
    let n_sections = buf.get_u8() as usize;
    let table_off = full.len() - buf.remaining();
    let mut entries = Vec::with_capacity(n_sections);
    for _ in 0..n_sections {
        if !buf.has_remaining() {
            return Err(ColfError::Truncated("section-table"));
        }
        let id = buf.get_u8();
        let len = get_uvarint(&mut buf).ok_or(ColfError::Truncated("section-table"))? as usize;
        read_digest(&mut buf, "section-table")?;
        let name = names
            .get(id as usize - 1)
            .ok_or(ColfError::BadValue("section table"))?;
        entries.push((*name, len));
    }
    let table_end = full.len() - buf.remaining();
    read_digest(&mut buf, "section-table")?;
    spans.push(SectionSpan {
        name: "section-table",
        offset: table_off,
        len: table_end - table_off,
    });
    let mut offset = full.len() - buf.remaining();
    for (name, len) in entries {
        spans.push(SectionSpan { name, offset, len });
        offset += len;
    }
    Ok(spans)
}

/// Reads the `day` field from a file prefix without decoding the body —
/// the store's open-time cross-check against the `snap-<day>.colf` file
/// name. Returns `None` when the prefix is not a recognizable colf
/// header (corruption is diagnosed later, at decode time).
pub fn peek_day(prefix: &[u8]) -> Option<u32> {
    if prefix.len() < 5 || &prefix[..4] != MAGIC {
        return None;
    }
    match prefix[4] {
        VERSION_V1 => prefix
            .get(5..9)
            .map(|raw| u32::from_le_bytes(raw.try_into().expect("4-byte slice"))),
        VERSION_V2 | VERSION_V3 => {
            let mut buf = &prefix[5..];
            let header_len = get_uvarint(&mut buf)? as usize;
            if header_len < 4 || buf.remaining() < 4 {
                return None;
            }
            Some((&buf[..4]).get_u32_le())
        }
        _ => None,
    }
}

/// How many bytes of file prefix [`peek_day`] needs in the worst case.
pub const PEEK_PREFIX_LEN: usize = 5 + MAX_VARINT_LEN + 4;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot(n: usize) -> Snapshot {
        let records: Vec<SnapshotRecord> = (0..n)
            .map(|i| SnapshotRecord {
                path: format!(
                    "/lustre/atlas1/proj{:03}/user{:02}/run{}/f.{:08}",
                    i % 7,
                    i % 13,
                    i % 3,
                    i
                ),
                atime: 1_460_000_000 + i as u64 * 37,
                ctime: 1_450_000_000 + i as u64 * 11,
                mtime: 1_450_000_000 + i as u64 * 13,
                uid: 10_000 + (i % 50) as u32,
                gid: 2_000 + (i % 20) as u32,
                mode: if i % 10 == 0 { 0o040770 } else { 0o100664 },
                ino: 1_000_000 + i as u64,
                osts: if i % 10 == 0 {
                    vec![]
                } else {
                    (0..4)
                        .map(|k| ((i * 4 + k) as u16 % 2016, (i * 7 + k) as u32))
                        .collect()
                },
            })
            .collect();
        Snapshot::new(14, 1_421_625_600, records)
    }

    #[test]
    fn roundtrip_small() {
        let snap = sample_snapshot(100);
        let bytes = encode(&snap);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn roundtrip_empty() {
        let snap = Snapshot::new(0, 0, vec![]);
        let decoded = decode(&encode(&snap)).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn v1_files_remain_readable() {
        let snap = sample_snapshot(64);
        let v1 = encode_v1(&snap);
        assert_eq!(v1[4], 1);
        assert_eq!(decode(&v1).unwrap(), snap);
        let lossy = decode_lossy(&v1).unwrap();
        assert_eq!(lossy.snapshot, snap);
        assert!(lossy.lost_sections.is_empty());
    }

    #[test]
    fn v2_files_remain_readable() {
        let snap = sample_snapshot(64);
        let v2 = encode_v2(&snap);
        assert_eq!(v2[4], 2);
        assert_eq!(decode(&v2).unwrap(), snap);
        let lossy = decode_lossy(&v2).unwrap();
        assert_eq!(lossy.snapshot, snap);
        assert!(lossy.lost_sections.is_empty());
    }

    #[test]
    fn multi_zone_roundtrip() {
        // Zone framing must be invisible to the row reader, whatever the
        // zone size (including a zone boundary landing exactly on the
        // last row, and single-row zones).
        let snap = sample_snapshot(100);
        for zone_rows in [1, 3, 25, 99, 100, 101, 4096] {
            let bytes = encode_with_zone_rows(&snap, zone_rows);
            assert_eq!(bytes[4], 3);
            assert_eq!(
                decode(&bytes).unwrap(),
                snap,
                "zone_rows={zone_rows} changed the decode"
            );
        }
    }

    #[test]
    fn corrupt_zonemap_degrades_without_wrong_answers() {
        // The zone map is advisory: losing it costs pruning, never rows.
        let snap = sample_snapshot(80);
        let bytes = encode_with_zone_rows(&snap, 16);
        let spans = section_table(&bytes).unwrap();
        for target in ["zonemap", "extc"] {
            let span = spans.iter().find(|s| s.name == target).unwrap();
            let mut corrupted = bytes.clone();
            corrupted[span.offset + span.len / 2] ^= 0xFF;
            assert!(decode(&corrupted).is_err(), "strict must reject {target}");
            let lossy = decode_lossy(&corrupted).unwrap();
            assert_eq!(lossy.lost_sections, vec![target]);
            assert_eq!(lossy.snapshot, snap, "{target} loss altered records");
        }
    }

    #[test]
    fn colf_is_smaller_than_psv() {
        // The paper's whole point of the Parquet conversion: a substantial
        // footprint reduction (119 GB -> 28 GB, about 4.2x). Our encodings
        // differ, but front-coding + varints must beat text clearly even
        // with v2's per-section checksum overhead (~130 bytes/file).
        let snap = sample_snapshot(5_000);
        let mut psv = Vec::new();
        crate::psv::write_psv(&snap, &mut psv).unwrap();
        let colf = encode(&snap);
        let ratio = psv.len() as f64 / colf.len() as f64;
        assert!(ratio > 2.0, "compression ratio only {ratio:.2}");
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"JUNK\x01rest"), Err(ColfError::BadMagic));
        assert_eq!(decode(b""), Err(ColfError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode(&sample_snapshot(1));
        bytes[4] = 99;
        assert_eq!(decode(&bytes), Err(ColfError::BadVersion(99)));
    }

    #[test]
    fn hostile_record_count_is_rejected_without_allocating() {
        // A v1 header claiming ~10^12 records with a near-empty body must
        // be rejected up front (found by the prop_codecs fuzz test).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"COLF\x01");
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.push(0); // taken_at = 0
        crate::varint::put_uvarint(&mut bytes, 1_000_000_000_000u64);
        bytes.extend_from_slice(&[0u8; 16]);
        assert_eq!(decode(&bytes), Err(ColfError::BadValue("record count")));
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        for bytes in [
            encode(&sample_snapshot(20)),
            encode_v1(&sample_snapshot(20)),
        ] {
            for cut in 0..bytes.len() {
                let result = decode(&bytes[..cut]);
                assert!(result.is_err(), "cut at {cut} decoded successfully");
            }
        }
    }

    #[test]
    fn every_single_byte_corruption_is_detected_or_harmless() {
        // The checksum guarantee, exhaustively: flipping any byte of a v2
        // buffer yields a decode error or (for flips that cannot matter,
        // like a version byte flipped to another supported version over a
        // compatible body) the identical record set — never a *different*
        // successful decode. Mirrors the prop_codecs property; this
        // variant is deterministic and runs without proptest.
        let snap = sample_snapshot(40);
        let bytes = encode(&snap);
        for pos in 0..bytes.len() {
            for pattern in [0xFFu8, 0x01, 0x80] {
                let mut mutated = bytes.clone();
                mutated[pos] ^= pattern;
                match decode(&mutated) {
                    Err(_) => {}
                    Ok(decoded) => assert_eq!(
                        decoded.records(),
                        snap.records(),
                        "byte {pos} ^ {pattern:#x} changed the decode"
                    ),
                }
            }
        }
    }

    #[test]
    fn lossy_mutation_reports_what_it_lost() {
        // Deterministic twin of the prop_codecs lossy property: when a
        // mutated buffer still lossy-decodes, every section NOT reported
        // lost must match the original exactly.
        let snap = sample_snapshot(40);
        let bytes = encode(&snap);
        for pos in 0..bytes.len() {
            for pattern in [0xFFu8, 0x01, 0x80] {
                let mut mutated = bytes.clone();
                mutated[pos] ^= pattern;
                let Ok(lossy) = decode_lossy(&mutated) else {
                    continue;
                };
                assert_eq!(lossy.snapshot.len(), snap.len());
                let lost = &lossy.lost_sections;
                for (got, orig) in lossy.snapshot.records().iter().zip(snap.records()) {
                    assert_eq!(got.path, orig.path, "paths are never lossy");
                    if !lost.contains(&"atime") {
                        assert_eq!(got.atime, orig.atime);
                    }
                    if !lost.contains(&"ctime") {
                        assert_eq!(got.ctime, orig.ctime);
                    }
                    if !lost.contains(&"mtime") {
                        assert_eq!(got.mtime, orig.mtime);
                    }
                    if !lost.contains(&"ino") {
                        assert_eq!(got.ino, orig.ino);
                    }
                    if !lost.contains(&"uid") {
                        assert_eq!(got.uid, orig.uid);
                    }
                    if !lost.contains(&"gid") {
                        assert_eq!(got.gid, orig.gid);
                    }
                    if !lost.contains(&"mode") {
                        assert_eq!(got.mode, orig.mode);
                    }
                    if !lost.contains(&"osts") {
                        assert_eq!(got.osts, orig.osts);
                    }
                }
            }
        }
    }

    #[test]
    fn corrupt_osts_section_still_yields_other_columns() {
        let snap = sample_snapshot(50);
        let bytes = encode(&snap);
        let spans = section_table(&bytes).unwrap();
        let osts = spans.iter().find(|s| s.name == "osts").unwrap();
        let mut corrupted = bytes.clone();
        corrupted[osts.offset + osts.len / 2] ^= 0xFF;

        // Strict decode refuses.
        assert!(matches!(
            decode(&corrupted),
            Err(ColfError::Corrupt {
                section: "osts",
                ..
            })
        ));

        // Lossy decode recovers every other column bit-exactly.
        let lossy = decode_lossy(&corrupted).unwrap();
        assert_eq!(lossy.lost_sections, vec!["osts"]);
        assert_eq!(lossy.snapshot.len(), snap.len());
        for (got, want) in lossy.snapshot.records().iter().zip(snap.records()) {
            assert_eq!(got.path, want.path);
            assert_eq!(got.atime, want.atime);
            assert_eq!(got.ctime, want.ctime);
            assert_eq!(got.mtime, want.mtime);
            assert_eq!(got.uid, want.uid);
            assert_eq!(got.mode, want.mode);
            assert!(got.osts.is_empty());
        }
    }

    #[test]
    fn corrupt_paths_section_is_unrecoverable() {
        let snap = sample_snapshot(30);
        let bytes = encode(&snap);
        let spans = section_table(&bytes).unwrap();
        let paths = spans.iter().find(|s| s.name == "paths").unwrap();
        let mut corrupted = bytes.clone();
        corrupted[paths.offset + 3] ^= 0xFF;
        assert!(decode(&corrupted).is_err());
        assert!(decode_lossy(&corrupted).is_err());
    }

    #[test]
    fn corrupt_header_reports_offset() {
        let snap = sample_snapshot(10);
        let bytes = encode(&snap);
        let spans = section_table(&bytes).unwrap();
        let header = spans.iter().find(|s| s.name == "header").unwrap();
        let mut corrupted = bytes.clone();
        corrupted[header.offset] ^= 0x10;
        match decode(&corrupted) {
            Err(ColfError::Corrupt { section, offset }) => {
                assert_eq!(section, "header");
                assert_eq!(offset, header.offset);
            }
            other => panic!("expected header corruption, got {other:?}"),
        }
    }

    #[test]
    fn section_table_covers_the_whole_payload() {
        let snap = sample_snapshot(25);
        let bytes = encode(&snap);
        let spans = section_table(&bytes).unwrap();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert_eq!(names[..2], ["header", "section-table"]);
        assert_eq!(&names[2..], &SECTION_NAMES_V3);
        // Payload sections tile the buffer tail exactly.
        let last = spans.last().unwrap();
        assert_eq!(last.offset + last.len, bytes.len());
        for pair in spans[2..].windows(2) {
            assert_eq!(pair[0].offset + pair[0].len, pair[1].offset);
        }
    }

    #[test]
    fn truncated_tail_recovers_leading_sections() {
        // Cut the file inside the osts section: the table is intact, so
        // lossy decode salvages every earlier column; osts and both
        // trailing v3 sections are gone.
        let snap = sample_snapshot(40);
        let bytes = encode(&snap);
        let spans = section_table(&bytes).unwrap();
        let osts = spans.iter().find(|s| s.name == "osts").unwrap();
        let cut = &bytes[..osts.offset + 1];
        assert!(decode(cut).is_err());
        let lossy = decode_lossy(cut).unwrap();
        assert_eq!(lossy.lost_sections, vec!["osts", "extc", "zonemap"]);
        assert_eq!(lossy.snapshot.len(), snap.len());
    }

    #[test]
    fn peek_day_reads_all_versions() {
        let snap = sample_snapshot(5);
        let v3 = encode(&snap);
        let v2 = encode_v2(&snap);
        let v1 = encode_v1(&snap);
        assert_eq!(peek_day(&v3[..PEEK_PREFIX_LEN.min(v3.len())]), Some(14));
        assert_eq!(peek_day(&v2[..PEEK_PREFIX_LEN.min(v2.len())]), Some(14));
        assert_eq!(peek_day(&v1[..PEEK_PREFIX_LEN.min(v1.len())]), Some(14));
        assert_eq!(peek_day(b"JUNK"), None);
        assert_eq!(peek_day(b"COLF\x02"), None);
        assert_eq!(peek_day(b"COLF\x03"), None);
    }

    #[test]
    fn front_coding_exploits_shared_prefixes() {
        // Deep sibling files share almost their entire path.
        let records: Vec<SnapshotRecord> = (0..1000)
            .map(|i| SnapshotRecord {
                path: format!("/lustre/atlas1/cmb104/u9/deep/run/output/f.{i:08}"),
                atime: 1_460_000_000,
                ctime: 1_460_000_000,
                mtime: 1_460_000_000,
                uid: 1,
                gid: 1,
                mode: 0o100664,
                ino: i as u64 + 1,
                osts: vec![],
            })
            .collect();
        let snap = Snapshot::new(0, 0, records);
        let colf = encode(&snap);
        // ~50-byte paths front-code to ~12 bytes of suffix + overhead.
        let per_record = colf.len() / 1000;
        assert!(per_record < 30, "{per_record} bytes/record");
        assert_eq!(decode(&colf).unwrap(), snap);
    }

    #[test]
    fn utf8_paths_survive() {
        let records = vec![
            SnapshotRecord {
                path: "/lustre/atlas1/αβγ/データ.nc".to_string(),
                atime: 1,
                ctime: 1,
                mtime: 1,
                uid: 1,
                gid: 1,
                mode: 0o100664,
                ino: 1,
                osts: vec![(1, 2)],
            },
            SnapshotRecord {
                path: "/lustre/atlas1/αβγ/データ2.nc".to_string(),
                atime: 2,
                ctime: 2,
                mtime: 2,
                uid: 2,
                gid: 2,
                mode: 0o100664,
                ino: 2,
                osts: vec![],
            },
        ];
        let snap = Snapshot::new(0, 0, records);
        assert_eq!(decode(&encode(&snap)).unwrap(), snap);
        assert_eq!(decode(&encode_v1(&snap)).unwrap(), snap);
    }
}
