//! `colf` — **col**umn **f**ile, the Parquet stand-in of the pipeline.
//!
//! The study converts each 119 GB PSV snapshot into a columnar, compressed
//! binary format (Parquet), cutting the footprint to ~28 GB and making
//! column scans fast (Fig. 4). `colf` reproduces the two properties that
//! matter for that result:
//!
//! * **columnar layout** — each attribute is stored contiguously, so an
//!   analysis touching only `mtime` never deserializes paths;
//! * **lightweight encodings** — the path column is *front-coded* (records
//!   are sorted by path, so consecutive paths share long prefixes) and
//!   every integer column is stored as min-anchored LEB128 varints
//!   (timestamps cluster within the 500-day window, so deltas are small).
//!
//! Version 2 adds what 500 days of real operational dumps demand
//! (paper §2.2: snapshots arrive truncated, torn, or flipped, and the
//! study simply skips to the nearest usable day): **per-section XXH64
//! checksums** and a **section-skipping reader**. Every column lives in
//! its own length-prefixed, checksummed section, so a bad `osts` column
//! still yields every other column, and corruption is always *detected*
//! — never silently wrong numbers.
//!
//! v2 layout (all integers varint unless noted):
//!
//! ```text
//! magic "COLF" | version u8 = 2
//! header_len | header | xxh64(header) u64-LE
//!   header: day u32-LE | taken_at | count
//! table: n_sections u8 | n x (id u8, len, xxh64(payload) u64-LE)
//!        | xxh64(table entries) u64-LE
//! payloads, concatenated in table order:
//!   paths:  count x (shared_prefix_len, suffix_len, suffix bytes)
//!   atime:  min, count x delta     (likewise ctime, mtime, ino)
//!   uid:    count x value          (likewise gid, mode)
//!   osts:   count x (n, n x (ost, object))
//! ```
//!
//! v1 files (no checksums, columns concatenated directly after a bare
//! header) remain readable; [`decode`] dispatches on the version byte.

use crate::record::SnapshotRecord;
use crate::snapshot::Snapshot;
use crate::varint::{get_uvarint, put_uvarint, MAX_VARINT_LEN};
use crate::xxh::section_digest;
use bytes::{Buf, BufMut, BytesMut};

const MAGIC: &[u8; 4] = b"COLF";
pub(crate) const VERSION_V1: u8 = 1;
pub(crate) const VERSION: u8 = 2;

/// Column sections of a v2 file, in storage order. Index + 1 is the
/// on-disk section id.
pub const SECTION_NAMES: [&str; 9] = [
    "paths", "atime", "ctime", "mtime", "ino", "uid", "gid", "mode", "osts",
];

/// Errors from decoding a `colf` buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum ColfError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// The buffer ended prematurely or contained an invalid varint.
    Truncated(&'static str),
    /// A decoded value was out of range for its field.
    BadValue(&'static str),
    /// Decoded records violated the sorted-path invariant.
    Unsorted(String),
    /// A checksummed region failed verification. `offset` is the byte
    /// offset of the region within the buffer.
    Corrupt {
        /// The section (or `"header"` / `"section-table"`) that failed.
        section: &'static str,
        /// Absolute byte offset of the corrupt region's start.
        offset: usize,
    },
}

impl std::fmt::Display for ColfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColfError::BadMagic => write!(f, "not a colf buffer (bad magic)"),
            ColfError::BadVersion(v) => write!(f, "unsupported colf version {v}"),
            ColfError::Truncated(what) => write!(f, "truncated colf buffer in {what}"),
            ColfError::BadValue(what) => write!(f, "invalid value in {what}"),
            ColfError::Unsorted(msg) => write!(f, "colf records unsorted: {msg}"),
            ColfError::Corrupt { section, offset } => {
                write!(f, "checksum mismatch in {section} section at byte {offset}")
            }
        }
    }
}

impl std::error::Error for ColfError {}

fn shared_prefix_len(a: &str, b: &str) -> usize {
    // Byte-wise common prefix, trimmed back to a UTF-8 boundary of `b`.
    let max = a.len().min(b.len());
    let bytes_a = a.as_bytes();
    let bytes_b = b.as_bytes();
    let mut n = 0;
    while n < max && bytes_a[n] == bytes_b[n] {
        n += 1;
    }
    while n > 0 && !b.is_char_boundary(n) {
        n -= 1;
    }
    n
}

// ---- column encoders -----------------------------------------------------

fn encode_paths(records: &[SnapshotRecord]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(records.len() * 16);
    let mut prev = "";
    for r in records {
        let shared = shared_prefix_len(prev, &r.path);
        put_uvarint(&mut buf, shared as u64);
        let suffix = &r.path.as_bytes()[shared..];
        put_uvarint(&mut buf, suffix.len() as u64);
        buf.extend_from_slice(suffix);
        prev = &r.path;
    }
    buf
}

fn encode_anchored(records: &[SnapshotRecord], field: impl Fn(&SnapshotRecord) -> u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(records.len() * 3 + MAX_VARINT_LEN);
    let min = records.iter().map(&field).min().unwrap_or(0);
    put_uvarint(&mut buf, min);
    for r in records {
        put_uvarint(&mut buf, field(r) - min);
    }
    buf
}

fn encode_plain(records: &[SnapshotRecord], field: impl Fn(&SnapshotRecord) -> u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(records.len() * 2);
    for r in records {
        put_uvarint(&mut buf, field(r));
    }
    buf
}

fn encode_osts(records: &[SnapshotRecord]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(records.len() * 4);
    for r in records {
        put_uvarint(&mut buf, r.osts.len() as u64);
        for &(ost, obj) in &r.osts {
            put_uvarint(&mut buf, ost as u64);
            put_uvarint(&mut buf, obj as u64);
        }
    }
    buf
}

fn column_payloads(records: &[SnapshotRecord]) -> [Vec<u8>; 9] {
    [
        encode_paths(records),
        encode_anchored(records, |r| r.atime),
        encode_anchored(records, |r| r.ctime),
        encode_anchored(records, |r| r.mtime),
        encode_anchored(records, |r| r.ino),
        encode_plain(records, |r| r.uid as u64),
        encode_plain(records, |r| r.gid as u64),
        encode_plain(records, |r| r.mode as u64),
        encode_osts(records),
    ]
}

/// Serializes a snapshot to `colf` v2 bytes (checksummed sections).
pub fn encode(snapshot: &Snapshot) -> Vec<u8> {
    let records = snapshot.records();
    let payloads = column_payloads(records);

    let mut header = Vec::with_capacity(16);
    header.extend_from_slice(&snapshot.day().to_le_bytes());
    put_uvarint(&mut header, snapshot.taken_at());
    put_uvarint(&mut header, records.len() as u64);

    let mut table = Vec::with_capacity(payloads.len() * 12);
    for (i, payload) in payloads.iter().enumerate() {
        table.push(i as u8 + 1);
        put_uvarint(&mut table, payload.len() as u64);
        table.extend_from_slice(&section_digest(payload).to_le_bytes());
    }

    let total: usize = payloads.iter().map(Vec::len).sum();
    let mut buf = Vec::with_capacity(5 + header.len() + table.len() + total + 32);
    buf.extend_from_slice(MAGIC);
    buf.push(VERSION);
    put_uvarint(&mut buf, header.len() as u64);
    buf.extend_from_slice(&header);
    buf.extend_from_slice(&section_digest(&header).to_le_bytes());
    buf.push(payloads.len() as u8);
    buf.extend_from_slice(&table);
    buf.extend_from_slice(&section_digest(&table).to_le_bytes());
    for payload in &payloads {
        buf.extend_from_slice(payload);
    }
    buf
}

/// Serializes a snapshot to legacy v1 bytes (no checksums). Kept so
/// compatibility tests and fixtures can regenerate old-format files.
pub fn encode_v1(snapshot: &Snapshot) -> Vec<u8> {
    let records = snapshot.records();
    let mut buf = BytesMut::with_capacity(64 + records.len() * 24);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION_V1);
    buf.put_u32_le(snapshot.day());
    put_uvarint(&mut buf, snapshot.taken_at());
    put_uvarint(&mut buf, records.len() as u64);
    for payload in column_payloads(records) {
        buf.put_slice(&payload);
    }
    buf.to_vec()
}

// ---- column parsers (shared by v1 and v2, and by the columnar fast
// ---- path in `columns`) --------------------------------------------------

fn parse_paths(buf: &mut &[u8], count: usize) -> Result<Vec<String>, ColfError> {
    let mut paths = Vec::with_capacity(count);
    let mut prev = String::new();
    for _ in 0..count {
        let shared = get_uvarint(buf).ok_or(ColfError::Truncated("path prefix"))? as usize;
        let suffix_len = get_uvarint(buf).ok_or(ColfError::Truncated("path suffix len"))? as usize;
        if shared > prev.len() {
            return Err(ColfError::BadValue("path prefix length"));
        }
        if buf.remaining() < suffix_len {
            return Err(ColfError::Truncated("path suffix"));
        }
        let suffix = std::str::from_utf8(&buf[..suffix_len])
            .map_err(|_| ColfError::BadValue("path utf-8"))?;
        let mut path = String::with_capacity(shared + suffix_len);
        path.push_str(&prev[..shared]);
        path.push_str(suffix);
        buf.advance(suffix_len);
        prev = path.clone();
        paths.push(path);
    }
    Ok(paths)
}

pub(crate) fn parse_anchored(
    buf: &mut &[u8],
    count: usize,
    what: &'static str,
) -> Result<Vec<u64>, ColfError> {
    let min = get_uvarint(buf).ok_or(ColfError::Truncated(what))?;
    let mut col = Vec::with_capacity(count);
    for _ in 0..count {
        let delta = get_uvarint(buf).ok_or(ColfError::Truncated(what))?;
        col.push(
            min.checked_add(delta)
                .ok_or(ColfError::BadValue("anchored overflow"))?,
        );
    }
    Ok(col)
}

pub(crate) fn parse_plain_u32(
    buf: &mut &[u8],
    count: usize,
    what: &'static str,
) -> Result<Vec<u32>, ColfError> {
    let mut col = Vec::with_capacity(count);
    for _ in 0..count {
        let v = get_uvarint(buf).ok_or(ColfError::Truncated(what))?;
        col.push(u32::try_from(v).map_err(|_| ColfError::BadValue(what))?);
    }
    Ok(col)
}

pub(crate) type OstColumn = Vec<Vec<(u16, u32)>>;

fn parse_osts(buf: &mut &[u8], count: usize) -> Result<OstColumn, ColfError> {
    let mut osts_col = Vec::with_capacity(count);
    for _ in 0..count {
        let n = get_uvarint(buf).ok_or(ColfError::Truncated("ost count"))? as usize;
        if n > buf.remaining() + 1 {
            return Err(ColfError::BadValue("ost count"));
        }
        let mut osts = Vec::with_capacity(n);
        for _ in 0..n {
            let ost = get_uvarint(buf).ok_or(ColfError::Truncated("ost id"))?;
            let obj = get_uvarint(buf).ok_or(ColfError::Truncated("ost object"))?;
            osts.push((
                u16::try_from(ost).map_err(|_| ColfError::BadValue("ost id"))?,
                u32::try_from(obj).map_err(|_| ColfError::BadValue("ost object"))?,
            ));
        }
        osts_col.push(osts);
    }
    Ok(osts_col)
}

/// All decoded columns, pre-assembly.
struct Columns {
    paths: Vec<String>,
    atimes: Vec<u64>,
    ctimes: Vec<u64>,
    mtimes: Vec<u64>,
    inos: Vec<u64>,
    uids: Vec<u32>,
    gids: Vec<u32>,
    modes: Vec<u32>,
    osts: OstColumn,
}

fn assemble(day: u32, taken_at: u64, mut cols: Columns) -> Result<Snapshot, ColfError> {
    let records: Vec<SnapshotRecord> = cols
        .paths
        .into_iter()
        .enumerate()
        .map(|(i, path)| SnapshotRecord {
            path,
            atime: cols.atimes[i],
            ctime: cols.ctimes[i],
            mtime: cols.mtimes[i],
            uid: cols.uids[i],
            gid: cols.gids[i],
            mode: cols.modes[i],
            ino: cols.inos[i],
            osts: std::mem::take(&mut cols.osts[i]),
        })
        .collect();
    Snapshot::from_sorted(day, taken_at, records).map_err(ColfError::Unsorted)
}

// ---- v1 decoding ---------------------------------------------------------

fn decode_v1(mut buf: &[u8]) -> Result<Snapshot, ColfError> {
    if buf.remaining() < 4 {
        return Err(ColfError::Truncated("header"));
    }
    let day = buf.get_u32_le();
    let taken_at = get_uvarint(&mut buf).ok_or(ColfError::Truncated("taken_at"))?;
    let count = get_uvarint(&mut buf).ok_or(ColfError::Truncated("count"))? as usize;
    // Defensive preallocation bound: every record costs at least two
    // bytes in the path column alone, so a `count` beyond the remaining
    // byte budget is corrupt — without this, a hostile header could
    // demand a terabyte-sized Vec before the first field fails to parse.
    if count > buf.remaining() / 2 + 1 {
        return Err(ColfError::BadValue("record count"));
    }

    let paths = parse_paths(&mut buf, count)?;
    let atimes = parse_anchored(&mut buf, count, "atime")?;
    let ctimes = parse_anchored(&mut buf, count, "ctime")?;
    let mtimes = parse_anchored(&mut buf, count, "mtime")?;
    let inos = parse_anchored(&mut buf, count, "ino")?;
    let uids = parse_plain_u32(&mut buf, count, "uid")?;
    let gids = parse_plain_u32(&mut buf, count, "gid")?;
    let modes = parse_plain_u32(&mut buf, count, "mode")?;
    let osts = parse_osts(&mut buf, count)?;
    assemble(
        day,
        taken_at,
        Columns {
            paths,
            atimes,
            ctimes,
            mtimes,
            inos,
            uids,
            gids,
            modes,
            osts,
        },
    )
}

// ---- v2 decoding ---------------------------------------------------------

/// One section's location within a v2 buffer, as reported by
/// [`section_table`]. Offsets are absolute, so test harnesses (and the
/// fault-matrix suite) can target corruption at specific sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionSpan {
    /// Section name (one of [`SECTION_NAMES`], `"header"`, or
    /// `"section-table"`).
    pub name: &'static str,
    /// Absolute byte offset of the section payload within the buffer.
    pub offset: usize,
    /// Payload length in bytes.
    pub len: usize,
}

/// Parsed v2 skeleton: header fields plus the located sections. Shared
/// with the columnar fast path in [`crate::columns`].
pub(crate) struct Layout<'a> {
    pub(crate) day: u32,
    pub(crate) taken_at: u64,
    pub(crate) count: usize,
    /// `(name, absolute_offset, payload_or_none, stored_digest)`;
    /// `None` payload means the file is too short for this section.
    pub(crate) sections: Vec<(&'static str, usize, Option<&'a [u8]>, u64)>,
}

fn read_digest(buf: &mut &[u8], what: &'static str) -> Result<u64, ColfError> {
    if buf.remaining() < 8 {
        return Err(ColfError::Truncated(what));
    }
    let mut raw = [0u8; 8];
    raw.copy_from_slice(&buf[..8]);
    buf.advance(8);
    Ok(u64::from_le_bytes(raw))
}

/// Parses the v2 header and section table (both checksummed); does not
/// verify or parse section payloads.
pub(crate) fn parse_layout(full: &[u8]) -> Result<Layout<'_>, ColfError> {
    let mut buf = &full[5..]; // past magic + version
    let header_len = get_uvarint(&mut buf).ok_or(ColfError::Truncated("header"))? as usize;
    let header_off = full.len() - buf.remaining();
    if buf.remaining() < header_len {
        return Err(ColfError::Truncated("header"));
    }
    let header = &buf[..header_len];
    buf.advance(header_len);
    let stored = read_digest(&mut buf, "header")?;
    if section_digest(header) != stored {
        return Err(ColfError::Corrupt {
            section: "header",
            offset: header_off,
        });
    }

    let mut h = header;
    if h.remaining() < 4 {
        return Err(ColfError::Truncated("header"));
    }
    let day = h.get_u32_le();
    let taken_at = get_uvarint(&mut h).ok_or(ColfError::Truncated("taken_at"))?;
    let count = get_uvarint(&mut h).ok_or(ColfError::Truncated("count"))? as usize;
    if h.has_remaining() {
        return Err(ColfError::BadValue("header"));
    }
    // Same preallocation bound as v1: a record is never smaller than two
    // bytes of path column.
    if count > full.len() / 2 + 1 {
        return Err(ColfError::BadValue("record count"));
    }

    if !buf.has_remaining() {
        return Err(ColfError::Truncated("section-table"));
    }
    let n_sections = buf.get_u8() as usize;
    if n_sections != SECTION_NAMES.len() {
        return Err(ColfError::BadValue("section table"));
    }
    let table_off = full.len() - buf.remaining();
    let mut entries = Vec::with_capacity(n_sections);
    for expected_id in 1..=n_sections as u8 {
        if !buf.has_remaining() {
            return Err(ColfError::Truncated("section-table"));
        }
        let id = buf.get_u8();
        if id != expected_id {
            return Err(ColfError::BadValue("section table"));
        }
        let len = get_uvarint(&mut buf).ok_or(ColfError::Truncated("section-table"))? as usize;
        let digest = read_digest(&mut buf, "section-table")?;
        entries.push((SECTION_NAMES[id as usize - 1], len, digest));
    }
    let table_end = full.len() - buf.remaining();
    let stored = read_digest(&mut buf, "section-table")?;
    if section_digest(&full[table_off..table_end]) != stored {
        return Err(ColfError::Corrupt {
            section: "section-table",
            offset: table_off,
        });
    }

    // Locate payloads. A truncated file can cut sections off the tail;
    // record those as absent rather than failing here, so the lossy
    // reader can still recover the intact prefix.
    let payload_base = full.len() - buf.remaining();
    let mut offset = payload_base;
    let mut sections = Vec::with_capacity(n_sections);
    for (name, len, digest) in entries {
        let payload = full.get(offset..offset + len);
        sections.push((name, offset, payload, digest));
        offset += len;
    }
    Ok(Layout {
        day,
        taken_at,
        count,
        sections,
    })
}

fn parse_section(name: &str, mut payload: &[u8], count: usize) -> Result<ParsedSection, ColfError> {
    let buf = &mut payload;
    let parsed = match name {
        "paths" => ParsedSection::Paths(parse_paths(buf, count)?),
        "atime" | "ctime" | "mtime" | "ino" => {
            ParsedSection::U64(parse_anchored(buf, count, "anchored column")?)
        }
        "uid" | "gid" | "mode" => ParsedSection::U32(parse_plain_u32(buf, count, "plain column")?),
        "osts" => ParsedSection::Osts(parse_osts(buf, count)?),
        _ => unreachable!("unknown section {name}"),
    };
    if buf.has_remaining() {
        // A section that decodes but leaves bytes behind is misaligned
        // with the header's record count — corrupt, not just odd.
        return Err(ColfError::BadValue("section length"));
    }
    Ok(parsed)
}

enum ParsedSection {
    Paths(Vec<String>),
    U64(Vec<u64>),
    U32(Vec<u32>),
    Osts(OstColumn),
}

/// Outcome of a lossy decode: the snapshot assembled from every intact
/// section, plus the names of sections that were corrupt or missing and
/// got replaced with defaults (zeros / empty stripe lists).
#[derive(Debug)]
pub struct LossyDecode {
    /// The reconstructed snapshot.
    pub snapshot: Snapshot,
    /// Sections that could not be recovered (empty = full recovery).
    pub lost_sections: Vec<&'static str>,
}

fn decode_v2(full: &[u8], lossy: bool) -> Result<LossyDecode, ColfError> {
    let layout = parse_layout(full)?;
    let count = layout.count;
    let mut cols = Columns {
        paths: Vec::new(),
        atimes: vec![0; count],
        ctimes: vec![0; count],
        mtimes: vec![0; count],
        inos: vec![0; count],
        uids: vec![0; count],
        gids: vec![0; count],
        modes: vec![0; count],
        osts: vec![Vec::new(); count],
    };
    let mut lost = Vec::new();
    let mut have_paths = false;

    let paths_offset = layout.sections.first().map(|s| s.1).unwrap_or(0);
    for &(name, offset, payload, digest) in &layout.sections {
        let intact = payload.is_some_and(|p| section_digest(p) == digest);
        let parsed = if intact {
            parse_section(name, payload.expect("intact implies present"), count)
        } else if payload.is_none() {
            Err(ColfError::Truncated(name))
        } else {
            Err(ColfError::Corrupt {
                section: name,
                offset,
            })
        };
        match parsed {
            Ok(ParsedSection::Paths(paths)) => {
                cols.paths = paths;
                have_paths = true;
            }
            Ok(ParsedSection::U64(col)) => match name {
                "atime" => cols.atimes = col,
                "ctime" => cols.ctimes = col,
                "mtime" => cols.mtimes = col,
                _ => cols.inos = col,
            },
            Ok(ParsedSection::U32(col)) => match name {
                "uid" => cols.uids = col,
                "gid" => cols.gids = col,
                _ => cols.modes = col,
            },
            Ok(ParsedSection::Osts(col)) => cols.osts = col,
            Err(e) => {
                if !lossy {
                    return Err(e);
                }
                lost.push(name);
            }
        }
    }

    // Paths are the record spine: without them there is nothing to hang
    // the other columns on, lossy or not.
    if !have_paths {
        return Err(ColfError::Corrupt {
            section: "paths",
            offset: paths_offset,
        });
    }
    let snapshot = assemble(layout.day, layout.taken_at, cols)?;
    Ok(LossyDecode {
        snapshot,
        lost_sections: lost,
    })
}

// ---- public decode entry points ------------------------------------------

pub(crate) fn version_of(buf: &[u8]) -> Result<u8, ColfError> {
    if buf.len() < 5 || &buf[..4] != MAGIC {
        return Err(ColfError::BadMagic);
    }
    Ok(buf[4])
}

/// The telemetry counter charged when section `name` is lost by a lossy
/// decode. Static per section so recording allocates nothing; shared by
/// the row decoder here and the columnar decoder in `columns`.
pub(crate) fn lost_section_counter(name: &str) -> &'static str {
    match name {
        "paths" => "colf.lost.paths",
        "atime" => "colf.lost.atime",
        "ctime" => "colf.lost.ctime",
        "mtime" => "colf.lost.mtime",
        "ino" => "colf.lost.ino",
        "uid" => "colf.lost.uid",
        "gid" => "colf.lost.gid",
        "mode" => "colf.lost.mode",
        "osts" => "colf.lost.osts",
        _ => "colf.lost.other",
    }
}

/// Deserializes a `colf` buffer (v1 or v2) back into a snapshot.
/// Strict: any corrupt or truncated section is an error.
pub fn decode(buf: &[u8]) -> Result<Snapshot, ColfError> {
    let result = version_of(buf).and_then(|v| match v {
        VERSION_V1 => decode_v1(&buf[5..]),
        VERSION => decode_v2(buf, false).map(|d| d.snapshot),
        v => Err(ColfError::BadVersion(v)),
    });
    let tel = spider_telemetry::global();
    match &result {
        Ok(snap) => {
            tel.incr("colf.decode.strict_ok", 1);
            tel.incr("colf.decode.bytes", buf.len() as u64);
            tel.incr("colf.decode.rows", snap.len() as u64);
        }
        Err(_) => tel.incr("colf.decode.failed", 1),
    }
    result
}

/// Lossy deserialization: recovers everything the checksums vouch for,
/// replacing corrupt non-spine sections with defaults and reporting
/// them. v1 files carry no checksums, so they decode strictly (a v1
/// success is a full recovery).
pub fn decode_lossy(buf: &[u8]) -> Result<LossyDecode, ColfError> {
    let result = version_of(buf).and_then(|v| match v {
        VERSION_V1 => decode_v1(&buf[5..]).map(|snapshot| LossyDecode {
            snapshot,
            lost_sections: Vec::new(),
        }),
        VERSION => decode_v2(buf, true),
        v => Err(ColfError::BadVersion(v)),
    });
    let tel = spider_telemetry::global();
    match &result {
        Ok(d) => {
            if d.lost_sections.is_empty() {
                tel.incr("colf.decode.lossy_clean", 1);
            } else {
                tel.incr("colf.decode.lossy_degraded", 1);
                for name in &d.lost_sections {
                    tel.incr(lost_section_counter(name), 1);
                }
            }
            tel.incr("colf.decode.bytes", buf.len() as u64);
            tel.incr("colf.decode.rows", d.snapshot.len() as u64);
        }
        Err(_) => tel.incr("colf.decode.failed", 1),
    }
    result
}

/// Locations of all checksummed regions in a v2 buffer: `"header"`,
/// `"section-table"`, then one span per column section. Fault-injection
/// tests use this to target corruption precisely.
pub fn section_table(full: &[u8]) -> Result<Vec<SectionSpan>, ColfError> {
    match version_of(full)? {
        VERSION => {}
        VERSION_V1 => return Err(ColfError::BadVersion(VERSION_V1)),
        v => return Err(ColfError::BadVersion(v)),
    }
    let mut buf = &full[5..];
    let header_len = get_uvarint(&mut buf).ok_or(ColfError::Truncated("header"))? as usize;
    let header_off = full.len() - buf.remaining();
    if buf.remaining() < header_len + 8 {
        return Err(ColfError::Truncated("header"));
    }
    buf.advance(header_len + 8);
    let mut spans = vec![SectionSpan {
        name: "header",
        offset: header_off,
        len: header_len,
    }];
    if !buf.has_remaining() {
        return Err(ColfError::Truncated("section-table"));
    }
    let n_sections = buf.get_u8() as usize;
    let table_off = full.len() - buf.remaining();
    let mut entries = Vec::with_capacity(n_sections);
    for _ in 0..n_sections {
        if !buf.has_remaining() {
            return Err(ColfError::Truncated("section-table"));
        }
        let id = buf.get_u8();
        let len = get_uvarint(&mut buf).ok_or(ColfError::Truncated("section-table"))? as usize;
        read_digest(&mut buf, "section-table")?;
        let name = SECTION_NAMES
            .get(id as usize - 1)
            .ok_or(ColfError::BadValue("section table"))?;
        entries.push((*name, len));
    }
    let table_end = full.len() - buf.remaining();
    read_digest(&mut buf, "section-table")?;
    spans.push(SectionSpan {
        name: "section-table",
        offset: table_off,
        len: table_end - table_off,
    });
    let mut offset = full.len() - buf.remaining();
    for (name, len) in entries {
        spans.push(SectionSpan { name, offset, len });
        offset += len;
    }
    Ok(spans)
}

/// Reads the `day` field from a file prefix without decoding the body —
/// the store's open-time cross-check against the `snap-<day>.colf` file
/// name. Returns `None` when the prefix is not a recognizable colf
/// header (corruption is diagnosed later, at decode time).
pub fn peek_day(prefix: &[u8]) -> Option<u32> {
    if prefix.len() < 5 || &prefix[..4] != MAGIC {
        return None;
    }
    match prefix[4] {
        VERSION_V1 => prefix
            .get(5..9)
            .map(|raw| u32::from_le_bytes(raw.try_into().expect("4-byte slice"))),
        VERSION => {
            let mut buf = &prefix[5..];
            let header_len = get_uvarint(&mut buf)? as usize;
            if header_len < 4 || buf.remaining() < 4 {
                return None;
            }
            Some((&buf[..4]).get_u32_le())
        }
        _ => None,
    }
}

/// How many bytes of file prefix [`peek_day`] needs in the worst case.
pub const PEEK_PREFIX_LEN: usize = 5 + MAX_VARINT_LEN + 4;

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot(n: usize) -> Snapshot {
        let records: Vec<SnapshotRecord> = (0..n)
            .map(|i| SnapshotRecord {
                path: format!(
                    "/lustre/atlas1/proj{:03}/user{:02}/run{}/f.{:08}",
                    i % 7,
                    i % 13,
                    i % 3,
                    i
                ),
                atime: 1_460_000_000 + i as u64 * 37,
                ctime: 1_450_000_000 + i as u64 * 11,
                mtime: 1_450_000_000 + i as u64 * 13,
                uid: 10_000 + (i % 50) as u32,
                gid: 2_000 + (i % 20) as u32,
                mode: if i % 10 == 0 { 0o040770 } else { 0o100664 },
                ino: 1_000_000 + i as u64,
                osts: if i % 10 == 0 {
                    vec![]
                } else {
                    (0..4)
                        .map(|k| ((i * 4 + k) as u16 % 2016, (i * 7 + k) as u32))
                        .collect()
                },
            })
            .collect();
        Snapshot::new(14, 1_421_625_600, records)
    }

    #[test]
    fn roundtrip_small() {
        let snap = sample_snapshot(100);
        let bytes = encode(&snap);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn roundtrip_empty() {
        let snap = Snapshot::new(0, 0, vec![]);
        let decoded = decode(&encode(&snap)).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn v1_files_remain_readable() {
        let snap = sample_snapshot(64);
        let v1 = encode_v1(&snap);
        assert_eq!(v1[4], 1);
        assert_eq!(decode(&v1).unwrap(), snap);
        let lossy = decode_lossy(&v1).unwrap();
        assert_eq!(lossy.snapshot, snap);
        assert!(lossy.lost_sections.is_empty());
    }

    #[test]
    fn colf_is_smaller_than_psv() {
        // The paper's whole point of the Parquet conversion: a substantial
        // footprint reduction (119 GB -> 28 GB, about 4.2x). Our encodings
        // differ, but front-coding + varints must beat text clearly even
        // with v2's per-section checksum overhead (~130 bytes/file).
        let snap = sample_snapshot(5_000);
        let mut psv = Vec::new();
        crate::psv::write_psv(&snap, &mut psv).unwrap();
        let colf = encode(&snap);
        let ratio = psv.len() as f64 / colf.len() as f64;
        assert!(ratio > 2.0, "compression ratio only {ratio:.2}");
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"JUNK\x01rest"), Err(ColfError::BadMagic));
        assert_eq!(decode(b""), Err(ColfError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode(&sample_snapshot(1));
        bytes[4] = 99;
        assert_eq!(decode(&bytes), Err(ColfError::BadVersion(99)));
    }

    #[test]
    fn hostile_record_count_is_rejected_without_allocating() {
        // A v1 header claiming ~10^12 records with a near-empty body must
        // be rejected up front (found by the prop_codecs fuzz test).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"COLF\x01");
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.push(0); // taken_at = 0
        crate::varint::put_uvarint(&mut bytes, 1_000_000_000_000u64);
        bytes.extend_from_slice(&[0u8; 16]);
        assert_eq!(decode(&bytes), Err(ColfError::BadValue("record count")));
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        for bytes in [
            encode(&sample_snapshot(20)),
            encode_v1(&sample_snapshot(20)),
        ] {
            for cut in 0..bytes.len() {
                let result = decode(&bytes[..cut]);
                assert!(result.is_err(), "cut at {cut} decoded successfully");
            }
        }
    }

    #[test]
    fn every_single_byte_corruption_is_detected_or_harmless() {
        // The checksum guarantee, exhaustively: flipping any byte of a v2
        // buffer yields a decode error or (for flips that cannot matter,
        // like a version byte flipped to another supported version over a
        // compatible body) the identical record set — never a *different*
        // successful decode. Mirrors the prop_codecs property; this
        // variant is deterministic and runs without proptest.
        let snap = sample_snapshot(40);
        let bytes = encode(&snap);
        for pos in 0..bytes.len() {
            for pattern in [0xFFu8, 0x01, 0x80] {
                let mut mutated = bytes.clone();
                mutated[pos] ^= pattern;
                match decode(&mutated) {
                    Err(_) => {}
                    Ok(decoded) => assert_eq!(
                        decoded.records(),
                        snap.records(),
                        "byte {pos} ^ {pattern:#x} changed the decode"
                    ),
                }
            }
        }
    }

    #[test]
    fn lossy_mutation_reports_what_it_lost() {
        // Deterministic twin of the prop_codecs lossy property: when a
        // mutated buffer still lossy-decodes, every section NOT reported
        // lost must match the original exactly.
        let snap = sample_snapshot(40);
        let bytes = encode(&snap);
        for pos in 0..bytes.len() {
            for pattern in [0xFFu8, 0x01, 0x80] {
                let mut mutated = bytes.clone();
                mutated[pos] ^= pattern;
                let Ok(lossy) = decode_lossy(&mutated) else {
                    continue;
                };
                assert_eq!(lossy.snapshot.len(), snap.len());
                let lost = &lossy.lost_sections;
                for (got, orig) in lossy.snapshot.records().iter().zip(snap.records()) {
                    assert_eq!(got.path, orig.path, "paths are never lossy");
                    if !lost.contains(&"atime") {
                        assert_eq!(got.atime, orig.atime);
                    }
                    if !lost.contains(&"ctime") {
                        assert_eq!(got.ctime, orig.ctime);
                    }
                    if !lost.contains(&"mtime") {
                        assert_eq!(got.mtime, orig.mtime);
                    }
                    if !lost.contains(&"ino") {
                        assert_eq!(got.ino, orig.ino);
                    }
                    if !lost.contains(&"uid") {
                        assert_eq!(got.uid, orig.uid);
                    }
                    if !lost.contains(&"gid") {
                        assert_eq!(got.gid, orig.gid);
                    }
                    if !lost.contains(&"mode") {
                        assert_eq!(got.mode, orig.mode);
                    }
                    if !lost.contains(&"osts") {
                        assert_eq!(got.osts, orig.osts);
                    }
                }
            }
        }
    }

    #[test]
    fn corrupt_osts_section_still_yields_other_columns() {
        let snap = sample_snapshot(50);
        let bytes = encode(&snap);
        let spans = section_table(&bytes).unwrap();
        let osts = spans.iter().find(|s| s.name == "osts").unwrap();
        let mut corrupted = bytes.clone();
        corrupted[osts.offset + osts.len / 2] ^= 0xFF;

        // Strict decode refuses.
        assert!(matches!(
            decode(&corrupted),
            Err(ColfError::Corrupt {
                section: "osts",
                ..
            })
        ));

        // Lossy decode recovers every other column bit-exactly.
        let lossy = decode_lossy(&corrupted).unwrap();
        assert_eq!(lossy.lost_sections, vec!["osts"]);
        assert_eq!(lossy.snapshot.len(), snap.len());
        for (got, want) in lossy.snapshot.records().iter().zip(snap.records()) {
            assert_eq!(got.path, want.path);
            assert_eq!(got.atime, want.atime);
            assert_eq!(got.ctime, want.ctime);
            assert_eq!(got.mtime, want.mtime);
            assert_eq!(got.uid, want.uid);
            assert_eq!(got.mode, want.mode);
            assert!(got.osts.is_empty());
        }
    }

    #[test]
    fn corrupt_paths_section_is_unrecoverable() {
        let snap = sample_snapshot(30);
        let bytes = encode(&snap);
        let spans = section_table(&bytes).unwrap();
        let paths = spans.iter().find(|s| s.name == "paths").unwrap();
        let mut corrupted = bytes.clone();
        corrupted[paths.offset + 3] ^= 0xFF;
        assert!(decode(&corrupted).is_err());
        assert!(decode_lossy(&corrupted).is_err());
    }

    #[test]
    fn corrupt_header_reports_offset() {
        let snap = sample_snapshot(10);
        let bytes = encode(&snap);
        let spans = section_table(&bytes).unwrap();
        let header = spans.iter().find(|s| s.name == "header").unwrap();
        let mut corrupted = bytes.clone();
        corrupted[header.offset] ^= 0x10;
        match decode(&corrupted) {
            Err(ColfError::Corrupt { section, offset }) => {
                assert_eq!(section, "header");
                assert_eq!(offset, header.offset);
            }
            other => panic!("expected header corruption, got {other:?}"),
        }
    }

    #[test]
    fn section_table_covers_the_whole_payload() {
        let snap = sample_snapshot(25);
        let bytes = encode(&snap);
        let spans = section_table(&bytes).unwrap();
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert_eq!(names[..2], ["header", "section-table"]);
        assert_eq!(&names[2..], &SECTION_NAMES);
        // Payload sections tile the buffer tail exactly.
        let last = spans.last().unwrap();
        assert_eq!(last.offset + last.len, bytes.len());
        for pair in spans[2..].windows(2) {
            assert_eq!(pair[0].offset + pair[0].len, pair[1].offset);
        }
    }

    #[test]
    fn truncated_tail_recovers_leading_sections() {
        // Cut the file inside the final (osts) section: the table is
        // intact, so lossy decode salvages every earlier column.
        let snap = sample_snapshot(40);
        let bytes = encode(&snap);
        let spans = section_table(&bytes).unwrap();
        let osts = spans.iter().find(|s| s.name == "osts").unwrap();
        let cut = &bytes[..osts.offset + 1];
        assert!(decode(cut).is_err());
        let lossy = decode_lossy(cut).unwrap();
        assert_eq!(lossy.lost_sections, vec!["osts"]);
        assert_eq!(lossy.snapshot.len(), snap.len());
    }

    #[test]
    fn peek_day_reads_both_versions() {
        let snap = sample_snapshot(5);
        let v2 = encode(&snap);
        let v1 = encode_v1(&snap);
        assert_eq!(peek_day(&v2[..PEEK_PREFIX_LEN.min(v2.len())]), Some(14));
        assert_eq!(peek_day(&v1[..PEEK_PREFIX_LEN.min(v1.len())]), Some(14));
        assert_eq!(peek_day(b"JUNK"), None);
        assert_eq!(peek_day(b"COLF\x02"), None);
    }

    #[test]
    fn front_coding_exploits_shared_prefixes() {
        // Deep sibling files share almost their entire path.
        let records: Vec<SnapshotRecord> = (0..1000)
            .map(|i| SnapshotRecord {
                path: format!("/lustre/atlas1/cmb104/u9/deep/run/output/f.{i:08}"),
                atime: 1_460_000_000,
                ctime: 1_460_000_000,
                mtime: 1_460_000_000,
                uid: 1,
                gid: 1,
                mode: 0o100664,
                ino: i as u64 + 1,
                osts: vec![],
            })
            .collect();
        let snap = Snapshot::new(0, 0, records);
        let colf = encode(&snap);
        // ~50-byte paths front-code to ~12 bytes of suffix + overhead.
        let per_record = colf.len() / 1000;
        assert!(per_record < 30, "{per_record} bytes/record");
        assert_eq!(decode(&colf).unwrap(), snap);
    }

    #[test]
    fn utf8_paths_survive() {
        let records = vec![
            SnapshotRecord {
                path: "/lustre/atlas1/αβγ/データ.nc".to_string(),
                atime: 1,
                ctime: 1,
                mtime: 1,
                uid: 1,
                gid: 1,
                mode: 0o100664,
                ino: 1,
                osts: vec![(1, 2)],
            },
            SnapshotRecord {
                path: "/lustre/atlas1/αβγ/データ2.nc".to_string(),
                atime: 2,
                ctime: 2,
                mtime: 2,
                uid: 2,
                gid: 2,
                mode: 0o100664,
                ino: 2,
                osts: vec![],
            },
        ];
        let snap = Snapshot::new(0, 0, records);
        assert_eq!(decode(&encode(&snap)).unwrap(), snap);
        assert_eq!(decode(&encode_v1(&snap)).unwrap(), snap);
    }
}
