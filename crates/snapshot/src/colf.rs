//! `colf` — **col**umn **f**ile, the Parquet stand-in of the pipeline.
//!
//! The study converts each 119 GB PSV snapshot into a columnar, compressed
//! binary format (Parquet), cutting the footprint to ~28 GB and making
//! column scans fast (Fig. 4). `colf` reproduces the two properties that
//! matter for that result:
//!
//! * **columnar layout** — each attribute is stored contiguously, so an
//!   analysis touching only `mtime` never deserializes paths;
//! * **lightweight encodings** — the path column is *front-coded* (records
//!   are sorted by path, so consecutive paths share long prefixes) and
//!   every integer column is stored as min-anchored LEB128 varints
//!   (timestamps cluster within the 500-day window, so deltas are small).
//!
//! Layout (all integers varint unless noted):
//!
//! ```text
//! magic "COLF" | version u8 | day u32-LE | taken_at | count
//! paths:  count x (shared_prefix_len, suffix_len, suffix bytes)
//! atime:  min, count x delta     (likewise ctime, mtime, ino)
//! uid:    count x value          (likewise gid, mode)
//! osts:   count x (n, n x (ost, object))
//! ```

use crate::record::SnapshotRecord;
use crate::snapshot::Snapshot;
use crate::varint::{get_uvarint, put_uvarint};
use bytes::{Buf, BufMut, BytesMut};

const MAGIC: &[u8; 4] = b"COLF";
const VERSION: u8 = 1;

/// Errors from decoding a `colf` buffer.
#[derive(Debug, PartialEq, Eq)]
pub enum ColfError {
    /// Missing or wrong magic bytes.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u8),
    /// The buffer ended prematurely or contained an invalid varint.
    Truncated(&'static str),
    /// A decoded value was out of range for its field.
    BadValue(&'static str),
    /// Decoded records violated the sorted-path invariant.
    Unsorted(String),
}

impl std::fmt::Display for ColfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColfError::BadMagic => write!(f, "not a colf buffer (bad magic)"),
            ColfError::BadVersion(v) => write!(f, "unsupported colf version {v}"),
            ColfError::Truncated(what) => write!(f, "truncated colf buffer in {what}"),
            ColfError::BadValue(what) => write!(f, "invalid value in {what}"),
            ColfError::Unsorted(msg) => write!(f, "colf records unsorted: {msg}"),
        }
    }
}

impl std::error::Error for ColfError {}

fn shared_prefix_len(a: &str, b: &str) -> usize {
    // Byte-wise common prefix, trimmed back to a UTF-8 boundary of `b`.
    let max = a.len().min(b.len());
    let bytes_a = a.as_bytes();
    let bytes_b = b.as_bytes();
    let mut n = 0;
    while n < max && bytes_a[n] == bytes_b[n] {
        n += 1;
    }
    while n > 0 && !b.is_char_boundary(n) {
        n -= 1;
    }
    n
}

/// Serializes a snapshot to `colf` bytes.
pub fn encode(snapshot: &Snapshot) -> Vec<u8> {
    let records = snapshot.records();
    let mut buf = BytesMut::with_capacity(64 + records.len() * 24);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u32_le(snapshot.day());
    put_uvarint(&mut buf, snapshot.taken_at());
    put_uvarint(&mut buf, records.len() as u64);

    // Path column: front-coded against the previous path.
    let mut prev = "";
    for r in records {
        let shared = shared_prefix_len(prev, &r.path);
        put_uvarint(&mut buf, shared as u64);
        let suffix = &r.path.as_bytes()[shared..];
        put_uvarint(&mut buf, suffix.len() as u64);
        buf.put_slice(suffix);
        prev = &r.path;
    }

    // Min-anchored integer columns.
    for field in [
        |r: &SnapshotRecord| r.atime,
        |r: &SnapshotRecord| r.ctime,
        |r: &SnapshotRecord| r.mtime,
        |r: &SnapshotRecord| r.ino,
    ] {
        let min = records.iter().map(field).min().unwrap_or(0);
        put_uvarint(&mut buf, min);
        for r in records {
            put_uvarint(&mut buf, field(r) - min);
        }
    }

    // Plain varint columns.
    for field in [
        |r: &SnapshotRecord| r.uid as u64,
        |r: &SnapshotRecord| r.gid as u64,
        |r: &SnapshotRecord| r.mode as u64,
    ] {
        for r in records {
            put_uvarint(&mut buf, field(r));
        }
    }

    // OST column.
    for r in records {
        put_uvarint(&mut buf, r.osts.len() as u64);
        for &(ost, obj) in &r.osts {
            put_uvarint(&mut buf, ost as u64);
            put_uvarint(&mut buf, obj as u64);
        }
    }

    buf.to_vec()
}

/// Deserializes a `colf` buffer back into a snapshot.
pub fn decode(mut buf: &[u8]) -> Result<Snapshot, ColfError> {
    if buf.remaining() < 5 || &buf[..4] != MAGIC {
        return Err(ColfError::BadMagic);
    }
    buf.advance(4);
    let version = buf.get_u8();
    if version != VERSION {
        return Err(ColfError::BadVersion(version));
    }
    if buf.remaining() < 4 {
        return Err(ColfError::Truncated("header"));
    }
    let day = buf.get_u32_le();
    let taken_at = get_uvarint(&mut buf).ok_or(ColfError::Truncated("taken_at"))?;
    let count = get_uvarint(&mut buf).ok_or(ColfError::Truncated("count"))? as usize;
    // Defensive preallocation bound: every record costs at least two
    // bytes in the path column alone, so a `count` beyond the remaining
    // byte budget is corrupt — without this, a hostile header could
    // demand a terabyte-sized Vec before the first field fails to parse.
    if count > buf.remaining() / 2 + 1 {
        return Err(ColfError::BadValue("record count"));
    }

    // Path column.
    let mut paths = Vec::with_capacity(count);
    let mut prev = String::new();
    for _ in 0..count {
        let shared = get_uvarint(&mut buf).ok_or(ColfError::Truncated("path prefix"))? as usize;
        let suffix_len =
            get_uvarint(&mut buf).ok_or(ColfError::Truncated("path suffix len"))? as usize;
        if shared > prev.len() {
            return Err(ColfError::BadValue("path prefix length"));
        }
        if buf.remaining() < suffix_len {
            return Err(ColfError::Truncated("path suffix"));
        }
        let suffix = std::str::from_utf8(&buf[..suffix_len])
            .map_err(|_| ColfError::BadValue("path utf-8"))?;
        let mut path = String::with_capacity(shared + suffix_len);
        path.push_str(&prev[..shared]);
        path.push_str(suffix);
        buf.advance(suffix_len);
        prev = path.clone();
        paths.push(path);
    }

    let mut read_anchored = |what: &'static str| -> Result<Vec<u64>, ColfError> {
        let min = get_uvarint(&mut buf).ok_or(ColfError::Truncated(what))?;
        let mut col = Vec::with_capacity(count);
        for _ in 0..count {
            let delta = get_uvarint(&mut buf).ok_or(ColfError::Truncated(what))?;
            col.push(
                min.checked_add(delta)
                    .ok_or(ColfError::BadValue("anchored overflow"))?,
            );
        }
        Ok(col)
    };
    let atimes = read_anchored("atime")?;
    let ctimes = read_anchored("ctime")?;
    let mtimes = read_anchored("mtime")?;
    let inos = read_anchored("ino")?;

    let mut read_plain_u32 = |what: &'static str| -> Result<Vec<u32>, ColfError> {
        let mut col = Vec::with_capacity(count);
        for _ in 0..count {
            let v = get_uvarint(&mut buf).ok_or(ColfError::Truncated(what))?;
            col.push(u32::try_from(v).map_err(|_| ColfError::BadValue(what))?);
        }
        Ok(col)
    };
    let uids = read_plain_u32("uid")?;
    let gids = read_plain_u32("gid")?;
    let modes = read_plain_u32("mode")?;

    let mut osts_col = Vec::with_capacity(count);
    for _ in 0..count {
        let n = get_uvarint(&mut buf).ok_or(ColfError::Truncated("ost count"))? as usize;
        if n > buf.remaining() + 1 {
            return Err(ColfError::BadValue("ost count"));
        }
        let mut osts = Vec::with_capacity(n);
        for _ in 0..n {
            let ost = get_uvarint(&mut buf).ok_or(ColfError::Truncated("ost id"))?;
            let obj = get_uvarint(&mut buf).ok_or(ColfError::Truncated("ost object"))?;
            osts.push((
                u16::try_from(ost).map_err(|_| ColfError::BadValue("ost id"))?,
                u32::try_from(obj).map_err(|_| ColfError::BadValue("ost object"))?,
            ));
        }
        osts_col.push(osts);
    }

    let records: Vec<SnapshotRecord> = paths
        .into_iter()
        .enumerate()
        .map(|(i, path)| SnapshotRecord {
            path,
            atime: atimes[i],
            ctime: ctimes[i],
            mtime: mtimes[i],
            uid: uids[i],
            gid: gids[i],
            mode: modes[i],
            ino: inos[i],
            osts: std::mem::take(&mut osts_col[i]),
        })
        .collect();

    Snapshot::from_sorted(day, taken_at, records).map_err(ColfError::Unsorted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot(n: usize) -> Snapshot {
        let records: Vec<SnapshotRecord> = (0..n)
            .map(|i| SnapshotRecord {
                path: format!(
                    "/lustre/atlas1/proj{:03}/user{:02}/run{}/f.{:08}",
                    i % 7,
                    i % 13,
                    i % 3,
                    i
                ),
                atime: 1_460_000_000 + i as u64 * 37,
                ctime: 1_450_000_000 + i as u64 * 11,
                mtime: 1_450_000_000 + i as u64 * 13,
                uid: 10_000 + (i % 50) as u32,
                gid: 2_000 + (i % 20) as u32,
                mode: if i % 10 == 0 { 0o040770 } else { 0o100664 },
                ino: 1_000_000 + i as u64,
                osts: if i % 10 == 0 {
                    vec![]
                } else {
                    (0..4)
                        .map(|k| ((i * 4 + k) as u16 % 2016, (i * 7 + k) as u32))
                        .collect()
                },
            })
            .collect();
        Snapshot::new(14, 1_421_625_600, records)
    }

    #[test]
    fn roundtrip_small() {
        let snap = sample_snapshot(100);
        let bytes = encode(&snap);
        let decoded = decode(&bytes).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn roundtrip_empty() {
        let snap = Snapshot::new(0, 0, vec![]);
        let decoded = decode(&encode(&snap)).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn colf_is_smaller_than_psv() {
        // The paper's whole point of the Parquet conversion: a substantial
        // footprint reduction (119 GB -> 28 GB, about 4.2x). Our encodings
        // differ, but front-coding + varints must beat text clearly.
        let snap = sample_snapshot(5_000);
        let mut psv = Vec::new();
        crate::psv::write_psv(&snap, &mut psv).unwrap();
        let colf = encode(&snap);
        let ratio = psv.len() as f64 / colf.len() as f64;
        assert!(ratio > 2.0, "compression ratio only {ratio:.2}");
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(decode(b"JUNK\x01rest"), Err(ColfError::BadMagic));
        assert_eq!(decode(b""), Err(ColfError::BadMagic));
    }

    #[test]
    fn bad_version_rejected() {
        let mut bytes = encode(&sample_snapshot(1));
        bytes[4] = 99;
        assert_eq!(decode(&bytes), Err(ColfError::BadVersion(99)));
    }

    #[test]
    fn hostile_record_count_is_rejected_without_allocating() {
        // A header claiming ~10^12 records with a near-empty body must be
        // rejected up front (found by the prop_codecs fuzz test).
        let mut bytes = Vec::new();
        bytes.extend_from_slice(b"COLF\x01");
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.push(0); // taken_at = 0
        crate::varint::put_uvarint(&mut bytes, 1_000_000_000_000u64);
        bytes.extend_from_slice(&[0u8; 16]);
        assert_eq!(decode(&bytes), Err(ColfError::BadValue("record count")));
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        let bytes = encode(&sample_snapshot(20));
        for cut in 0..bytes.len() {
            let result = decode(&bytes[..cut]);
            assert!(result.is_err(), "cut at {cut} decoded successfully");
        }
    }

    #[test]
    fn front_coding_exploits_shared_prefixes() {
        // Deep sibling files share almost their entire path.
        let records: Vec<SnapshotRecord> = (0..1000)
            .map(|i| SnapshotRecord {
                path: format!("/lustre/atlas1/cmb104/u9/deep/run/output/f.{i:08}"),
                atime: 1_460_000_000,
                ctime: 1_460_000_000,
                mtime: 1_460_000_000,
                uid: 1,
                gid: 1,
                mode: 0o100664,
                ino: i as u64 + 1,
                osts: vec![],
            })
            .collect();
        let snap = Snapshot::new(0, 0, records);
        let colf = encode(&snap);
        // ~50-byte paths front-code to ~12 bytes of suffix + overhead.
        let per_record = colf.len() / 1000;
        assert!(per_record < 30, "{per_record} bytes/record");
        assert_eq!(decode(&colf).unwrap(), snap);
    }

    #[test]
    fn utf8_paths_survive() {
        let records = vec![
            SnapshotRecord {
                path: "/lustre/atlas1/αβγ/データ.nc".to_string(),
                atime: 1,
                ctime: 1,
                mtime: 1,
                uid: 1,
                gid: 1,
                mode: 0o100664,
                ino: 1,
                osts: vec![(1, 2)],
            },
            SnapshotRecord {
                path: "/lustre/atlas1/αβγ/データ2.nc".to_string(),
                atime: 2,
                ctime: 2,
                mtime: 2,
                uid: 2,
                gid: 2,
                mode: 0o100664,
                ino: 2,
                osts: vec![],
            },
        ];
        let snap = Snapshot::new(0, 0, records);
        assert_eq!(decode(&encode(&snap)).unwrap(), snap);
    }
}
