//! Zero-rehydration column views over `colf` bytes — the fast path from
//! disk to a columnar frame, including **predicate pushdown**.
//!
//! [`crate::colf::decode`] materializes one [`crate::SnapshotRecord`] per
//! inode (a heap `String` path plus a per-row stripe `Vec`) only for the
//! analysis layer to immediately re-transpose those rows into dense
//! columns. That round trip through rows is the eager-row anti-pattern
//! the study's Parquet conversion exists to avoid (§2.2): at a billion
//! inodes you never rehydrate rows you don't need.
//!
//! [`FrameColumns`] decodes a `colf` buffer (v1, v2, or v3) straight
//! into column vectors in a single parse:
//!
//! * **paths** land in one contiguous byte **arena** plus an offset
//!   table — no per-row `String`, no per-row clone of the front-coding
//!   predecessor; row `i`'s path is `arena[offsets[i]..offsets[i+1]]`;
//! * integer columns decode directly into `Vec<u64>` / `Vec<u32>`;
//! * the `osts` section is reduced to a **stripe-count column** while it
//!   is parsed — the per-row `(ost, object)` lists are retained only
//!   when rows will actually be needed ([`FrameColumns::decode_lossy_with_rows`]),
//!   in which case [`FrameColumns::into_snapshot`] materializes records
//!   from the same single parse.
//!
//! [`FrameColumns::decode_pruned`] goes further: given a typed
//! [`Pred`], a v3 decode tests each zone's min/max statistics first and
//! **skips every column blob of a pruned zone without touching its
//! bytes**; surviving zones evaluate the predicate on just the columns
//! it references (extension equality compares one dictionary code per
//! row) and **late-materialize** only the surviving rows into the
//! output columns. The invariant, enforced by the equivalence suites:
//! `decode_pruned(buf, p)` holds exactly the rows `i` of
//! `decode_lossy(buf)` for which the predicate matches — under any
//! corruption the lossy decode itself survives. Zone maps are advisory:
//! a lost `zonemap`/`extc` section, or a predicate column whose section
//! was lost, disables the corresponding pruning and falls back to row
//! evaluation on the same defaults the full decode reports. v1/v2
//! buffers have no zones; `decode_pruned` decodes fully and filters.
//!
//! Corruption semantics mirror the row reader exactly: strict decoding
//! fails on any checksum mismatch, lossy decoding salvages every intact
//! section and reports the rest in [`FrameColumns::lost_sections`]
//! (paths remain the unrecoverable spine). The equivalence suite in
//! `spider-core` holds the two readers bit-identical, including on
//! corrupt-section fixtures.

use crate::colf::{
    parse_anchored, parse_layout, parse_plain_u32, parse_zonemap, split_zone_blobs, version_of,
    ColfError, OstColumn, ZoneMap, ZoneStats, SECTION_NAMES_V3, VERSION_V1, VERSION_V2, VERSION_V3,
    ZONE_U16_CAP,
};
use crate::pred::Pred;
use crate::record::SnapshotRecord;
use crate::snapshot::Snapshot;
use crate::varint::get_uvarint;
use crate::xxh::section_digest;
use bytes::Buf;

/// Decoded columns of one snapshot, never materialized as rows.
#[derive(Debug, Clone)]
pub struct FrameColumns {
    day: u32,
    taken_at: u64,
    len: usize,
    /// All paths, concatenated; see `path_offsets`.
    path_arena: Vec<u8>,
    /// `len + 1` offsets into the arena; path `i` spans
    /// `path_arena[path_offsets[i]..path_offsets[i + 1]]`.
    path_offsets: Vec<u32>,
    /// Last-access times.
    pub atime: Vec<u64>,
    /// Status-change times.
    pub ctime: Vec<u64>,
    /// Modification times.
    pub mtime: Vec<u64>,
    /// Inode numbers.
    pub ino: Vec<u64>,
    /// Owner uids.
    pub uid: Vec<u32>,
    /// Owner gids.
    pub gid: Vec<u32>,
    /// Full mode words.
    pub mode: Vec<u32>,
    /// Stripe counts (0 for directories), derived while the `osts`
    /// section is parsed — the pair lists themselves are not retained
    /// unless rows were requested.
    pub stripe_count: Vec<u32>,
    /// Full `(ost, object)` lists, present only for
    /// [`FrameColumns::decode_lossy_with_rows`].
    osts: Option<OstColumn>,
    /// Per-row extension dictionary codes from a v3 `extc` section
    /// (0 = no extension, `k` = `ext_dict[k-1]`); `None` for v1/v2
    /// buffers or when `extc`/`zonemap` could not be recovered.
    ext_code: Option<Vec<u32>>,
    /// Sorted distinct-extension dictionary (v3, exact dictionaries
    /// only); empty whenever `ext_code` is `None`.
    ext_dict: Vec<String>,
    /// Sections dropped by a lossy decode (empty = full recovery).
    lost_sections: Vec<&'static str>,
}

impl FrameColumns {
    /// Strictly decodes a `colf` buffer (v1, v2, or v3) into column
    /// views. Any corrupt or truncated section is an error, exactly
    /// like [`crate::colf::decode`].
    pub fn decode(buf: &[u8]) -> Result<FrameColumns, ColfError> {
        let result = version_of(buf).and_then(|v| match v {
            VERSION_V1 => decode_v1_columns(&buf[5..], false),
            VERSION_V2 => decode_v2_columns(buf, false, false),
            VERSION_V3 => decode_v3_columns(buf, false, false, None),
            v => Err(ColfError::BadVersion(v)),
        });
        Self::tally_decode(&result, buf.len(), "frame.decode.strict_ok");
        result
    }

    /// Lossy decode: salvages every checksummed section that verifies,
    /// defaulting the rest (zeros / zero stripes) and naming them in
    /// [`FrameColumns::lost_sections`]. Paths are the spine — without
    /// them the decode fails, lossy or not. v1 files carry no checksums
    /// and decode strictly, mirroring [`crate::colf::decode_lossy`].
    pub fn decode_lossy(buf: &[u8]) -> Result<FrameColumns, ColfError> {
        let result = version_of(buf).and_then(|v| match v {
            VERSION_V1 => decode_v1_columns(&buf[5..], false),
            VERSION_V2 => decode_v2_columns(buf, true, false),
            VERSION_V3 => decode_v3_columns(buf, true, false, None),
            v => Err(ColfError::BadVersion(v)),
        });
        Self::tally_decode(&result, buf.len(), "frame.decode.lossy_clean");
        result
    }

    /// Like [`FrameColumns::decode_lossy`], but additionally retains the
    /// full per-row stripe lists so [`FrameColumns::into_snapshot`] can
    /// materialize exact records from this same single parse. Use this
    /// when a consumer needs rows (diff-based analyses) *and* the frame;
    /// use the plain variants when only columns are needed.
    pub fn decode_lossy_with_rows(buf: &[u8]) -> Result<FrameColumns, ColfError> {
        let result = version_of(buf).and_then(|v| match v {
            VERSION_V1 => decode_v1_columns(&buf[5..], true),
            VERSION_V2 => decode_v2_columns(buf, true, true),
            VERSION_V3 => decode_v3_columns(buf, true, true, None),
            v => Err(ColfError::BadVersion(v)),
        });
        Self::tally_decode(&result, buf.len(), "frame.decode.lossy_clean");
        result
    }

    /// Lossy decode that pushes `pred` down into the parse and keeps
    /// only matching rows — **late materialization**. On v3 buffers,
    /// zones whose statistics prove no row can match are skipped without
    /// decoding any of their column bytes; v1/v2 buffers (no zones)
    /// decode fully and filter. Row-for-row equivalent to
    /// [`FrameColumns::decode_lossy`] followed by keeping rows where
    /// [`FrameColumns::pred_matches`] holds, including on degraded
    /// buffers. Stripe lists are never retained on this path.
    pub fn decode_pruned(buf: &[u8], pred: &Pred) -> Result<FrameColumns, ColfError> {
        let result = version_of(buf).and_then(|v| match v {
            VERSION_V1 => decode_v1_columns(&buf[5..], false).map(|fc| fc.retain_matching(pred)),
            VERSION_V2 => decode_v2_columns(buf, true, false).map(|fc| fc.retain_matching(pred)),
            VERSION_V3 => decode_v3_columns(buf, true, false, Some(pred)),
            v => Err(ColfError::BadVersion(v)),
        });
        Self::tally_decode(&result, buf.len(), "frame.decode.lossy_clean");
        result
    }

    /// Telemetry accounting shared by the decode entry points. `clean`
    /// is the counter charged on a fully-recovered decode; one with
    /// lost sections is charged to `frame.decode.lossy_degraded` plus
    /// one per-section loss counter.
    fn tally_decode(result: &Result<FrameColumns, ColfError>, bytes: usize, clean: &'static str) {
        let tel = spider_telemetry::global();
        match result {
            Ok(fc) => {
                if fc.lost_sections.is_empty() {
                    tel.incr(clean, 1);
                } else {
                    tel.incr("frame.decode.lossy_degraded", 1);
                    for name in &fc.lost_sections {
                        tel.incr(crate::colf::lost_section_counter(name), 1);
                    }
                }
                tel.incr("frame.decode.bytes", bytes as u64);
                tel.incr("frame.decode.rows", fc.len as u64);
            }
            Err(_) => tel.incr("frame.decode.failed", 1),
        }
    }

    /// Observation day from the header.
    pub fn day(&self) -> u32 {
        self.day
    }

    /// Scan time from the header.
    pub fn taken_at(&self) -> u64 {
        self.taken_at
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the snapshot holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row `i`'s path, borrowed from the arena.
    pub fn path(&self, i: usize) -> &str {
        let span = self.path_offsets[i] as usize..self.path_offsets[i + 1] as usize;
        std::str::from_utf8(&self.path_arena[span]).expect("arena validated at decode")
    }

    /// All paths in row order, borrowed from the arena.
    pub fn paths(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.len).map(move |i| self.path(i))
    }

    /// Total bytes of the path arena (diagnostics and benchmarks).
    pub fn path_arena_len(&self) -> usize {
        self.path_arena.len()
    }

    /// Sections a lossy decode could not recover (empty = clean).
    pub fn lost_sections(&self) -> &[&'static str] {
        &self.lost_sections
    }

    /// True when the full stripe lists were retained, i.e. the columns
    /// came from [`FrameColumns::decode_lossy_with_rows`].
    pub fn has_rows(&self) -> bool {
        self.osts.is_some()
    }

    /// Per-row extension dictionary codes, when this decode recovered
    /// both the v3 `extc` and `zonemap` sections (codes are meaningless
    /// without the dictionary). 0 = no extension.
    pub fn ext_code(&self) -> Option<&[u32]> {
        self.ext_code.as_deref()
    }

    /// The sorted distinct-extension dictionary behind
    /// [`FrameColumns::ext_code`] (empty when codes are absent).
    pub fn ext_dict(&self) -> &[String] {
        &self.ext_dict
    }

    /// Row `i`'s extension under the study's §4.1.3 rule: one
    /// dictionary-code lookup when codes are present, otherwise derived
    /// from the path suffix. The encoder writes codes from the same
    /// rule, so the two agree on any encoder-produced file.
    pub fn ext(&self, i: usize) -> Option<&str> {
        if let Some(codes) = &self.ext_code {
            return match codes[i] {
                0 => None,
                k => Some(&self.ext_dict[k as usize - 1]),
            };
        }
        ext_of_path(self.path(i))
    }

    /// Evaluates a typed predicate against row `i` — the columns-level
    /// reference semantics every pushdown shortcut must reproduce:
    /// inclusive ranges, u16-saturated depth and stripe count, lost
    /// sections observed at their decoded defaults (zeros).
    pub fn pred_matches(&self, pred: &Pred, i: usize) -> bool {
        match pred {
            Pred::Day { lo, hi } => (*lo..=*hi).contains(&self.day),
            Pred::Uid { lo, hi } => (*lo..=*hi).contains(&self.uid[i]),
            Pred::Gid { lo, hi } => (*lo..=*hi).contains(&self.gid[i]),
            Pred::Depth { lo, hi } => {
                (*lo..=*hi).contains(&depth_of_path(self.path(i)).min(ZONE_U16_CAP))
            }
            Pred::Stripes { lo, hi } => {
                (*lo..=*hi).contains(&self.stripe_count[i].min(ZONE_U16_CAP))
            }
            Pred::Mtime { lo, hi } => (*lo..=*hi).contains(&self.mtime[i]),
            Pred::Atime { lo, hi } => (*lo..=*hi).contains(&self.atime[i]),
            Pred::ExtIn(names) => match self.ext(i) {
                Some(e) => names.iter().any(|n| n == e),
                None => false,
            },
            Pred::ExtNone => self.ext(i).is_none(),
            Pred::And(ps) => ps.iter().all(|p| self.pred_matches(p, i)),
            Pred::Or(ps) => ps.iter().any(|p| self.pred_matches(p, i)),
        }
    }

    /// Keeps only rows matching `pred` — the v1/v2 fallback behind
    /// [`FrameColumns::decode_pruned`] (no zones to skip, so: decode
    /// fully, filter, compact).
    fn retain_matching(self, pred: &Pred) -> FrameColumns {
        let sel: Vec<usize> = (0..self.len)
            .filter(|&i| self.pred_matches(pred, i))
            .collect();
        spider_telemetry::global().incr("pushdown.rows_pruned", (self.len - sel.len()) as u64);
        if sel.len() == self.len {
            return self;
        }
        let take32 = |col: &[u32]| sel.iter().map(|&i| col[i]).collect::<Vec<u32>>();
        let take64 = |col: &[u64]| sel.iter().map(|&i| col[i]).collect::<Vec<u64>>();
        let mut path_arena = Vec::new();
        let mut path_offsets = Vec::with_capacity(sel.len() + 1);
        path_offsets.push(0u32);
        for &i in &sel {
            let span = self.path_offsets[i] as usize..self.path_offsets[i + 1] as usize;
            path_arena.extend_from_slice(&self.path_arena[span]);
            path_offsets.push(path_arena.len() as u32);
        }
        FrameColumns {
            day: self.day,
            taken_at: self.taken_at,
            len: sel.len(),
            path_arena,
            path_offsets,
            atime: take64(&self.atime),
            ctime: take64(&self.ctime),
            mtime: take64(&self.mtime),
            ino: take64(&self.ino),
            uid: take32(&self.uid),
            gid: take32(&self.gid),
            mode: take32(&self.mode),
            stripe_count: take32(&self.stripe_count),
            osts: self
                .osts
                .as_ref()
                .map(|lists| sel.iter().map(|&i| lists[i].clone()).collect()),
            ext_code: self.ext_code.as_ref().map(|codes| take32(codes)),
            ext_dict: self.ext_dict,
            lost_sections: self.lost_sections,
        }
    }

    /// Materializes row records from the decoded columns — the single
    /// parse already happened, so this is pure assembly.
    ///
    /// # Panics
    ///
    /// Panics if the columns were decoded without stripe lists (use
    /// [`FrameColumns::decode_lossy_with_rows`]); reconstructing records
    /// with silently emptied stripes would corrupt diff results.
    pub fn into_snapshot(self) -> Result<Snapshot, ColfError> {
        let mut osts = self
            .osts
            .expect("into_snapshot requires decode_lossy_with_rows");
        let records: Vec<SnapshotRecord> = (0..self.len)
            .map(|i| {
                let span = self.path_offsets[i] as usize..self.path_offsets[i + 1] as usize;
                SnapshotRecord {
                    path: std::str::from_utf8(&self.path_arena[span])
                        .expect("arena validated at decode")
                        .to_string(),
                    atime: self.atime[i],
                    ctime: self.ctime[i],
                    mtime: self.mtime[i],
                    uid: self.uid[i],
                    gid: self.gid[i],
                    mode: self.mode[i],
                    ino: self.ino[i],
                    osts: std::mem::take(&mut osts[i]),
                }
            })
            .collect();
        Snapshot::from_sorted(self.day, self.taken_at, records).map_err(ColfError::Unsorted)
    }

    fn empty(day: u32, taken_at: u64, count: usize, keep_rows: bool) -> FrameColumns {
        FrameColumns {
            day,
            taken_at,
            len: count,
            path_arena: Vec::new(),
            path_offsets: vec![0; count + 1],
            atime: vec![0; count],
            ctime: vec![0; count],
            mtime: vec![0; count],
            ino: vec![0; count],
            uid: vec![0; count],
            gid: vec![0; count],
            mode: vec![0; count],
            stripe_count: vec![0; count],
            osts: keep_rows.then(|| vec![Vec::new(); count]),
            ext_code: None,
            ext_dict: Vec::new(),
            lost_sections: Vec::new(),
        }
    }
}

/// Path depth under the paper's counting convention — identical to
/// `SnapshotRecord::depth`.
fn depth_of_path(path: &str) -> u32 {
    path.split('/').filter(|c| !c.is_empty()).count() as u32 + 1
}

/// Extension of a path's final component — identical to
/// `SnapshotRecord::extension`.
fn ext_of_path(path: &str) -> Option<&str> {
    let name = path.rsplit('/').next().unwrap_or(path);
    spider_fsmeta::inode::extension_of(name)
}

// ---- shared path-arena parsing -------------------------------------------

/// Incremental builder for the output path arena. Front-coding state is
/// per zone (the encoder restarts `prev = ""` at every zone boundary);
/// the sorted-path invariant is checked across everything appended,
/// mirroring `Snapshot::from_sorted`.
struct PathAppender {
    arena: Vec<u8>,
    offsets: Vec<u32>,
    /// Start of the last appended path (it always ends at `arena.len()`
    /// because appends are contiguous); valid only when `have_prev`.
    prev_start: usize,
    have_prev: bool,
}

impl PathAppender {
    fn new(capacity_rows: usize) -> PathAppender {
        let mut offsets = Vec::with_capacity(capacity_rows + 1);
        offsets.push(0u32);
        PathAppender {
            arena: Vec::with_capacity(capacity_rows * 16),
            offsets,
            prev_start: 0,
            have_prev: false,
        }
    }

    fn unsorted(&self) -> ColfError {
        ColfError::Unsorted(format!(
            "path at record {} is not greater than its predecessor",
            self.offsets.len() - 1
        ))
    }

    /// Parses one front-coded run of `rows` paths, appending every row.
    ///
    /// The per-row work is two varints, one `extend_from_within` for the
    /// shared prefix and one `extend_from_slice` for the suffix — no
    /// `String` and no clone of the predecessor. Validation matches the
    /// row parser: prefix length bounded by the previous path, suffix
    /// must be UTF-8, and (stricter than the row parser, which would
    /// panic) the shared prefix must end on a character boundary of the
    /// predecessor so every arena span is valid UTF-8.
    fn parse_run(&mut self, buf: &mut &[u8], rows: usize) -> Result<(), ColfError> {
        let mut fc_prev: Option<usize> = None;
        for _ in 0..rows {
            let shared = get_uvarint(buf).ok_or(ColfError::Truncated("path prefix"))? as usize;
            let suffix_len =
                get_uvarint(buf).ok_or(ColfError::Truncated("path suffix len"))? as usize;
            let start = self.arena.len();
            let (fc_start, fc_len) = match fc_prev {
                Some(s) => (s, start - s),
                None => (start, 0),
            };
            if shared > fc_len {
                return Err(ColfError::BadValue("path prefix length"));
            }
            if buf.remaining() < suffix_len {
                return Err(ColfError::Truncated("path suffix"));
            }
            std::str::from_utf8(&buf[..suffix_len])
                .map_err(|_| ColfError::BadValue("path utf-8"))?;
            // A prefix of valid UTF-8 cut at a character boundary is
            // valid UTF-8; a cut mid-character would start the new path
            // with a continuation byte.
            if shared < fc_len && (self.arena[fc_start + shared] & 0xC0) == 0x80 {
                return Err(ColfError::BadValue("path utf-8"));
            }
            self.arena.extend_from_within(fc_start..fc_start + shared);
            self.arena.extend_from_slice(&buf[..suffix_len]);
            buf.advance(suffix_len);
            if self.have_prev {
                let (head, cur) = self.arena.split_at(start);
                if &head[self.prev_start..] >= cur {
                    return Err(self.unsorted());
                }
            }
            self.prev_start = start;
            self.have_prev = true;
            fc_prev = Some(start);
            let end = u32::try_from(self.arena.len())
                .map_err(|_| ColfError::BadValue("path arena size"))?;
            self.offsets.push(end);
        }
        Ok(())
    }

    /// Appends the selected rows of a zone-local scratch arena. The
    /// surviving subsequence of a sorted file is sorted, so the
    /// cross-row check still holds (and still rejects crafted input).
    fn append_selected(
        &mut self,
        scratch_arena: &[u8],
        scratch_offsets: &[u32],
        sel: &[u32],
    ) -> Result<(), ColfError> {
        for &r in sel {
            let span =
                scratch_offsets[r as usize] as usize..scratch_offsets[r as usize + 1] as usize;
            let bytes = &scratch_arena[span];
            if self.have_prev && &self.arena[self.prev_start..] >= bytes {
                return Err(self.unsorted());
            }
            let start = self.arena.len();
            self.arena.extend_from_slice(bytes);
            self.prev_start = start;
            self.have_prev = true;
            let end = u32::try_from(self.arena.len())
                .map_err(|_| ColfError::BadValue("path arena size"))?;
            self.offsets.push(end);
        }
        Ok(())
    }
}

/// Parses the front-coded path section into `(arena, offsets)` — the
/// whole-column entry used by the v1/v2 decoders.
fn parse_paths_arena(buf: &mut &[u8], count: usize) -> Result<(Vec<u8>, Vec<u32>), ColfError> {
    let mut pa = PathAppender::new(count);
    pa.parse_run(buf, count)?;
    Ok((pa.arena, pa.offsets))
}

/// Parses the `osts` section into a stripe-count column, optionally
/// retaining the pair lists. Validation is byte-for-byte the same as the
/// row parser so both readers accept and reject identical inputs.
fn parse_ost_counts(
    buf: &mut &[u8],
    count: usize,
    keep: bool,
) -> Result<(Vec<u32>, Option<OstColumn>), ColfError> {
    let mut counts = Vec::with_capacity(count);
    let mut lists = keep.then(|| Vec::with_capacity(count));
    for _ in 0..count {
        let n = get_uvarint(buf).ok_or(ColfError::Truncated("ost count"))? as usize;
        if n > buf.remaining() + 1 {
            return Err(ColfError::BadValue("ost count"));
        }
        let mut osts = keep.then(|| Vec::with_capacity(n));
        for _ in 0..n {
            let ost = get_uvarint(buf).ok_or(ColfError::Truncated("ost id"))?;
            let obj = get_uvarint(buf).ok_or(ColfError::Truncated("ost object"))?;
            let pair = (
                u16::try_from(ost).map_err(|_| ColfError::BadValue("ost id"))?,
                u32::try_from(obj).map_err(|_| ColfError::BadValue("ost object"))?,
            );
            if let Some(list) = osts.as_mut() {
                list.push(pair);
            }
        }
        // Same wrap as `SnapshotRecord::stripe_count` (`len() as u32`).
        counts.push(n as u32);
        if let (Some(lists), Some(osts)) = (lists.as_mut(), osts) {
            lists.push(osts);
        }
    }
    Ok((counts, lists))
}

enum ParsedColumns {
    Paths(Vec<u8>, Vec<u32>),
    U64(Vec<u64>),
    U32(Vec<u32>),
    Osts(Vec<u32>, Option<OstColumn>),
}

fn parse_section_columns(
    name: &str,
    mut payload: &[u8],
    count: usize,
    keep_rows: bool,
) -> Result<ParsedColumns, ColfError> {
    let buf = &mut payload;
    let parsed = match name {
        "paths" => {
            let (arena, offsets) = parse_paths_arena(buf, count)?;
            ParsedColumns::Paths(arena, offsets)
        }
        "atime" | "ctime" | "mtime" | "ino" => {
            ParsedColumns::U64(parse_anchored(buf, count, "anchored column")?)
        }
        "uid" | "gid" | "mode" => ParsedColumns::U32(parse_plain_u32(buf, count, "plain column")?),
        "osts" => {
            let (counts, lists) = parse_ost_counts(buf, count, keep_rows)?;
            ParsedColumns::Osts(counts, lists)
        }
        _ => unreachable!("unknown section {name}"),
    };
    if buf.has_remaining() {
        // Same misalignment rule as the row reader.
        return Err(ColfError::BadValue("section length"));
    }
    Ok(parsed)
}

fn store_parsed(fc: &mut FrameColumns, name: &'static str, parsed: ParsedColumns) {
    match parsed {
        ParsedColumns::Paths(arena, offsets) => {
            fc.path_arena = arena;
            fc.path_offsets = offsets;
        }
        ParsedColumns::U64(col) => match name {
            "atime" => fc.atime = col,
            "ctime" => fc.ctime = col,
            "mtime" => fc.mtime = col,
            _ => fc.ino = col,
        },
        ParsedColumns::U32(col) => match name {
            "uid" => fc.uid = col,
            "gid" => fc.gid = col,
            _ => fc.mode = col,
        },
        ParsedColumns::Osts(counts, lists) => {
            fc.stripe_count = counts;
            if lists.is_some() {
                fc.osts = lists;
            }
        }
    }
}

fn decode_v2_columns(full: &[u8], lossy: bool, keep_rows: bool) -> Result<FrameColumns, ColfError> {
    let layout = parse_layout(full)?;
    let mut fc = FrameColumns::empty(layout.day, layout.taken_at, layout.count, keep_rows);
    let mut have_paths = false;
    let paths_offset = layout.sections.first().map(|s| s.1).unwrap_or(0);
    for &(name, offset, payload, digest) in &layout.sections {
        let intact = payload.is_some_and(|p| section_digest(p) == digest);
        let parsed = if intact {
            parse_section_columns(
                name,
                payload.expect("intact implies present"),
                layout.count,
                keep_rows,
            )
        } else if payload.is_none() {
            Err(ColfError::Truncated(name))
        } else {
            Err(ColfError::Corrupt {
                section: name,
                offset,
            })
        };
        match parsed {
            Ok(parsed) => {
                if matches!(parsed, ParsedColumns::Paths(..)) {
                    have_paths = true;
                }
                store_parsed(&mut fc, name, parsed);
            }
            Err(e) => {
                if !lossy {
                    return Err(e);
                }
                fc.lost_sections.push(name);
            }
        }
    }
    if !have_paths {
        return Err(ColfError::Corrupt {
            section: "paths",
            offset: paths_offset,
        });
    }
    Ok(fc)
}

fn decode_v1_columns(mut buf: &[u8], keep_rows: bool) -> Result<FrameColumns, ColfError> {
    if buf.remaining() < 4 {
        return Err(ColfError::Truncated("header"));
    }
    let day = buf.get_u32_le();
    let taken_at = get_uvarint(&mut buf).ok_or(ColfError::Truncated("taken_at"))?;
    let count = get_uvarint(&mut buf).ok_or(ColfError::Truncated("count"))? as usize;
    // Same hostile-header preallocation bound as the row reader.
    if count > buf.remaining() / 2 + 1 {
        return Err(ColfError::BadValue("record count"));
    }
    let mut fc = FrameColumns::empty(day, taken_at, count, keep_rows);
    let (arena, offsets) = parse_paths_arena(&mut buf, count)?;
    fc.path_arena = arena;
    fc.path_offsets = offsets;
    fc.atime = parse_anchored(&mut buf, count, "atime")?;
    fc.ctime = parse_anchored(&mut buf, count, "ctime")?;
    fc.mtime = parse_anchored(&mut buf, count, "mtime")?;
    fc.ino = parse_anchored(&mut buf, count, "ino")?;
    fc.uid = parse_plain_u32(&mut buf, count, "uid")?;
    fc.gid = parse_plain_u32(&mut buf, count, "gid")?;
    fc.mode = parse_plain_u32(&mut buf, count, "mode")?;
    let (counts, lists) = parse_ost_counts(&mut buf, count, keep_rows)?;
    fc.stripe_count = counts;
    if lists.is_some() {
        fc.osts = lists;
    }
    Ok(fc)
}

// ---- v3 decoding: zones, zone maps, pushdown ------------------------------

/// Per-zone blob parsers. Each consumes exactly one zone's blob and
/// appends `rows` values; a blob with slack bytes is misaligned with
/// the header's counts — corrupt, not just odd.
fn parse_anchored_zone(
    mut blob: &[u8],
    rows: usize,
    what: &'static str,
    out: &mut Vec<u64>,
) -> Result<(), ColfError> {
    let buf = &mut blob;
    let min = get_uvarint(buf).ok_or(ColfError::Truncated(what))?;
    for _ in 0..rows {
        let delta = get_uvarint(buf).ok_or(ColfError::Truncated(what))?;
        out.push(
            min.checked_add(delta)
                .ok_or(ColfError::BadValue("anchored overflow"))?,
        );
    }
    if buf.has_remaining() {
        return Err(ColfError::BadValue("section length"));
    }
    Ok(())
}

fn parse_plain_u32_zone(
    mut blob: &[u8],
    rows: usize,
    what: &'static str,
    out: &mut Vec<u32>,
) -> Result<(), ColfError> {
    let buf = &mut blob;
    for _ in 0..rows {
        let v = get_uvarint(buf).ok_or(ColfError::Truncated(what))?;
        out.push(u32::try_from(v).map_err(|_| ColfError::BadValue(what))?);
    }
    if buf.has_remaining() {
        return Err(ColfError::BadValue("section length"));
    }
    Ok(())
}

fn parse_codes_zone(
    mut blob: &[u8],
    rows: usize,
    dict_len: usize,
    out: &mut Vec<u32>,
) -> Result<(), ColfError> {
    let buf = &mut blob;
    for _ in 0..rows {
        let v = get_uvarint(buf).ok_or(ColfError::Truncated("extc"))?;
        if v as usize > dict_len {
            return Err(ColfError::BadValue("extc code"));
        }
        out.push(v as u32);
    }
    if buf.has_remaining() {
        return Err(ColfError::BadValue("section length"));
    }
    Ok(())
}

fn parse_ost_zone(
    mut blob: &[u8],
    rows: usize,
    keep: bool,
    out_counts: &mut Vec<u32>,
    out_lists: &mut Option<OstColumn>,
) -> Result<(), ColfError> {
    let buf = &mut blob;
    let (counts, lists) = parse_ost_counts(buf, rows, keep)?;
    if buf.has_remaining() {
        return Err(ColfError::BadValue("section length"));
    }
    out_counts.extend_from_slice(&counts);
    if let (Some(out), Some(lists)) = (out_lists.as_mut(), lists) {
        out.extend(lists);
    }
    Ok(())
}

/// `extc` payload framing: a presence flag, then (when present) the
/// usual zone length table + blobs.
fn parse_extc_framing<'a>(
    payload: &'a [u8],
    n_zones: usize,
) -> Result<Option<Vec<&'a [u8]>>, ColfError> {
    let Some((&flag, rest)) = payload.split_first() else {
        return Err(ColfError::Truncated("extc"));
    };
    match flag {
        0 => {
            if !rest.is_empty() {
                return Err(ColfError::BadValue("section length"));
            }
            Ok(None)
        }
        1 => split_zone_blobs(rest, n_zones, "extc").map(Some),
        _ => Err(ColfError::BadValue("extc flags")),
    }
}

/// Which sections a prepared predicate needs decoded before it can be
/// evaluated row-by-row.
#[derive(Default, Clone, Copy)]
struct Needed {
    paths: bool,
    atime: bool,
    mtime: bool,
    uid: bool,
    gid: bool,
    stripes: bool,
    codes: bool,
}

/// Which zone statistics can legally prune. A lost column section
/// decodes to zeros, so its true min/max would prune rows the full
/// decode (and the closure path) still returns — the trust mask turns
/// those leaves into "may match" at the zone level while row evaluation
/// sees the same zeros the full decode reports. Depth and extension
/// derive from paths (the intact spine), so they only need the zone map
/// itself to be intact.
#[derive(Clone, Copy)]
struct Trust {
    uid: bool,
    gid: bool,
    mtime: bool,
    atime: bool,
    stripes: bool,
}

/// A [`Pred`] compiled against one v3 file: the `Day` leaf folds to a
/// constant, extension leaves resolve to dictionary codes when the
/// dictionary is exact, and every leaf knows how to test a zone's
/// statistics and a single row.
enum PrepPred {
    Const(bool),
    Uid(u32, u32),
    Gid(u32, u32),
    Depth(u32, u32),
    Stripes(u32, u32),
    Mtime(u64, u64),
    Atime(u64, u64),
    /// Row-evaluated on dictionary codes (sorted, 1-based).
    ExtCode(Vec<u32>),
    /// Row-evaluated on path-derived extensions; `prune` carries the
    /// resolved codes for zone-bitmap pruning when the dictionary is
    /// exact even though per-row codes are unavailable.
    ExtName {
        names: Vec<String>,
        prune: Option<Vec<u32>>,
    },
    ExtNone {
        use_codes: bool,
    },
    And(Vec<PrepPred>),
    Or(Vec<PrepPred>),
}

fn prepare(
    pred: &Pred,
    day: u32,
    dict: Option<&ZoneMap>,
    use_codes: bool,
    need: &mut Needed,
) -> PrepPred {
    match pred {
        Pred::Day { lo, hi } => PrepPred::Const((*lo..=*hi).contains(&day)),
        Pred::Uid { lo, hi } => {
            need.uid = true;
            PrepPred::Uid(*lo, *hi)
        }
        Pred::Gid { lo, hi } => {
            need.gid = true;
            PrepPred::Gid(*lo, *hi)
        }
        Pred::Depth { lo, hi } => {
            need.paths = true;
            PrepPred::Depth(*lo, *hi)
        }
        Pred::Stripes { lo, hi } => {
            need.stripes = true;
            PrepPred::Stripes(*lo, *hi)
        }
        Pred::Mtime { lo, hi } => {
            need.mtime = true;
            PrepPred::Mtime(*lo, *hi)
        }
        Pred::Atime { lo, hi } => {
            need.atime = true;
            PrepPred::Atime(*lo, *hi)
        }
        Pred::ExtIn(names) => {
            // Sorted input names against the sorted dictionary produce
            // ascending codes, so row evaluation can binary-search.
            let resolved = dict.map(|zm| {
                names
                    .iter()
                    .filter_map(|n| zm.code_of(n))
                    .collect::<Vec<u32>>()
            });
            // An exact dictionary lists every extension in the file: if
            // none of the wanted names resolved, no row can match.
            if resolved.as_ref().is_some_and(|codes| codes.is_empty()) {
                return PrepPred::Const(false);
            }
            if use_codes {
                need.codes = true;
                PrepPred::ExtCode(resolved.expect("use_codes implies exact dictionary"))
            } else {
                need.paths = true;
                PrepPred::ExtName {
                    names: names.clone(),
                    prune: resolved,
                }
            }
        }
        Pred::ExtNone => {
            if use_codes {
                need.codes = true;
            } else {
                need.paths = true;
            }
            PrepPred::ExtNone { use_codes }
        }
        Pred::And(ps) => PrepPred::And(
            ps.iter()
                .map(|p| prepare(p, day, dict, use_codes, need))
                .collect(),
        ),
        Pred::Or(ps) => PrepPred::Or(
            ps.iter()
                .map(|p| prepare(p, day, dict, use_codes, need))
                .collect(),
        ),
    }
}

fn overlaps32(lo: u32, hi: u32, range: (u32, u32)) -> bool {
    lo <= range.1 && hi >= range.0
}

fn overlaps64(lo: u64, hi: u64, range: (u64, u64)) -> bool {
    lo <= range.1 && hi >= range.0
}

/// Conservative zone test: false only when the statistics *prove* no
/// row in the zone can match.
fn zone_may_match(p: &PrepPred, z: &ZoneStats, t: Trust) -> bool {
    match p {
        PrepPred::Const(b) => *b,
        PrepPred::Uid(lo, hi) => !t.uid || overlaps32(*lo, *hi, z.uid),
        PrepPred::Gid(lo, hi) => !t.gid || overlaps32(*lo, *hi, z.gid),
        PrepPred::Depth(lo, hi) => overlaps32(*lo, *hi, z.depth),
        PrepPred::Stripes(lo, hi) => !t.stripes || overlaps32(*lo, *hi, z.stripes),
        PrepPred::Mtime(lo, hi) => !t.mtime || overlaps64(*lo, *hi, z.mtime),
        PrepPred::Atime(lo, hi) => !t.atime || overlaps64(*lo, *hi, z.atime),
        PrepPred::ExtCode(codes) => codes.iter().any(|&c| z.has_ext_code(c)),
        PrepPred::ExtName { prune, .. } => prune
            .as_ref()
            .is_none_or(|codes| codes.iter().any(|&c| z.has_ext_code(c))),
        PrepPred::ExtNone { .. } => z.has_ext_none,
        PrepPred::And(ps) => ps.iter().all(|p| zone_may_match(p, z, t)),
        PrepPred::Or(ps) => ps.iter().any(|p| zone_may_match(p, z, t)),
    }
}

/// One zone's decoded eval columns. Lost sections stay empty and read
/// as zero — the same defaults the full decode reports.
#[derive(Default)]
struct ZoneScratch {
    arena: Vec<u8>,
    offsets: Vec<u32>,
    have_paths: bool,
    atime: Vec<u64>,
    ctime: Vec<u64>,
    mtime: Vec<u64>,
    ino: Vec<u64>,
    uid: Vec<u32>,
    gid: Vec<u32>,
    mode: Vec<u32>,
    stripes: Vec<u32>,
    codes: Vec<u32>,
}

impl ZoneScratch {
    fn clear(&mut self) {
        self.arena.clear();
        self.offsets.clear();
        self.have_paths = false;
        self.atime.clear();
        self.ctime.clear();
        self.mtime.clear();
        self.ino.clear();
        self.uid.clear();
        self.gid.clear();
        self.mode.clear();
        self.stripes.clear();
        self.codes.clear();
    }

    fn path(&self, i: usize) -> &str {
        let span = self.offsets[i] as usize..self.offsets[i + 1] as usize;
        std::str::from_utf8(&self.arena[span]).expect("scratch arena validated at parse")
    }

    fn get32(col: &[u32], i: usize) -> u32 {
        col.get(i).copied().unwrap_or(0)
    }

    fn get64(col: &[u64], i: usize) -> u64 {
        col.get(i).copied().unwrap_or(0)
    }
}

fn eval_row(p: &PrepPred, s: &ZoneScratch, i: usize) -> bool {
    match p {
        PrepPred::Const(b) => *b,
        PrepPred::Uid(lo, hi) => (*lo..=*hi).contains(&ZoneScratch::get32(&s.uid, i)),
        PrepPred::Gid(lo, hi) => (*lo..=*hi).contains(&ZoneScratch::get32(&s.gid, i)),
        PrepPred::Depth(lo, hi) => {
            (*lo..=*hi).contains(&depth_of_path(s.path(i)).min(ZONE_U16_CAP))
        }
        PrepPred::Stripes(lo, hi) => {
            (*lo..=*hi).contains(&ZoneScratch::get32(&s.stripes, i).min(ZONE_U16_CAP))
        }
        PrepPred::Mtime(lo, hi) => (*lo..=*hi).contains(&ZoneScratch::get64(&s.mtime, i)),
        PrepPred::Atime(lo, hi) => (*lo..=*hi).contains(&ZoneScratch::get64(&s.atime, i)),
        PrepPred::ExtCode(codes) => codes.binary_search(&s.codes[i]).is_ok(),
        PrepPred::ExtName { names, .. } => match ext_of_path(s.path(i)) {
            Some(e) => names.iter().any(|n| n == e),
            None => false,
        },
        PrepPred::ExtNone { use_codes } => {
            if *use_codes {
                s.codes[i] == 0
            } else {
                ext_of_path(s.path(i)).is_none()
            }
        }
        PrepPred::And(ps) => ps.iter().all(|p| eval_row(p, s, i)),
        PrepPred::Or(ps) => ps.iter().any(|p| eval_row(p, s, i)),
    }
}

/// The v3 decoder: integrity-scans all sections, then walks zones. With
/// a predicate, zones are pruned against the zone map and surviving
/// rows late-materialize; without one, every zone appends directly into
/// the output columns.
///
/// Unlike v2 (where a checksum-valid section that fails to *parse* is
/// recoverable per-section), a v3 zone blob that fails to parse aborts
/// the decode even in lossy mode: blobs parse interleaved with output
/// assembly, and an intact checksum over malformed content is encoder
/// error or craft, not line corruption — single-byte corruption can
/// never reach this path past the digests.
pub(crate) fn decode_v3_columns(
    full: &[u8],
    lossy: bool,
    keep_rows: bool,
    pred: Option<&Pred>,
) -> Result<FrameColumns, ColfError> {
    debug_assert!(
        pred.is_none() || !keep_rows,
        "pruned decode never keeps rows"
    );
    let layout = parse_layout(full)?;
    debug_assert_eq!(layout.version, VERSION_V3);
    let count = layout.count;
    let n_zones = layout.n_zones();
    let zone_rows = layout.zone_rows;
    let rows_of = |z: usize| {
        if z + 1 < n_zones {
            zone_rows
        } else {
            count - zone_rows * (n_zones - 1)
        }
    };

    // Integrity scan: verify every section digest, split intact column
    // sections into zone blobs, parse the zone map. Strict mode fails
    // on the first problem; lossy mode records losses and carries on.
    let mut lost: Vec<&'static str> = Vec::new();
    let mut col_zones: Vec<Option<Vec<&[u8]>>> = (0..9).map(|_| None).collect();
    let mut extc_zones: Option<Vec<&[u8]>> = None;
    let mut zonemap: Option<ZoneMap> = None;
    let paths_offset = layout.sections.first().map(|s| s.1).unwrap_or(0);
    for (idx, &(name, offset, payload, digest)) in layout.sections.iter().enumerate() {
        let intact = payload.is_some_and(|p| section_digest(p) == digest);
        if !intact {
            if !lossy {
                return Err(if payload.is_none() {
                    ColfError::Truncated(name)
                } else {
                    ColfError::Corrupt {
                        section: name,
                        offset,
                    }
                });
            }
            lost.push(name);
            continue;
        }
        let p = payload.expect("intact implies present");
        let parsed = match name {
            "extc" => parse_extc_framing(p, n_zones).map(|z| extc_zones = z),
            "zonemap" => parse_zonemap(p, n_zones).map(|zm| zonemap = Some(zm)),
            _ => split_zone_blobs(p, n_zones, name).map(|z| col_zones[idx] = Some(z)),
        };
        if let Err(e) = parsed {
            if !lossy {
                return Err(e);
            }
            lost.push(name);
        }
    }
    if col_zones[0].is_none() {
        return Err(ColfError::Corrupt {
            section: "paths",
            offset: paths_offset,
        });
    }

    // Codes are only usable alongside the (exact) dictionary. An exact=0
    // zone map with a present extc section is not something the encoder
    // produces; strict mode rejects the contradiction.
    let use_codes = matches!((&extc_zones, &zonemap), (Some(_), Some(zm)) if zm.exact);
    if !lossy && extc_zones.is_some() && zonemap.as_ref().is_some_and(|zm| !zm.exact) {
        return Err(ColfError::BadValue("extc flags"));
    }
    let dict_len = zonemap.as_ref().map_or(0, |zm| zm.dict.len());

    let mut fc = FrameColumns {
        day: layout.day,
        taken_at: layout.taken_at,
        len: 0,
        path_arena: Vec::new(),
        path_offsets: vec![0],
        atime: Vec::new(),
        ctime: Vec::new(),
        mtime: Vec::new(),
        ino: Vec::new(),
        uid: Vec::new(),
        gid: Vec::new(),
        mode: Vec::new(),
        stripe_count: Vec::new(),
        osts: None,
        ext_code: None,
        ext_dict: if use_codes {
            zonemap
                .as_ref()
                .expect("use_codes implies map")
                .dict
                .clone()
        } else {
            Vec::new()
        },
        lost_sections: lost,
    };

    match pred {
        None => decode_v3_full(
            &mut fc,
            &col_zones,
            &extc_zones,
            use_codes,
            dict_len,
            count,
            n_zones,
            rows_of,
            keep_rows,
        )?,
        Some(pred) => decode_v3_pruned(
            &mut fc,
            &col_zones,
            &extc_zones,
            zonemap.as_ref(),
            use_codes,
            dict_len,
            count,
            n_zones,
            rows_of,
            pred,
        )?,
    }
    Ok(fc)
}

/// Full (non-pruned) v3 decode: append every zone of every intact
/// section straight into the output columns; lost sections default.
#[allow(clippy::too_many_arguments)]
fn decode_v3_full(
    fc: &mut FrameColumns,
    col_zones: &[Option<Vec<&[u8]>>],
    extc_zones: &Option<Vec<&[u8]>>,
    use_codes: bool,
    dict_len: usize,
    count: usize,
    n_zones: usize,
    rows_of: impl Fn(usize) -> usize,
    keep_rows: bool,
) -> Result<(), ColfError> {
    let mut pa = PathAppender::new(count);
    for (z, blob) in col_zones[0]
        .as_ref()
        .expect("paths checked")
        .iter()
        .enumerate()
    {
        let mut b = *blob;
        pa.parse_run(&mut b, rows_of(z))?;
        if b.has_remaining() {
            return Err(ColfError::BadValue("section length"));
        }
    }
    fc.path_arena = pa.arena;
    fc.path_offsets = pa.offsets;

    let build_u64 = |zones: &Option<Vec<&[u8]>>, what| -> Result<Vec<u64>, ColfError> {
        match zones {
            Some(blobs) => {
                let mut out = Vec::with_capacity(count);
                for (z, blob) in blobs.iter().enumerate() {
                    parse_anchored_zone(blob, rows_of(z), what, &mut out)?;
                }
                Ok(out)
            }
            None => Ok(vec![0; count]),
        }
    };
    fc.atime = build_u64(&col_zones[1], "atime")?;
    fc.ctime = build_u64(&col_zones[2], "ctime")?;
    fc.mtime = build_u64(&col_zones[3], "mtime")?;
    fc.ino = build_u64(&col_zones[4], "ino")?;

    let build_u32 = |zones: &Option<Vec<&[u8]>>, what| -> Result<Vec<u32>, ColfError> {
        match zones {
            Some(blobs) => {
                let mut out = Vec::with_capacity(count);
                for (z, blob) in blobs.iter().enumerate() {
                    parse_plain_u32_zone(blob, rows_of(z), what, &mut out)?;
                }
                Ok(out)
            }
            None => Ok(vec![0; count]),
        }
    };
    fc.uid = build_u32(&col_zones[5], "uid")?;
    fc.gid = build_u32(&col_zones[6], "gid")?;
    fc.mode = build_u32(&col_zones[7], "mode")?;

    let mut counts = Vec::with_capacity(count);
    let mut lists = keep_rows.then(Vec::new);
    match &col_zones[8] {
        Some(blobs) => {
            for (z, blob) in blobs.iter().enumerate() {
                parse_ost_zone(blob, rows_of(z), keep_rows, &mut counts, &mut lists)?;
            }
        }
        None => {
            counts = vec![0; count];
            lists = keep_rows.then(|| vec![Vec::new(); count]);
        }
    }
    fc.stripe_count = counts;
    fc.osts = lists;

    if use_codes {
        let blobs = extc_zones.as_ref().expect("use_codes implies extc");
        let mut codes = Vec::with_capacity(count);
        for (z, blob) in blobs.iter().enumerate() {
            parse_codes_zone(blob, rows_of(z), dict_len, &mut codes)?;
        }
        fc.ext_code = Some(codes);
    }
    debug_assert!(n_zones > 0 || count == 0);
    fc.len = count;
    Ok(())
}

/// Pruned v3 decode: test each zone against the zone map, evaluate the
/// predicate on surviving zones' eval columns, append only matching
/// rows. Column blobs of pruned zones — and of all non-eval columns in
/// zones where nothing matched — are never decoded.
#[allow(clippy::too_many_arguments)]
fn decode_v3_pruned(
    fc: &mut FrameColumns,
    col_zones: &[Option<Vec<&[u8]>>],
    extc_zones: &Option<Vec<&[u8]>>,
    zonemap: Option<&ZoneMap>,
    use_codes: bool,
    dict_len: usize,
    count: usize,
    n_zones: usize,
    rows_of: impl Fn(usize) -> usize,
    pred: &Pred,
) -> Result<(), ColfError> {
    let mut need = Needed::default();
    let dict_for_codes = zonemap.filter(|zm| zm.exact);
    let prep = prepare(pred, fc.day, dict_for_codes, use_codes, &mut need);
    let trust = Trust {
        uid: col_zones[5].is_some(),
        gid: col_zones[6].is_some(),
        mtime: col_zones[3].is_some(),
        atime: col_zones[1].is_some(),
        stripes: col_zones[8].is_some(),
    };
    // Blobs a full decode would have parsed: every intact column section
    // plus extc when its codes are in use.
    let blobs_per_zone = col_zones.iter().filter(|z| z.is_some()).count() + usize::from(use_codes);

    let mut pa = PathAppender::new(count.min(1024));
    let mut out_codes: Vec<u32> = Vec::new();
    let mut scratch = ZoneScratch::default();
    let mut sel: Vec<u32> = Vec::new();
    let mut zones_skipped = 0u64;
    let mut sections_skipped = 0u64;

    for z in 0..n_zones {
        let rows = rows_of(z);
        // Zone-map pruning: sound only while the zone map itself is
        // intact; a lost map means no zone is ever skipped.
        if let Some(zm) = zonemap {
            if !zone_may_match(&prep, &zm.zones[z], trust) {
                zones_skipped += 1;
                sections_skipped += blobs_per_zone as u64;
                continue;
            }
        }

        scratch.clear();
        let mut parsed_blobs = 0usize;
        let mut parse_paths_scratch =
            |s: &mut ZoneScratch, parsed: &mut usize| -> Result<(), ColfError> {
                if !s.have_paths {
                    let blob = col_zones[0].as_ref().expect("paths checked")[z];
                    let mut b = blob;
                    let mut zpa = PathAppender::new(rows);
                    zpa.parse_run(&mut b, rows)?;
                    if b.has_remaining() {
                        return Err(ColfError::BadValue("section length"));
                    }
                    s.arena = std::mem::take(&mut zpa.arena);
                    s.offsets = std::mem::take(&mut zpa.offsets);
                    s.have_paths = true;
                    *parsed += 1;
                }
                Ok(())
            };

        // Decode just the columns the predicate reads, evaluate, select.
        if need.paths {
            parse_paths_scratch(&mut scratch, &mut parsed_blobs)?;
        }
        if need.atime {
            if let Some(blobs) = &col_zones[1] {
                parse_anchored_zone(blobs[z], rows, "atime", &mut scratch.atime)?;
                parsed_blobs += 1;
            }
        }
        if need.mtime {
            if let Some(blobs) = &col_zones[3] {
                parse_anchored_zone(blobs[z], rows, "mtime", &mut scratch.mtime)?;
                parsed_blobs += 1;
            }
        }
        if need.uid {
            if let Some(blobs) = &col_zones[5] {
                parse_plain_u32_zone(blobs[z], rows, "uid", &mut scratch.uid)?;
                parsed_blobs += 1;
            }
        }
        if need.gid {
            if let Some(blobs) = &col_zones[6] {
                parse_plain_u32_zone(blobs[z], rows, "gid", &mut scratch.gid)?;
                parsed_blobs += 1;
            }
        }
        if need.stripes {
            if let Some(blobs) = &col_zones[8] {
                let mut none = None;
                parse_ost_zone(blobs[z], rows, false, &mut scratch.stripes, &mut none)?;
                parsed_blobs += 1;
            }
        }
        if need.codes {
            let blobs = extc_zones.as_ref().expect("need.codes implies use_codes");
            parse_codes_zone(blobs[z], rows, dict_len, &mut scratch.codes)?;
            parsed_blobs += 1;
        }

        sel.clear();
        sel.extend((0..rows as u32).filter(|&i| eval_row(&prep, &scratch, i as usize)));
        if sel.is_empty() {
            sections_skipped += (blobs_per_zone - parsed_blobs) as u64;
            continue;
        }

        // Late materialization: decode the remaining columns of this
        // zone and append only the surviving rows.
        parse_paths_scratch(&mut scratch, &mut parsed_blobs)?;
        if scratch.atime.is_empty() {
            if let Some(blobs) = &col_zones[1] {
                parse_anchored_zone(blobs[z], rows, "atime", &mut scratch.atime)?;
            }
        }
        if let Some(blobs) = &col_zones[2] {
            parse_anchored_zone(blobs[z], rows, "ctime", &mut scratch.ctime)?;
        }
        if scratch.mtime.is_empty() {
            if let Some(blobs) = &col_zones[3] {
                parse_anchored_zone(blobs[z], rows, "mtime", &mut scratch.mtime)?;
            }
        }
        if let Some(blobs) = &col_zones[4] {
            parse_anchored_zone(blobs[z], rows, "ino", &mut scratch.ino)?;
        }
        if scratch.uid.is_empty() {
            if let Some(blobs) = &col_zones[5] {
                parse_plain_u32_zone(blobs[z], rows, "uid", &mut scratch.uid)?;
            }
        }
        if scratch.gid.is_empty() {
            if let Some(blobs) = &col_zones[6] {
                parse_plain_u32_zone(blobs[z], rows, "gid", &mut scratch.gid)?;
            }
        }
        if let Some(blobs) = &col_zones[7] {
            parse_plain_u32_zone(blobs[z], rows, "mode", &mut scratch.mode)?;
        }
        if scratch.stripes.is_empty() {
            if let Some(blobs) = &col_zones[8] {
                let mut none = None;
                parse_ost_zone(blobs[z], rows, false, &mut scratch.stripes, &mut none)?;
            }
        }
        if use_codes && scratch.codes.is_empty() {
            let blobs = extc_zones.as_ref().expect("use_codes implies extc");
            parse_codes_zone(blobs[z], rows, dict_len, &mut scratch.codes)?;
        }

        pa.append_selected(&scratch.arena, &scratch.offsets, &sel)?;
        for &r in &sel {
            let i = r as usize;
            fc.atime.push(ZoneScratch::get64(&scratch.atime, i));
            fc.ctime.push(ZoneScratch::get64(&scratch.ctime, i));
            fc.mtime.push(ZoneScratch::get64(&scratch.mtime, i));
            fc.ino.push(ZoneScratch::get64(&scratch.ino, i));
            fc.uid.push(ZoneScratch::get32(&scratch.uid, i));
            fc.gid.push(ZoneScratch::get32(&scratch.gid, i));
            fc.mode.push(ZoneScratch::get32(&scratch.mode, i));
            fc.stripe_count
                .push(ZoneScratch::get32(&scratch.stripes, i));
            if use_codes {
                out_codes.push(scratch.codes[i]);
            }
        }
    }

    fc.len = pa.offsets.len() - 1;
    fc.path_arena = pa.arena;
    fc.path_offsets = pa.offsets;
    if use_codes {
        fc.ext_code = Some(out_codes);
    }
    let tel = spider_telemetry::global();
    tel.incr("pushdown.zones_skipped", zones_skipped);
    tel.incr("pushdown.sections_skipped", sections_skipped);
    tel.incr("pushdown.rows_pruned", (count - fc.len) as u64);
    Ok(())
}

// Referenced by the module docs and kept as a compile-time guarantee
// that the v3 integrity scan's fixed indices line up with the format.
const _: () = assert!(SECTION_NAMES_V3.len() == 11);

/// Convenience twin of [`crate::colf::section_table`] re-exported here so fast
/// path consumers can target test corruption without importing `colf`.
pub use crate::colf::section_table;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colf::{decode, decode_lossy, encode, encode_v1, encode_v2, encode_with_zone_rows};

    fn sample_snapshot(n: usize) -> Snapshot {
        let records: Vec<SnapshotRecord> = (0..n)
            .map(|i| SnapshotRecord {
                path: format!("/lustre/atlas1/proj{:03}/αβ{:02}/f.{:06}", i % 5, i % 11, i),
                atime: 1_460_000_000 + i as u64 * 31,
                ctime: 1_450_000_000 + i as u64 * 7,
                mtime: 1_450_000_000 + i as u64 * 17,
                uid: 10_000 + (i % 40) as u32,
                gid: 2_000 + (i % 16) as u32,
                mode: if i % 9 == 0 { 0o040770 } else { 0o100664 },
                ino: 5_000_000 + i as u64,
                osts: if i % 9 == 0 {
                    vec![]
                } else {
                    (0..(i % 5)).map(|k| (k as u16, (i + k) as u32)).collect()
                },
            })
            .collect();
        Snapshot::new(21, 1_423_000_000, records)
    }

    fn assert_matches_rows(cols: &FrameColumns, snap: &Snapshot) {
        assert_eq!(cols.day(), snap.day());
        assert_eq!(cols.taken_at(), snap.taken_at());
        assert_eq!(cols.len(), snap.len());
        for (i, r) in snap.records().iter().enumerate() {
            assert_eq!(cols.path(i), r.path, "row {i}");
            assert_eq!(cols.atime[i], r.atime);
            assert_eq!(cols.ctime[i], r.ctime);
            assert_eq!(cols.mtime[i], r.mtime);
            assert_eq!(cols.ino[i], r.ino);
            assert_eq!(cols.uid[i], r.uid);
            assert_eq!(cols.gid[i], r.gid);
            assert_eq!(cols.mode[i], r.mode);
            assert_eq!(cols.stripe_count[i], r.stripe_count());
        }
    }

    #[test]
    fn columns_match_rows_v3() {
        let snap = sample_snapshot(200);
        let bytes = encode(&snap);
        let cols = FrameColumns::decode(&bytes).unwrap();
        assert_matches_rows(&cols, &snap);
        assert!(cols.lost_sections().is_empty());
        assert!(!cols.has_rows());
        assert!(cols.ext_code().is_some());
    }

    #[test]
    fn columns_match_rows_v2() {
        let snap = sample_snapshot(200);
        let bytes = encode_v2(&snap);
        let cols = FrameColumns::decode(&bytes).unwrap();
        assert_matches_rows(&cols, &snap);
        assert!(cols.lost_sections().is_empty());
        assert!(cols.ext_code().is_none());
    }

    #[test]
    fn columns_match_rows_v1() {
        let snap = sample_snapshot(80);
        let bytes = encode_v1(&snap);
        let cols = FrameColumns::decode(&bytes).unwrap();
        assert_matches_rows(&cols, &snap);
    }

    #[test]
    fn empty_snapshot_decodes() {
        let snap = Snapshot::new(0, 0, vec![]);
        let cols = FrameColumns::decode(&encode(&snap)).unwrap();
        assert!(cols.is_empty());
        assert_eq!(cols.paths().count(), 0);
    }

    #[test]
    fn arena_is_front_coded_not_cloned() {
        // The arena holds full paths (offsets are per-path spans), so its
        // size equals the sum of path lengths — not the compressed size —
        // but with zero per-row allocations.
        let snap = sample_snapshot(50);
        let cols = FrameColumns::decode(&encode(&snap)).unwrap();
        let total: usize = snap.records().iter().map(|r| r.path.len()).sum();
        assert_eq!(cols.path_arena_len(), total);
    }

    #[test]
    fn into_snapshot_roundtrips_exactly() {
        let snap = sample_snapshot(120);
        for bytes in [encode(&snap), encode_v2(&snap)] {
            let cols = FrameColumns::decode_lossy_with_rows(&bytes).unwrap();
            assert!(cols.has_rows());
            assert_eq!(cols.into_snapshot().unwrap(), snap);
        }
    }

    #[test]
    #[should_panic(expected = "into_snapshot requires decode_lossy_with_rows")]
    fn into_snapshot_without_rows_panics() {
        let bytes = encode(&sample_snapshot(3));
        let cols = FrameColumns::decode(&bytes).unwrap();
        let _ = cols.into_snapshot();
    }

    #[test]
    fn lossy_corrupt_osts_defaults_stripes() {
        let snap = sample_snapshot(60);
        for bytes in [encode(&snap), encode_v2(&snap)] {
            let spans = section_table(&bytes).unwrap();
            let osts = spans.iter().find(|s| s.name == "osts").unwrap();
            let mut corrupted = bytes.clone();
            corrupted[osts.offset + osts.len / 2] ^= 0xFF;

            assert!(matches!(
                FrameColumns::decode(&corrupted),
                Err(ColfError::Corrupt {
                    section: "osts",
                    ..
                })
            ));
            let cols = FrameColumns::decode_lossy(&corrupted).unwrap();
            assert_eq!(cols.lost_sections(), ["osts"]);
            assert!(cols.stripe_count.iter().all(|&c| c == 0));
            // Everything else matches the row reader's lossy salvage.
            let lossy = decode_lossy(&corrupted).unwrap();
            assert_matches_rows_lossy(&cols, &lossy.snapshot);
        }
    }

    fn assert_matches_rows_lossy(cols: &FrameColumns, snap: &Snapshot) {
        assert_eq!(cols.len(), snap.len());
        for (i, r) in snap.records().iter().enumerate() {
            assert_eq!(cols.path(i), r.path);
            assert_eq!(cols.atime[i], r.atime);
            assert_eq!(cols.mode[i], r.mode);
            assert_eq!(cols.stripe_count[i], r.stripe_count());
        }
    }

    #[test]
    fn corrupt_paths_is_unrecoverable() {
        let snap = sample_snapshot(30);
        for bytes in [encode(&snap), encode_v2(&snap)] {
            let spans = section_table(&bytes).unwrap();
            let paths = spans.iter().find(|s| s.name == "paths").unwrap();
            let mut corrupted = bytes.clone();
            corrupted[paths.offset + 2] ^= 0xFF;
            assert!(FrameColumns::decode(&corrupted).is_err());
            assert!(FrameColumns::decode_lossy(&corrupted).is_err());
        }
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        for bytes in [
            encode(&sample_snapshot(20)),
            encode_v2(&sample_snapshot(20)),
            encode_v1(&sample_snapshot(20)),
        ] {
            for cut in 0..bytes.len() {
                assert!(
                    FrameColumns::decode(&bytes[..cut]).is_err(),
                    "cut at {cut} decoded successfully"
                );
            }
        }
    }

    #[test]
    fn strictness_agrees_with_row_reader_under_mutation() {
        // On every single-byte corruption, the two strict readers must
        // agree on acceptance, and both lossy readers must agree on what
        // was lost. (The columns reader additionally rejects a handful
        // of inputs where the row reader would panic on a mid-character
        // front-coding prefix; checksums keep those unreachable here.)
        let snap = sample_snapshot(30);
        for bytes in [encode(&snap), encode_v2(&snap)] {
            for pos in (0..bytes.len()).step_by(3) {
                let mut mutated = bytes.clone();
                mutated[pos] ^= 0x41;
                let row = decode(&mutated);
                let col = FrameColumns::decode(&mutated);
                assert_eq!(
                    row.is_ok(),
                    col.is_ok(),
                    "strict disagreement at byte {pos}"
                );
                match (decode_lossy(&mutated), FrameColumns::decode_lossy(&mutated)) {
                    (Ok(r), Ok(c)) => {
                        assert_eq!(r.lost_sections, c.lost_sections, "at byte {pos}");
                        assert_matches_rows_lossy(&c, &r.snapshot);
                    }
                    (Err(_), Err(_)) => {}
                    (r, c) => panic!(
                        "lossy disagreement at byte {pos}: row {:?} vs columns {:?}",
                        r.is_ok(),
                        c.is_ok()
                    ),
                }
            }
        }
    }

    #[test]
    fn unsorted_paths_rejected() {
        // Hand-roll a v1 buffer with out-of-order paths (the encoders
        // can't produce one — `Snapshot::new` sorts): the arena parser
        // must reject it like `Snapshot::from_sorted` does.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"COLF");
        buf.push(crate::colf::VERSION_V1);
        buf.extend_from_slice(&0u32.to_le_bytes()); // day
        buf.push(0); // taken_at
        buf.push(2); // count
        for path in ["/b", "/a"] {
            buf.push(0); // shared
            buf.push(path.len() as u8);
            buf.extend_from_slice(path.as_bytes());
        }
        // The parser fails on ordering before reaching later columns.
        assert!(matches!(
            FrameColumns::decode(&buf),
            Err(ColfError::Unsorted(_))
        ));
    }

    // ---- pushdown / late materialization ---------------------------------

    fn sample_preds() -> Vec<Pred> {
        vec![
            Pred::uid(10_000..=10_009),
            Pred::and(vec![
                Pred::gid(2_000..=2_003),
                Pred::mtime(..=1_450_001_000u64),
            ]),
            Pred::or(vec![Pred::ext("000003"), Pred::ext_none()]),
            Pred::and(vec![Pred::day(21..=21), Pred::stripes(1..)]),
            Pred::day(0..=5), // prunes the whole file
            Pred::depth(..=4),
            Pred::ext_in(["000001", "000007", "nope"]),
            Pred::or(vec![]),  // matches nothing
            Pred::and(vec![]), // matches everything
        ]
    }

    fn assert_pruned_equals_filtered(bytes: &[u8], pred: &Pred) {
        let full = FrameColumns::decode_lossy(bytes).unwrap();
        let pruned = FrameColumns::decode_pruned(bytes, pred).unwrap();
        let expect: Vec<usize> = (0..full.len())
            .filter(|&i| full.pred_matches(pred, i))
            .collect();
        assert_eq!(pruned.len(), expect.len(), "{pred:?}");
        for (j, &i) in expect.iter().enumerate() {
            assert_eq!(pruned.path(j), full.path(i), "{pred:?} row {j}");
            assert_eq!(pruned.atime[j], full.atime[i]);
            assert_eq!(pruned.ctime[j], full.ctime[i]);
            assert_eq!(pruned.mtime[j], full.mtime[i]);
            assert_eq!(pruned.ino[j], full.ino[i]);
            assert_eq!(pruned.uid[j], full.uid[i]);
            assert_eq!(pruned.gid[j], full.gid[i]);
            assert_eq!(pruned.mode[j], full.mode[i]);
            assert_eq!(pruned.stripe_count[j], full.stripe_count[i]);
            assert_eq!(pruned.ext(j), full.ext(i));
        }
    }

    #[test]
    fn pushdown_matches_row_filter_across_versions() {
        let snap = sample_snapshot(150);
        let encodings = [
            encode_with_zone_rows(&snap, 16),
            encode(&snap),
            encode_v2(&snap),
            encode_v1(&snap),
        ];
        for bytes in &encodings {
            for pred in sample_preds() {
                assert_pruned_equals_filtered(bytes, &pred);
            }
        }
        // The columns evaluator agrees with the record-level oracle.
        let full = FrameColumns::decode_lossy(&encodings[0]).unwrap();
        for pred in sample_preds() {
            for (i, r) in snap.records().iter().enumerate() {
                assert_eq!(
                    full.pred_matches(&pred, i),
                    pred.matches_record(r, snap.day()),
                    "{pred:?} row {i}"
                );
            }
        }
    }

    #[test]
    fn pruned_decode_is_right_under_any_single_section_corruption() {
        // Zone maps are advisory: whatever sections corruption takes
        // out, a pruned decode must return exactly the filtered rows of
        // the (equally degraded) full decode — never a wrong answer.
        let snap = sample_snapshot(150);
        let bytes = encode_with_zone_rows(&snap, 16);
        let spans = section_table(&bytes).unwrap();
        for span in &spans {
            if matches!(span.name, "header" | "section-table" | "paths") {
                continue;
            }
            let mut corrupted = bytes.clone();
            corrupted[span.offset + span.len / 2] ^= 0xFF;
            assert!(FrameColumns::decode_lossy(&corrupted).is_ok());
            for pred in sample_preds() {
                assert_pruned_equals_filtered(&corrupted, &pred);
            }
        }
    }

    #[test]
    fn ext_codes_agree_with_path_derivation() {
        let snap = sample_snapshot(90);
        let cols = FrameColumns::decode(&encode(&snap)).unwrap();
        assert!(cols.ext_code().is_some());
        assert!(!cols.ext_dict().is_empty());
        for (i, r) in snap.records().iter().enumerate() {
            assert_eq!(cols.ext(i), r.extension(), "row {i}");
        }
    }
}
