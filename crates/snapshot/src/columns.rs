//! Zero-rehydration column views over `colf` bytes — the fast path from
//! disk to a columnar frame.
//!
//! [`crate::colf::decode`] materializes one [`crate::SnapshotRecord`] per
//! inode (a heap `String` path plus a per-row stripe `Vec`) only for the
//! analysis layer to immediately re-transpose those rows into dense
//! columns. That round trip through rows is the eager-row anti-pattern
//! the study's Parquet conversion exists to avoid (§2.2): at a billion
//! inodes you never rehydrate rows you don't need.
//!
//! [`FrameColumns`] decodes a `colf` buffer (v1 or v2) straight into
//! column vectors in a single parse:
//!
//! * **paths** land in one contiguous byte **arena** plus an offset
//!   table — no per-row `String`, no per-row clone of the front-coding
//!   predecessor; row `i`'s path is `arena[offsets[i]..offsets[i+1]]`;
//! * integer columns decode directly into `Vec<u64>` / `Vec<u32>`;
//! * the `osts` section is reduced to a **stripe-count column** while it
//!   is parsed — the per-row `(ost, object)` lists are retained only
//!   when rows will actually be needed ([`FrameColumns::decode_lossy_with_rows`]),
//!   in which case [`FrameColumns::into_snapshot`] materializes records
//!   from the same single parse.
//!
//! Corruption semantics mirror the row reader exactly: strict decoding
//! fails on any checksum mismatch, lossy decoding salvages every intact
//! section and reports the rest in [`FrameColumns::lost_sections`]
//! (paths remain the unrecoverable spine). The equivalence suite in
//! `spider-core` holds the two readers bit-identical, including on
//! corrupt-section fixtures.

use crate::colf::{
    parse_anchored, parse_layout, parse_plain_u32, version_of, ColfError, OstColumn, VERSION,
    VERSION_V1,
};
use crate::record::SnapshotRecord;
use crate::snapshot::Snapshot;
use crate::varint::get_uvarint;
use crate::xxh::section_digest;
use bytes::Buf;

/// Decoded columns of one snapshot, never materialized as rows.
#[derive(Debug, Clone)]
pub struct FrameColumns {
    day: u32,
    taken_at: u64,
    len: usize,
    /// All paths, concatenated; see `path_offsets`.
    path_arena: Vec<u8>,
    /// `len + 1` offsets into the arena; path `i` spans
    /// `path_arena[path_offsets[i]..path_offsets[i + 1]]`.
    path_offsets: Vec<u32>,
    /// Last-access times.
    pub atime: Vec<u64>,
    /// Status-change times.
    pub ctime: Vec<u64>,
    /// Modification times.
    pub mtime: Vec<u64>,
    /// Inode numbers.
    pub ino: Vec<u64>,
    /// Owner uids.
    pub uid: Vec<u32>,
    /// Owner gids.
    pub gid: Vec<u32>,
    /// Full mode words.
    pub mode: Vec<u32>,
    /// Stripe counts (0 for directories), derived while the `osts`
    /// section is parsed — the pair lists themselves are not retained
    /// unless rows were requested.
    pub stripe_count: Vec<u32>,
    /// Full `(ost, object)` lists, present only for
    /// [`FrameColumns::decode_lossy_with_rows`].
    osts: Option<OstColumn>,
    /// Sections dropped by a lossy decode (empty = full recovery).
    lost_sections: Vec<&'static str>,
}

impl FrameColumns {
    /// Strictly decodes a `colf` buffer (v1 or v2) into column views.
    /// Any corrupt or truncated section is an error, exactly like
    /// [`crate::colf::decode`].
    pub fn decode(buf: &[u8]) -> Result<FrameColumns, ColfError> {
        let result = version_of(buf).and_then(|v| match v {
            VERSION_V1 => decode_v1_columns(&buf[5..], false),
            VERSION => decode_v2_columns(buf, false, false),
            v => Err(ColfError::BadVersion(v)),
        });
        Self::tally_decode(&result, buf.len(), "frame.decode.strict_ok");
        result
    }

    /// Lossy decode: salvages every checksummed section that verifies,
    /// defaulting the rest (zeros / zero stripes) and naming them in
    /// [`FrameColumns::lost_sections`]. Paths are the spine — without
    /// them the decode fails, lossy or not. v1 files carry no checksums
    /// and decode strictly, mirroring [`crate::colf::decode_lossy`].
    pub fn decode_lossy(buf: &[u8]) -> Result<FrameColumns, ColfError> {
        let result = version_of(buf).and_then(|v| match v {
            VERSION_V1 => decode_v1_columns(&buf[5..], false),
            VERSION => decode_v2_columns(buf, true, false),
            v => Err(ColfError::BadVersion(v)),
        });
        Self::tally_decode(&result, buf.len(), "frame.decode.lossy_clean");
        result
    }

    /// Like [`FrameColumns::decode_lossy`], but additionally retains the
    /// full per-row stripe lists so [`FrameColumns::into_snapshot`] can
    /// materialize exact records from this same single parse. Use this
    /// when a consumer needs rows (diff-based analyses) *and* the frame;
    /// use the plain variants when only columns are needed.
    pub fn decode_lossy_with_rows(buf: &[u8]) -> Result<FrameColumns, ColfError> {
        let result = version_of(buf).and_then(|v| match v {
            VERSION_V1 => decode_v1_columns(&buf[5..], true),
            VERSION => decode_v2_columns(buf, true, true),
            v => Err(ColfError::BadVersion(v)),
        });
        Self::tally_decode(&result, buf.len(), "frame.decode.lossy_clean");
        result
    }

    /// Telemetry accounting shared by the three decode entry points.
    /// `clean` is the counter charged on a fully-recovered decode; one
    /// with lost sections is charged to `frame.decode.lossy_degraded`
    /// plus one per-section loss counter.
    fn tally_decode(result: &Result<FrameColumns, ColfError>, bytes: usize, clean: &'static str) {
        let tel = spider_telemetry::global();
        match result {
            Ok(fc) => {
                if fc.lost_sections.is_empty() {
                    tel.incr(clean, 1);
                } else {
                    tel.incr("frame.decode.lossy_degraded", 1);
                    for name in &fc.lost_sections {
                        tel.incr(crate::colf::lost_section_counter(name), 1);
                    }
                }
                tel.incr("frame.decode.bytes", bytes as u64);
                tel.incr("frame.decode.rows", fc.len as u64);
            }
            Err(_) => tel.incr("frame.decode.failed", 1),
        }
    }

    /// Observation day from the header.
    pub fn day(&self) -> u32 {
        self.day
    }

    /// Scan time from the header.
    pub fn taken_at(&self) -> u64 {
        self.taken_at
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the snapshot holds no records.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Row `i`'s path, borrowed from the arena.
    pub fn path(&self, i: usize) -> &str {
        let span = self.path_offsets[i] as usize..self.path_offsets[i + 1] as usize;
        std::str::from_utf8(&self.path_arena[span]).expect("arena validated at decode")
    }

    /// All paths in row order, borrowed from the arena.
    pub fn paths(&self) -> impl Iterator<Item = &str> + '_ {
        (0..self.len).map(move |i| self.path(i))
    }

    /// Total bytes of the path arena (diagnostics and benchmarks).
    pub fn path_arena_len(&self) -> usize {
        self.path_arena.len()
    }

    /// Sections a lossy decode could not recover (empty = clean).
    pub fn lost_sections(&self) -> &[&'static str] {
        &self.lost_sections
    }

    /// True when the full stripe lists were retained, i.e. the columns
    /// came from [`FrameColumns::decode_lossy_with_rows`].
    pub fn has_rows(&self) -> bool {
        self.osts.is_some()
    }

    /// Materializes row records from the decoded columns — the single
    /// parse already happened, so this is pure assembly.
    ///
    /// # Panics
    ///
    /// Panics if the columns were decoded without stripe lists (use
    /// [`FrameColumns::decode_lossy_with_rows`]); reconstructing records
    /// with silently emptied stripes would corrupt diff results.
    pub fn into_snapshot(self) -> Result<Snapshot, ColfError> {
        let mut osts = self
            .osts
            .expect("into_snapshot requires decode_lossy_with_rows");
        let records: Vec<SnapshotRecord> = (0..self.len)
            .map(|i| {
                let span = self.path_offsets[i] as usize..self.path_offsets[i + 1] as usize;
                SnapshotRecord {
                    path: std::str::from_utf8(&self.path_arena[span])
                        .expect("arena validated at decode")
                        .to_string(),
                    atime: self.atime[i],
                    ctime: self.ctime[i],
                    mtime: self.mtime[i],
                    uid: self.uid[i],
                    gid: self.gid[i],
                    mode: self.mode[i],
                    ino: self.ino[i],
                    osts: std::mem::take(&mut osts[i]),
                }
            })
            .collect();
        Snapshot::from_sorted(self.day, self.taken_at, records).map_err(ColfError::Unsorted)
    }

    fn empty(day: u32, taken_at: u64, count: usize, keep_rows: bool) -> FrameColumns {
        FrameColumns {
            day,
            taken_at,
            len: count,
            path_arena: Vec::new(),
            path_offsets: vec![0; count + 1],
            atime: vec![0; count],
            ctime: vec![0; count],
            mtime: vec![0; count],
            ino: vec![0; count],
            uid: vec![0; count],
            gid: vec![0; count],
            mode: vec![0; count],
            stripe_count: vec![0; count],
            osts: keep_rows.then(|| vec![Vec::new(); count]),
            lost_sections: Vec::new(),
        }
    }
}

/// Parses the front-coded path section into `(arena, offsets)`.
///
/// The per-row work is two varints, one `extend_from_within` for the
/// shared prefix and one `extend_from_slice` for the suffix — no `String`
/// and no clone of the predecessor. Validation matches the row parser:
/// prefix length bounded by the previous path, suffix must be UTF-8, and
/// (stricter than the row parser, which would panic) the shared prefix
/// must end on a character boundary of the predecessor so every arena
/// span is valid UTF-8. The sorted-path invariant is checked in place,
/// mirroring `Snapshot::from_sorted`.
fn parse_paths_arena(buf: &mut &[u8], count: usize) -> Result<(Vec<u8>, Vec<u32>), ColfError> {
    let mut arena: Vec<u8> = Vec::with_capacity(count * 16);
    let mut offsets = Vec::with_capacity(count + 1);
    offsets.push(0u32);
    let mut prev_start = 0usize;
    for _ in 0..count {
        let shared = get_uvarint(buf).ok_or(ColfError::Truncated("path prefix"))? as usize;
        let suffix_len = get_uvarint(buf).ok_or(ColfError::Truncated("path suffix len"))? as usize;
        let start = arena.len();
        let prev_len = start - prev_start;
        if shared > prev_len {
            return Err(ColfError::BadValue("path prefix length"));
        }
        if buf.remaining() < suffix_len {
            return Err(ColfError::Truncated("path suffix"));
        }
        std::str::from_utf8(&buf[..suffix_len]).map_err(|_| ColfError::BadValue("path utf-8"))?;
        // A prefix of valid UTF-8 cut at a character boundary is valid
        // UTF-8; a cut mid-character would start the new path with a
        // continuation byte.
        if shared < prev_len && (arena[prev_start + shared] & 0xC0) == 0x80 {
            return Err(ColfError::BadValue("path utf-8"));
        }
        arena.extend_from_within(prev_start..prev_start + shared);
        arena.extend_from_slice(&buf[..suffix_len]);
        buf.advance(suffix_len);
        if offsets.len() > 1 {
            let (head, cur) = arena.split_at(start);
            let prev = &head[prev_start..];
            if prev >= cur {
                return Err(ColfError::Unsorted(format!(
                    "path at record {} is not greater than its predecessor",
                    offsets.len() - 1
                )));
            }
        }
        prev_start = start;
        let end = u32::try_from(arena.len()).map_err(|_| ColfError::BadValue("path arena size"))?;
        offsets.push(end);
    }
    Ok((arena, offsets))
}

/// Parses the `osts` section into a stripe-count column, optionally
/// retaining the pair lists. Validation is byte-for-byte the same as the
/// row parser so both readers accept and reject identical inputs.
fn parse_ost_counts(
    buf: &mut &[u8],
    count: usize,
    keep: bool,
) -> Result<(Vec<u32>, Option<OstColumn>), ColfError> {
    let mut counts = Vec::with_capacity(count);
    let mut lists = keep.then(|| Vec::with_capacity(count));
    for _ in 0..count {
        let n = get_uvarint(buf).ok_or(ColfError::Truncated("ost count"))? as usize;
        if n > buf.remaining() + 1 {
            return Err(ColfError::BadValue("ost count"));
        }
        let mut osts = keep.then(|| Vec::with_capacity(n));
        for _ in 0..n {
            let ost = get_uvarint(buf).ok_or(ColfError::Truncated("ost id"))?;
            let obj = get_uvarint(buf).ok_or(ColfError::Truncated("ost object"))?;
            let pair = (
                u16::try_from(ost).map_err(|_| ColfError::BadValue("ost id"))?,
                u32::try_from(obj).map_err(|_| ColfError::BadValue("ost object"))?,
            );
            if let Some(list) = osts.as_mut() {
                list.push(pair);
            }
        }
        // Same wrap as `SnapshotRecord::stripe_count` (`len() as u32`).
        counts.push(n as u32);
        if let (Some(lists), Some(osts)) = (lists.as_mut(), osts) {
            lists.push(osts);
        }
    }
    Ok((counts, lists))
}

enum ParsedColumns {
    Paths(Vec<u8>, Vec<u32>),
    U64(Vec<u64>),
    U32(Vec<u32>),
    Osts(Vec<u32>, Option<OstColumn>),
}

fn parse_section_columns(
    name: &str,
    mut payload: &[u8],
    count: usize,
    keep_rows: bool,
) -> Result<ParsedColumns, ColfError> {
    let buf = &mut payload;
    let parsed = match name {
        "paths" => {
            let (arena, offsets) = parse_paths_arena(buf, count)?;
            ParsedColumns::Paths(arena, offsets)
        }
        "atime" | "ctime" | "mtime" | "ino" => {
            ParsedColumns::U64(parse_anchored(buf, count, "anchored column")?)
        }
        "uid" | "gid" | "mode" => ParsedColumns::U32(parse_plain_u32(buf, count, "plain column")?),
        "osts" => {
            let (counts, lists) = parse_ost_counts(buf, count, keep_rows)?;
            ParsedColumns::Osts(counts, lists)
        }
        _ => unreachable!("unknown section {name}"),
    };
    if buf.has_remaining() {
        // Same misalignment rule as the row reader.
        return Err(ColfError::BadValue("section length"));
    }
    Ok(parsed)
}

fn store_parsed(fc: &mut FrameColumns, name: &'static str, parsed: ParsedColumns) {
    match parsed {
        ParsedColumns::Paths(arena, offsets) => {
            fc.path_arena = arena;
            fc.path_offsets = offsets;
        }
        ParsedColumns::U64(col) => match name {
            "atime" => fc.atime = col,
            "ctime" => fc.ctime = col,
            "mtime" => fc.mtime = col,
            _ => fc.ino = col,
        },
        ParsedColumns::U32(col) => match name {
            "uid" => fc.uid = col,
            "gid" => fc.gid = col,
            _ => fc.mode = col,
        },
        ParsedColumns::Osts(counts, lists) => {
            fc.stripe_count = counts;
            if lists.is_some() {
                fc.osts = lists;
            }
        }
    }
}

fn decode_v2_columns(full: &[u8], lossy: bool, keep_rows: bool) -> Result<FrameColumns, ColfError> {
    let layout = parse_layout(full)?;
    let mut fc = FrameColumns::empty(layout.day, layout.taken_at, layout.count, keep_rows);
    let mut have_paths = false;
    let paths_offset = layout.sections.first().map(|s| s.1).unwrap_or(0);
    for &(name, offset, payload, digest) in &layout.sections {
        let intact = payload.is_some_and(|p| section_digest(p) == digest);
        let parsed = if intact {
            parse_section_columns(
                name,
                payload.expect("intact implies present"),
                layout.count,
                keep_rows,
            )
        } else if payload.is_none() {
            Err(ColfError::Truncated(name))
        } else {
            Err(ColfError::Corrupt {
                section: name,
                offset,
            })
        };
        match parsed {
            Ok(parsed) => {
                if matches!(parsed, ParsedColumns::Paths(..)) {
                    have_paths = true;
                }
                store_parsed(&mut fc, name, parsed);
            }
            Err(e) => {
                if !lossy {
                    return Err(e);
                }
                fc.lost_sections.push(name);
            }
        }
    }
    if !have_paths {
        return Err(ColfError::Corrupt {
            section: "paths",
            offset: paths_offset,
        });
    }
    Ok(fc)
}

fn decode_v1_columns(mut buf: &[u8], keep_rows: bool) -> Result<FrameColumns, ColfError> {
    if buf.remaining() < 4 {
        return Err(ColfError::Truncated("header"));
    }
    let day = buf.get_u32_le();
    let taken_at = get_uvarint(&mut buf).ok_or(ColfError::Truncated("taken_at"))?;
    let count = get_uvarint(&mut buf).ok_or(ColfError::Truncated("count"))? as usize;
    // Same hostile-header preallocation bound as the row reader.
    if count > buf.remaining() / 2 + 1 {
        return Err(ColfError::BadValue("record count"));
    }
    let mut fc = FrameColumns::empty(day, taken_at, count, keep_rows);
    let (arena, offsets) = parse_paths_arena(&mut buf, count)?;
    fc.path_arena = arena;
    fc.path_offsets = offsets;
    fc.atime = parse_anchored(&mut buf, count, "atime")?;
    fc.ctime = parse_anchored(&mut buf, count, "ctime")?;
    fc.mtime = parse_anchored(&mut buf, count, "mtime")?;
    fc.ino = parse_anchored(&mut buf, count, "ino")?;
    fc.uid = parse_plain_u32(&mut buf, count, "uid")?;
    fc.gid = parse_plain_u32(&mut buf, count, "gid")?;
    fc.mode = parse_plain_u32(&mut buf, count, "mode")?;
    let (counts, lists) = parse_ost_counts(&mut buf, count, keep_rows)?;
    fc.stripe_count = counts;
    if lists.is_some() {
        fc.osts = lists;
    }
    Ok(fc)
}

/// Convenience twin of [`crate::colf::section_table`] re-exported here so fast
/// path consumers can target test corruption without importing `colf`.
pub use crate::colf::section_table;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colf::{decode, decode_lossy, encode, encode_v1};

    fn sample_snapshot(n: usize) -> Snapshot {
        let records: Vec<SnapshotRecord> = (0..n)
            .map(|i| SnapshotRecord {
                path: format!("/lustre/atlas1/proj{:03}/αβ{:02}/f.{:06}", i % 5, i % 11, i),
                atime: 1_460_000_000 + i as u64 * 31,
                ctime: 1_450_000_000 + i as u64 * 7,
                mtime: 1_450_000_000 + i as u64 * 17,
                uid: 10_000 + (i % 40) as u32,
                gid: 2_000 + (i % 16) as u32,
                mode: if i % 9 == 0 { 0o040770 } else { 0o100664 },
                ino: 5_000_000 + i as u64,
                osts: if i % 9 == 0 {
                    vec![]
                } else {
                    (0..(i % 5)).map(|k| (k as u16, (i + k) as u32)).collect()
                },
            })
            .collect();
        Snapshot::new(21, 1_423_000_000, records)
    }

    fn assert_matches_rows(cols: &FrameColumns, snap: &Snapshot) {
        assert_eq!(cols.day(), snap.day());
        assert_eq!(cols.taken_at(), snap.taken_at());
        assert_eq!(cols.len(), snap.len());
        for (i, r) in snap.records().iter().enumerate() {
            assert_eq!(cols.path(i), r.path, "row {i}");
            assert_eq!(cols.atime[i], r.atime);
            assert_eq!(cols.ctime[i], r.ctime);
            assert_eq!(cols.mtime[i], r.mtime);
            assert_eq!(cols.ino[i], r.ino);
            assert_eq!(cols.uid[i], r.uid);
            assert_eq!(cols.gid[i], r.gid);
            assert_eq!(cols.mode[i], r.mode);
            assert_eq!(cols.stripe_count[i], r.stripe_count());
        }
    }

    #[test]
    fn columns_match_rows_v2() {
        let snap = sample_snapshot(200);
        let bytes = encode(&snap);
        let cols = FrameColumns::decode(&bytes).unwrap();
        assert_matches_rows(&cols, &snap);
        assert!(cols.lost_sections().is_empty());
        assert!(!cols.has_rows());
    }

    #[test]
    fn columns_match_rows_v1() {
        let snap = sample_snapshot(80);
        let bytes = encode_v1(&snap);
        let cols = FrameColumns::decode(&bytes).unwrap();
        assert_matches_rows(&cols, &snap);
    }

    #[test]
    fn empty_snapshot_decodes() {
        let snap = Snapshot::new(0, 0, vec![]);
        let cols = FrameColumns::decode(&encode(&snap)).unwrap();
        assert!(cols.is_empty());
        assert_eq!(cols.paths().count(), 0);
    }

    #[test]
    fn arena_is_front_coded_not_cloned() {
        // The arena holds full paths (offsets are per-path spans), so its
        // size equals the sum of path lengths — not the compressed size —
        // but with zero per-row allocations.
        let snap = sample_snapshot(50);
        let cols = FrameColumns::decode(&encode(&snap)).unwrap();
        let total: usize = snap.records().iter().map(|r| r.path.len()).sum();
        assert_eq!(cols.path_arena_len(), total);
    }

    #[test]
    fn into_snapshot_roundtrips_exactly() {
        let snap = sample_snapshot(120);
        let bytes = encode(&snap);
        let cols = FrameColumns::decode_lossy_with_rows(&bytes).unwrap();
        assert!(cols.has_rows());
        assert_eq!(cols.into_snapshot().unwrap(), snap);
    }

    #[test]
    #[should_panic(expected = "into_snapshot requires decode_lossy_with_rows")]
    fn into_snapshot_without_rows_panics() {
        let bytes = encode(&sample_snapshot(3));
        let cols = FrameColumns::decode(&bytes).unwrap();
        let _ = cols.into_snapshot();
    }

    #[test]
    fn lossy_corrupt_osts_defaults_stripes() {
        let snap = sample_snapshot(60);
        let bytes = encode(&snap);
        let spans = section_table(&bytes).unwrap();
        let osts = spans.iter().find(|s| s.name == "osts").unwrap();
        let mut corrupted = bytes.clone();
        corrupted[osts.offset + osts.len / 2] ^= 0xFF;

        assert!(matches!(
            FrameColumns::decode(&corrupted),
            Err(ColfError::Corrupt {
                section: "osts",
                ..
            })
        ));
        let cols = FrameColumns::decode_lossy(&corrupted).unwrap();
        assert_eq!(cols.lost_sections(), ["osts"]);
        assert!(cols.stripe_count.iter().all(|&c| c == 0));
        // Everything else matches the row reader's lossy salvage.
        let lossy = decode_lossy(&corrupted).unwrap();
        assert_matches_rows_lossy(&cols, &lossy.snapshot);
    }

    fn assert_matches_rows_lossy(cols: &FrameColumns, snap: &Snapshot) {
        assert_eq!(cols.len(), snap.len());
        for (i, r) in snap.records().iter().enumerate() {
            assert_eq!(cols.path(i), r.path);
            assert_eq!(cols.atime[i], r.atime);
            assert_eq!(cols.mode[i], r.mode);
            assert_eq!(cols.stripe_count[i], r.stripe_count());
        }
    }

    #[test]
    fn corrupt_paths_is_unrecoverable() {
        let snap = sample_snapshot(30);
        let bytes = encode(&snap);
        let spans = section_table(&bytes).unwrap();
        let paths = spans.iter().find(|s| s.name == "paths").unwrap();
        let mut corrupted = bytes.clone();
        corrupted[paths.offset + 2] ^= 0xFF;
        assert!(FrameColumns::decode(&corrupted).is_err());
        assert!(FrameColumns::decode_lossy(&corrupted).is_err());
    }

    #[test]
    fn truncation_anywhere_is_an_error_not_a_panic() {
        for bytes in [
            encode(&sample_snapshot(20)),
            encode_v1(&sample_snapshot(20)),
        ] {
            for cut in 0..bytes.len() {
                assert!(
                    FrameColumns::decode(&bytes[..cut]).is_err(),
                    "cut at {cut} decoded successfully"
                );
            }
        }
    }

    #[test]
    fn strictness_agrees_with_row_reader_under_mutation() {
        // On every single-byte corruption, the two strict readers must
        // agree on acceptance, and both lossy readers must agree on what
        // was lost. (The columns reader additionally rejects a handful
        // of inputs where the row reader would panic on a mid-character
        // front-coding prefix; checksums keep those unreachable here.)
        let snap = sample_snapshot(30);
        let bytes = encode(&snap);
        for pos in (0..bytes.len()).step_by(3) {
            let mut mutated = bytes.clone();
            mutated[pos] ^= 0x41;
            let row = decode(&mutated);
            let col = FrameColumns::decode(&mutated);
            assert_eq!(
                row.is_ok(),
                col.is_ok(),
                "strict disagreement at byte {pos}"
            );
            match (decode_lossy(&mutated), FrameColumns::decode_lossy(&mutated)) {
                (Ok(r), Ok(c)) => {
                    assert_eq!(r.lost_sections, c.lost_sections, "at byte {pos}");
                    assert_matches_rows_lossy(&c, &r.snapshot);
                }
                (Err(_), Err(_)) => {}
                (r, c) => panic!(
                    "lossy disagreement at byte {pos}: row {:?} vs columns {:?}",
                    r.is_ok(),
                    c.is_ok()
                ),
            }
        }
    }

    #[test]
    fn unsorted_paths_rejected() {
        // Hand-roll a v1 buffer with out-of-order paths (the encoders
        // can't produce one — `Snapshot::new` sorts): the arena parser
        // must reject it like `Snapshot::from_sorted` does.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"COLF");
        buf.push(crate::colf::VERSION_V1);
        buf.extend_from_slice(&0u32.to_le_bytes()); // day
        buf.push(0); // taken_at
        buf.push(2); // count
        for path in ["/b", "/a"] {
            buf.push(0); // shared
            buf.push(path.len() as u8);
            buf.extend_from_slice(path.as_bytes());
        }
        // The parser fails on ordering before reaching later columns.
        assert!(matches!(
            FrameColumns::decode(&buf),
            Err(ColfError::Unsorted(_))
        ));
    }
}
