//! Column-level day-over-day delta frames.
//!
//! Consecutive snapshot days differ by a small fraction of rows (the
//! paper's Fig. 13: most files are untouched week over week), yet every
//! analysis refolds the whole store. A [`FrameDelta`] captures exactly
//! what changed between two [`FrameColumns`] — added / removed /
//! changed row sets keyed by the front-coded path arena, the same
//! merge-join semantics as [`crate::diff::SnapshotDiff`] — so a
//! downstream aggregate can be *updated* in O(changed rows) instead of
//! recomputed in O(all rows).
//!
//! A delta is **self-contained on the old side**: removed and changed
//! rows carry the old day's column values ([`DeltaRow`]), so applying a
//! delta needs only the *new* day's columns in memory (the day being
//! appended, which the caller just decoded anyway). Added and changed
//! rows on the new side are plain row indices into the new frame.
//!
//! Deltas persist as compact sidecars next to the `.colf` days
//! (`snap-<day>.delta`, written by [`crate::store::SnapshotStore::put_delta`]).
//! Each sidecar records the section digests of both endpoint files;
//! consumers validate the chain before applying, so a scrubbed,
//! quarantined, healed, or re-put day can never be silently bridged by
//! a stale delta — the mismatch forces the full-rescan oracle instead.

use crate::columns::FrameColumns;
use crate::varint::{get_uvarint, put_uvarint};
use crate::xxh::section_digest;
use bytes::{Buf, BufMut};

/// Magic prefix of an encoded delta sidecar.
pub const DELTA_MAGIC: &[u8; 4] = b"SPD\x01";

/// Errors from computing or decoding a [`FrameDelta`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeltaError {
    /// One of the input frames decoded with lost sections; a delta
    /// computed from defaulted columns would record phantom changes.
    LossyFrame {
        /// Day of the lossy frame.
        day: u32,
        /// The sections it lost.
        lost: Vec<&'static str>,
    },
    /// The sidecar bytes are truncated, mis-tagged, or fail their
    /// trailing digest.
    Corrupt(&'static str),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::LossyFrame { day, lost } => {
                write!(f, "day {day} decoded lossily (lost {}); ", lost.join(", "))?;
                write!(f, "deltas require bit-perfect endpoint frames")
            }
            DeltaError::Corrupt(what) => write!(f, "corrupt delta sidecar: {what}"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// The old-side column values of a removed or changed row — everything
/// a retractable aggregate needs to subtract the row's contribution
/// without re-reading the old day.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaRow {
    /// Last-access time.
    pub atime: u64,
    /// Status-change time.
    pub ctime: u64,
    /// Modification time.
    pub mtime: u64,
    /// Owner uid.
    pub uid: u32,
    /// Owner gid.
    pub gid: u32,
    /// Raw mode bits (type + permissions).
    pub mode: u32,
    /// OST stripe count (0 for directories).
    pub stripe_count: u32,
    /// Path depth in the paper's convention (component count + root).
    pub depth: u32,
    /// File extension of the final path component, if any.
    pub ext: Option<String>,
}

impl DeltaRow {
    /// True when the mode bits record a regular file.
    pub fn is_file(&self) -> bool {
        self.mode & 0o170000 == 0o100000
    }

    fn from_columns(cols: &FrameColumns, i: usize) -> DeltaRow {
        DeltaRow {
            atime: cols.atime[i],
            ctime: cols.ctime[i],
            mtime: cols.mtime[i],
            uid: cols.uid[i],
            gid: cols.gid[i],
            mode: cols.mode[i],
            stripe_count: cols.stripe_count[i],
            depth: path_depth(cols.path(i)),
            ext: cols.ext(i).map(str::to_string),
        }
    }
}

/// Path depth in the paper's counting convention: `/`-separated
/// component count plus the implicit root prefix (matches
/// [`crate::record::SnapshotRecord::depth`]).
pub fn path_depth(path: &str) -> u32 {
    path.split('/').filter(|c| !c.is_empty()).count() as u32 + 1
}

/// What changed between two consecutive (or substituted) snapshot days,
/// at column level.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FrameDelta {
    /// The baseline day.
    pub old_day: u32,
    /// The day the delta lands on.
    pub new_day: u32,
    /// Section digest of the old day's raw `.colf` bytes.
    pub old_digest: u64,
    /// Section digest of the new day's raw `.colf` bytes.
    pub new_digest: u64,
    /// Rows present only in the new frame (indices into it), ascending.
    pub added: Vec<u32>,
    /// Rows present in both frames whose tracked columns differ
    /// (indices into the *new* frame), ascending.
    pub changed: Vec<u32>,
    /// Old-side values of the `changed` rows, parallel to `changed`.
    pub changed_old: Vec<DeltaRow>,
    /// Old-side values of rows absent from the new frame.
    pub removed: Vec<DeltaRow>,
    /// Rows present in both frames with identical tracked columns.
    pub unchanged: u64,
}

impl FrameDelta {
    /// Merge-joins two decoded column frames over their path arenas
    /// (both are path-sorted by construction — no string is ever
    /// materialized or rehashed) and records every difference in the
    /// tracked columns: atime, ctime, mtime, uid, gid, mode,
    /// stripe_count. `ino` is deliberately untracked: no maintained
    /// aggregate reads it, and a same-path recreate moves timestamps
    /// anyway.
    ///
    /// Both frames must have decoded bit-perfectly; a lossy frame's
    /// defaulted columns would masquerade as day-over-day churn.
    pub fn compute(
        old: &FrameColumns,
        new: &FrameColumns,
        old_digest: u64,
        new_digest: u64,
    ) -> Result<FrameDelta, DeltaError> {
        for cols in [old, new] {
            if !cols.lost_sections().is_empty() {
                return Err(DeltaError::LossyFrame {
                    day: cols.day(),
                    lost: cols.lost_sections().to_vec(),
                });
            }
        }
        let mut delta = FrameDelta {
            old_day: old.day(),
            new_day: new.day(),
            old_digest,
            new_digest,
            ..FrameDelta::default()
        };
        let (mut i, mut j) = (0usize, 0usize);
        while i < old.len() || j < new.len() {
            let order = if i >= old.len() {
                std::cmp::Ordering::Greater
            } else if j >= new.len() {
                std::cmp::Ordering::Less
            } else {
                old.path(i).cmp(new.path(j))
            };
            match order {
                std::cmp::Ordering::Less => {
                    delta.removed.push(DeltaRow::from_columns(old, i));
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    delta.added.push(j as u32);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    let same = old.atime[i] == new.atime[j]
                        && old.ctime[i] == new.ctime[j]
                        && old.mtime[i] == new.mtime[j]
                        && old.uid[i] == new.uid[j]
                        && old.gid[i] == new.gid[j]
                        && old.mode[i] == new.mode[j]
                        && old.stripe_count[i] == new.stripe_count[j];
                    if same {
                        delta.unchanged += 1;
                    } else {
                        delta.changed.push(j as u32);
                        delta.changed_old.push(DeltaRow::from_columns(old, i));
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        Ok(delta)
    }

    /// Total rows an incremental consumer touches applying this delta.
    pub fn touched_rows(&self) -> u64 {
        (self.added.len() + self.removed.len() + self.changed.len()) as u64
    }

    /// The day span the delta bridges. Whether that span crosses a
    /// quarantine gap is the store's call; consumers compare against
    /// the store's sampling interval.
    pub fn span(&self) -> u32 {
        self.new_day.saturating_sub(self.old_day)
    }

    /// Encodes the delta as a compact sidecar: varint header, ascending
    /// delta-coded index lists, an extension dictionary, per-row varint
    /// payloads, and a trailing XXH64 digest over everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf: Vec<u8> = Vec::with_capacity(
            64 + 4 * (self.added.len() + self.changed.len())
                + 24 * (self.removed.len() + self.changed_old.len()),
        );
        buf.put_slice(DELTA_MAGIC);
        put_uvarint(&mut buf, self.old_day as u64);
        put_uvarint(&mut buf, self.new_day as u64);
        buf.put_u64_le(self.old_digest);
        buf.put_u64_le(self.new_digest);
        put_uvarint(&mut buf, self.unchanged);
        // Extension dictionary over both old-side row sets.
        let mut dict: Vec<&str> = Vec::new();
        let mut dict_index = std::collections::BTreeMap::new();
        for row in self.removed.iter().chain(self.changed_old.iter()) {
            if let Some(ext) = row.ext.as_deref() {
                dict_index.entry(ext).or_insert_with(|| {
                    dict.push(ext);
                    dict.len() - 1
                });
            }
        }
        put_uvarint(&mut buf, dict.len() as u64);
        for ext in &dict {
            put_uvarint(&mut buf, ext.len() as u64);
            buf.put_slice(ext.as_bytes());
        }
        for list in [&self.added, &self.changed] {
            put_uvarint(&mut buf, list.len() as u64);
            let mut prev = 0u64;
            for &idx in list.iter() {
                put_uvarint(&mut buf, idx as u64 - prev);
                prev = idx as u64;
            }
        }
        for rows in [&self.removed, &self.changed_old] {
            put_uvarint(&mut buf, rows.len() as u64);
            for row in rows.iter() {
                put_uvarint(&mut buf, row.atime);
                put_uvarint(&mut buf, row.ctime);
                put_uvarint(&mut buf, row.mtime);
                put_uvarint(&mut buf, row.uid as u64);
                put_uvarint(&mut buf, row.gid as u64);
                put_uvarint(&mut buf, row.mode as u64);
                put_uvarint(&mut buf, row.stripe_count as u64);
                put_uvarint(&mut buf, row.depth as u64);
                match row.ext.as_deref() {
                    None => put_uvarint(&mut buf, 0),
                    Some(ext) => put_uvarint(&mut buf, dict_index[ext] as u64 + 1),
                }
            }
        }
        let digest = section_digest(&buf);
        buf.put_u64_le(digest);
        buf
    }

    /// Decodes a sidecar produced by [`FrameDelta::encode`], verifying
    /// the trailing digest first so a rotted sidecar reads as corrupt,
    /// never as a plausible-but-wrong delta.
    pub fn decode(bytes: &[u8]) -> Result<FrameDelta, DeltaError> {
        if bytes.len() < DELTA_MAGIC.len() + 8 {
            return Err(DeltaError::Corrupt("truncated"));
        }
        let (payload, tail) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(tail.try_into().expect("8-byte tail"));
        if section_digest(payload) != stored {
            return Err(DeltaError::Corrupt("digest mismatch"));
        }
        if &payload[..4] != DELTA_MAGIC {
            return Err(DeltaError::Corrupt("bad magic"));
        }
        let mut buf = &payload[4..];
        let take = |buf: &mut &[u8]| get_uvarint(buf).ok_or(DeltaError::Corrupt("short varint"));
        let old_day = take(&mut buf)? as u32;
        let new_day = take(&mut buf)? as u32;
        if buf.remaining() < 16 {
            return Err(DeltaError::Corrupt("truncated digests"));
        }
        let old_digest = buf.get_u64_le();
        let new_digest = buf.get_u64_le();
        let unchanged = take(&mut buf)?;
        let dict_len = take(&mut buf)? as usize;
        let mut dict = Vec::with_capacity(dict_len);
        for _ in 0..dict_len {
            let len = take(&mut buf)? as usize;
            if buf.remaining() < len {
                return Err(DeltaError::Corrupt("truncated dictionary"));
            }
            let ext = std::str::from_utf8(&buf[..len])
                .map_err(|_| DeltaError::Corrupt("non-utf8 extension"))?
                .to_string();
            buf.advance(len);
            dict.push(ext);
        }
        let mut read_indices = |buf: &mut &[u8]| -> Result<Vec<u32>, DeltaError> {
            let len = take(buf)? as usize;
            let mut out = Vec::with_capacity(len);
            let mut prev = 0u64;
            for _ in 0..len {
                prev += take(buf)?;
                out.push(u32::try_from(prev).map_err(|_| DeltaError::Corrupt("index overflow"))?);
            }
            Ok(out)
        };
        let added = read_indices(&mut buf)?;
        let changed = read_indices(&mut buf)?;
        let mut read_rows = |buf: &mut &[u8]| -> Result<Vec<DeltaRow>, DeltaError> {
            let len = take(buf)? as usize;
            let mut out = Vec::with_capacity(len);
            for _ in 0..len {
                let atime = take(buf)?;
                let ctime = take(buf)?;
                let mtime = take(buf)?;
                let uid = take(buf)? as u32;
                let gid = take(buf)? as u32;
                let mode = take(buf)? as u32;
                let stripe_count = take(buf)? as u32;
                let depth = take(buf)? as u32;
                let ext = match take(buf)? as usize {
                    0 => None,
                    n => Some(
                        dict.get(n - 1)
                            .ok_or(DeltaError::Corrupt("dictionary index out of range"))?
                            .clone(),
                    ),
                };
                out.push(DeltaRow {
                    atime,
                    ctime,
                    mtime,
                    uid,
                    gid,
                    mode,
                    stripe_count,
                    depth,
                    ext,
                });
            }
            Ok(out)
        };
        let removed = read_rows(&mut buf)?;
        let changed_old = read_rows(&mut buf)?;
        if changed_old.len() != changed.len() {
            return Err(DeltaError::Corrupt("changed/changed_old length mismatch"));
        }
        Ok(FrameDelta {
            old_day,
            new_day,
            old_digest,
            new_digest,
            added,
            changed,
            changed_old,
            removed,
            unchanged,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::colf;
    use crate::record::SnapshotRecord;
    use crate::snapshot::Snapshot;

    fn rec(path: &str, atime: u64, mtime: u64, uid: u32, stripes: usize) -> SnapshotRecord {
        SnapshotRecord {
            path: path.to_string(),
            atime,
            ctime: mtime,
            mtime,
            uid,
            gid: 500,
            mode: 0o100664,
            ino: 1,
            osts: (0..stripes as u16).map(|o| (o, 1)).collect(),
        }
    }

    fn dir(path: &str) -> SnapshotRecord {
        SnapshotRecord {
            mode: 0o040770,
            osts: vec![],
            ..rec(path, 1, 1, 1, 0)
        }
    }

    fn cols(snapshot: &Snapshot) -> (FrameColumns, u64) {
        let bytes = colf::encode(snapshot);
        let digest = section_digest(&bytes);
        (FrameColumns::decode(&bytes).unwrap(), digest)
    }

    fn delta_of(old: &Snapshot, new: &Snapshot) -> FrameDelta {
        let (oc, od) = cols(old);
        let (nc, nd) = cols(new);
        FrameDelta::compute(&oc, &nc, od, nd).unwrap()
    }

    #[test]
    fn categories_partition_the_union() {
        let old = Snapshot::new(
            0,
            0,
            vec![
                dir("/p"),
                rec("/p/a.nc", 10, 10, 7, 4),  // unchanged
                rec("/p/b.h5", 10, 10, 7, 2),  // atime will move -> changed
                rec("/p/c.dat", 10, 10, 8, 1), // removed
            ],
        );
        let new = Snapshot::new(
            7,
            0,
            vec![
                dir("/p"),
                rec("/p/a.nc", 10, 10, 7, 4),
                rec("/p/b.h5", 99, 10, 7, 2),
                rec("/p/d.txt", 70, 70, 9, 8), // added
            ],
        );
        let d = delta_of(&old, &new);
        assert_eq!(d.added.len(), 1);
        assert_eq!(d.removed.len(), 1);
        assert_eq!(d.changed.len(), 1);
        assert_eq!(d.unchanged, 2); // /p and /p/a.nc
        assert_eq!(d.touched_rows(), 3);
        // Added index points at /p/d.txt in the new frame.
        let (nc, _) = cols(&new);
        assert_eq!(nc.path(d.added[0] as usize), "/p/d.txt");
        assert_eq!(nc.path(d.changed[0] as usize), "/p/b.h5");
        // Old-side payloads carry retractable values.
        assert_eq!(d.removed[0].ext.as_deref(), Some("dat"));
        assert_eq!(d.removed[0].stripe_count, 1);
        assert!(d.removed[0].is_file());
        assert_eq!(d.changed_old[0].atime, 10);
        assert_eq!(d.changed_old[0].depth, 3);
    }

    #[test]
    fn identical_days_yield_empty_delta() {
        let recs = vec![dir("/p"), rec("/p/a.nc", 1, 1, 7, 2)];
        let old = Snapshot::new(0, 0, recs.clone());
        let new = Snapshot::new(7, 0, recs);
        let d = delta_of(&old, &new);
        assert_eq!(d.touched_rows(), 0);
        assert_eq!(d.unchanged, 2);
    }

    #[test]
    fn type_change_is_a_changed_row() {
        let old = Snapshot::new(0, 0, vec![rec("/x", 1, 1, 7, 2)]);
        let new = Snapshot::new(7, 0, vec![dir("/x")]);
        let d = delta_of(&old, &new);
        assert_eq!(d.changed.len(), 1);
        assert!(d.changed_old[0].is_file());
    }

    #[test]
    fn sidecar_roundtrip_is_lossless() {
        let old = Snapshot::new(
            3,
            100,
            vec![
                dir("/q"),
                rec("/q/gone.log", 5, 5, 11, 1),
                rec("/q/keep.nc", 5, 5, 11, 4),
                rec("/q/touch.py", 5, 5, 12, 1),
            ],
        );
        let new = Snapshot::new(
            10,
            200,
            vec![
                dir("/q"),
                rec("/q/fresh", 9, 9, 13, 2),
                rec("/q/keep.nc", 5, 5, 11, 4),
                rec("/q/touch.py", 8, 8, 12, 1),
            ],
        );
        let d = delta_of(&old, &new);
        let bytes = d.encode();
        let back = FrameDelta::decode(&bytes).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn corrupt_sidecar_is_refused() {
        let old = Snapshot::new(0, 0, vec![rec("/a", 1, 1, 7, 1)]);
        let new = Snapshot::new(7, 0, vec![rec("/b", 2, 2, 7, 1)]);
        let mut bytes = delta_of(&old, &new).encode();
        assert!(FrameDelta::decode(&bytes[..bytes.len() - 3]).is_err());
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            FrameDelta::decode(&bytes),
            Err(DeltaError::Corrupt("digest mismatch"))
        ));
    }

    #[test]
    fn lossy_endpoint_frames_are_refused() {
        let snap = Snapshot::new(0, 0, vec![rec("/a.nc", 1, 1, 7, 1)]);
        let mut bytes = colf::encode(&snap);
        // Smash the osts section so the lossy decode drops it.
        let spans = colf::section_table(&bytes).unwrap();
        let osts = spans.iter().find(|s| s.name == "osts").expect("osts span");
        bytes[osts.offset] ^= 0xFF;
        let lossy = FrameColumns::decode_lossy(&bytes).unwrap();
        assert!(!lossy.lost_sections().is_empty());
        let (good, gd) = cols(&snap);
        let err = FrameDelta::compute(&lossy, &good, 1, gd).unwrap_err();
        assert!(matches!(err, DeltaError::LossyFrame { .. }));
    }

    #[test]
    fn path_depth_matches_record_convention() {
        let r = rec("/lustre/atlas1/chp101/u4821/run7/out.xyz", 1, 1, 7, 1);
        assert_eq!(path_depth(&r.path), r.depth());
        assert_eq!(path_depth("/"), 1);
    }
}
