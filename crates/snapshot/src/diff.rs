//! Adjacent-snapshot comparison — the engine behind the paper's file
//! access-pattern breakdown (Fig. 13).
//!
//! For each weekly snapshot pair, every *regular file* path is classified:
//!
//! * **new** — present only in the newer snapshot;
//! * **deleted** — present only in the older snapshot;
//! * **readonly** — present in both, only `atime` changed;
//! * **updated** — present in both, `mtime` and/or `ctime` changed;
//! * **untouched** — present in both, all three timestamps identical.
//!
//! The five categories partition the union of the two snapshots' file
//! paths (a property-tested invariant). Comparison is by *path*, like the
//! paper ("we collected the intersection pathnames of regular file"), so a
//! delete+recreate within a week classifies as updated/new depending on
//! timestamps — the same blind spot the paper acknowledges.

use crate::columns::FrameColumns;
use crate::record::SnapshotRecord;
use crate::snapshot::Snapshot;
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;

/// Marks a diff computed across a sampling gap: the intended baseline
/// day was quarantined or missing, so the nearest healthy neighbor was
/// substituted — the paper's own fallback when a weekly dump was
/// unusable (§2.2). Consumers use the flag to annotate (or exclude) the
/// affected interval rather than silently reporting it as a normal week.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiffGap {
    /// The baseline day the comparison was supposed to use.
    pub intended_day: u32,
    /// The substitute day actually compared against.
    pub actual_day: u32,
}

impl DiffGap {
    /// How far the substitute sits from the intended day, in days.
    pub fn width(&self) -> u32 {
        self.intended_day.abs_diff(self.actual_day)
    }
}

/// Indices into the two snapshots for each access category.
///
/// Index vectors refer into `old.records()` for `deleted` and into
/// `new.records()` for every other category, letting the burstiness
/// analysis reach the underlying timestamps without copying records.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SnapshotDiff {
    /// Files present only in the newer snapshot (indices into new).
    pub new: Vec<u32>,
    /// Files present only in the older snapshot (indices into old).
    pub deleted: Vec<u32>,
    /// Files whose `atime` alone advanced (indices into new).
    pub readonly: Vec<u32>,
    /// Files whose `mtime`/`ctime` changed (indices into new).
    pub updated: Vec<u32>,
    /// Files with identical timestamps (indices into new).
    pub untouched: Vec<u32>,
    /// Set when the baseline was a substituted neighbor, not the
    /// intended day.
    pub gap: Option<DiffGap>,
}

/// Aggregate counts of a diff, as plotted in Fig. 13.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AccessBreakdown {
    /// Newly created files.
    pub new: u64,
    /// Deleted files.
    pub deleted: u64,
    /// Read-only accesses.
    pub readonly: u64,
    /// Content/metadata updates.
    pub updated: u64,
    /// Files untouched within the interval.
    pub untouched: u64,
}

impl AccessBreakdown {
    /// Files present in the newer snapshot (everything but `deleted`).
    pub fn live_total(&self) -> u64 {
        self.new + self.readonly + self.updated + self.untouched
    }

    /// Share of each category relative to the union of both snapshots'
    /// files, in the order (new, deleted, readonly, updated, untouched).
    pub fn fractions(&self) -> (f64, f64, f64, f64, f64) {
        let total = (self.live_total() + self.deleted) as f64;
        if total == 0.0 {
            return (0.0, 0.0, 0.0, 0.0, 0.0);
        }
        (
            self.new as f64 / total,
            self.deleted as f64 / total,
            self.readonly as f64 / total,
            self.updated as f64 / total,
            self.untouched as f64 / total,
        )
    }
}

impl SnapshotDiff {
    /// Merge-joins two snapshots by path (both are sorted by construction)
    /// and classifies every regular file.
    pub fn compute(old: &Snapshot, new: &Snapshot) -> SnapshotDiff {
        let a = old.records();
        let b = new.records();
        let mut diff = SnapshotDiff::default();
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() || j < b.len() {
            let order = match (a.get(i), b.get(j)) {
                (Some(ra), Some(rb)) => ra.path.as_str().cmp(rb.path.as_str()),
                (Some(_), None) => Ordering::Less,
                (None, Some(_)) => Ordering::Greater,
                (None, None) => unreachable!(),
            };
            match order {
                Ordering::Less => {
                    if a[i].is_file() {
                        diff.deleted.push(i as u32);
                    }
                    i += 1;
                }
                Ordering::Greater => {
                    if b[j].is_file() {
                        diff.new.push(j as u32);
                    }
                    j += 1;
                }
                Ordering::Equal => {
                    // A path can change type between scans (rm file;
                    // mkdir same-name): the file side of the transition
                    // still counts as a delete or a create.
                    match (a[i].is_file(), b[j].is_file()) {
                        (true, true) => diff.classify_common(&a[i], j as u32, &b[j]),
                        (true, false) => diff.deleted.push(i as u32),
                        (false, true) => diff.new.push(j as u32),
                        (false, false) => {}
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        diff
    }

    /// [`SnapshotDiff::compute`] over decoded column frames: the
    /// merge-join runs directly on the two front-coded path arenas
    /// (borrowed `&str` slices compared in place — no `String` is
    /// materialized or rehashed on either side), which is the path the
    /// columnar fast path takes when both days have colf frames at
    /// hand. Classification is identical to the row-based
    /// [`SnapshotDiff::compute`]; the equivalence is asserted by tests.
    pub fn compute_columns(old: &FrameColumns, new: &FrameColumns) -> SnapshotDiff {
        let is_file = |mode: u32| mode & 0o170000 == 0o100000;
        let mut diff = SnapshotDiff::default();
        let (mut i, mut j) = (0usize, 0usize);
        while i < old.len() || j < new.len() {
            let order = if i >= old.len() {
                Ordering::Greater
            } else if j >= new.len() {
                Ordering::Less
            } else {
                old.path(i).cmp(new.path(j))
            };
            match order {
                Ordering::Less => {
                    if is_file(old.mode[i]) {
                        diff.deleted.push(i as u32);
                    }
                    i += 1;
                }
                Ordering::Greater => {
                    if is_file(new.mode[j]) {
                        diff.new.push(j as u32);
                    }
                    j += 1;
                }
                Ordering::Equal => {
                    match (is_file(old.mode[i]), is_file(new.mode[j])) {
                        (true, true) => {
                            let atime_changed = old.atime[i] != new.atime[j];
                            let write_changed =
                                old.mtime[i] != new.mtime[j] || old.ctime[i] != new.ctime[j];
                            if write_changed {
                                diff.updated.push(j as u32);
                            } else if atime_changed {
                                diff.readonly.push(j as u32);
                            } else {
                                diff.untouched.push(j as u32);
                            }
                        }
                        (true, false) => diff.deleted.push(i as u32),
                        (false, true) => diff.new.push(j as u32),
                        (false, false) => {}
                    }
                    i += 1;
                    j += 1;
                }
            }
        }
        diff
    }

    /// Like [`SnapshotDiff::compute_columns`], but flags the gap when
    /// `old` is a stand-in for a different intended baseline day — the
    /// column-path twin of [`SnapshotDiff::compute_substituted`].
    pub fn compute_columns_substituted(
        old: &FrameColumns,
        new: &FrameColumns,
        intended_old_day: u32,
    ) -> SnapshotDiff {
        let mut diff = SnapshotDiff::compute_columns(old, new);
        if old.day() != intended_old_day {
            diff.gap = Some(DiffGap {
                intended_day: intended_old_day,
                actual_day: old.day(),
            });
        }
        diff
    }

    /// Like [`SnapshotDiff::compute`], but records that `old` stands in
    /// for the (quarantined or never-captured) day `intended_old_day`.
    /// When `old` actually *is* the intended day, no gap is flagged and
    /// the result equals a plain `compute`.
    pub fn compute_substituted(
        old: &Snapshot,
        new: &Snapshot,
        intended_old_day: u32,
    ) -> SnapshotDiff {
        let mut diff = SnapshotDiff::compute(old, new);
        if old.day() != intended_old_day {
            diff.gap = Some(DiffGap {
                intended_day: intended_old_day,
                actual_day: old.day(),
            });
        }
        diff
    }

    /// True when this diff was computed against a substituted baseline.
    pub fn is_gap(&self) -> bool {
        self.gap.is_some()
    }

    fn classify_common(&mut self, old: &SnapshotRecord, new_idx: u32, new: &SnapshotRecord) {
        let atime_changed = old.atime != new.atime;
        let write_changed = old.mtime != new.mtime || old.ctime != new.ctime;
        if write_changed {
            self.updated.push(new_idx);
        } else if atime_changed {
            self.readonly.push(new_idx);
        } else {
            self.untouched.push(new_idx);
        }
    }

    /// Aggregate counts.
    pub fn breakdown(&self) -> AccessBreakdown {
        AccessBreakdown {
            new: self.new.len() as u64,
            deleted: self.deleted.len() as u64,
            readonly: self.readonly.len() as u64,
            updated: self.updated.len() as u64,
            untouched: self.untouched.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(path: &str, atime: u64, mtime: u64, ctime: u64) -> SnapshotRecord {
        SnapshotRecord {
            path: path.to_string(),
            atime,
            ctime,
            mtime,
            uid: 1,
            gid: 1,
            mode: 0o100664,
            ino: 1,
            osts: vec![],
        }
    }

    fn dir(path: &str) -> SnapshotRecord {
        SnapshotRecord {
            mode: 0o040770,
            ..rec(path, 1, 1, 1)
        }
    }

    #[test]
    fn categories_cover_all_transitions() {
        let old = Snapshot::new(
            0,
            100,
            vec![
                rec("/a", 10, 10, 10), // will be untouched
                rec("/b", 10, 10, 10), // will be readonly
                rec("/c", 10, 10, 10), // will be updated (write)
                rec("/d", 10, 10, 10), // will be deleted
            ],
        );
        let new = Snapshot::new(
            7,
            200,
            vec![
                rec("/a", 10, 10, 10),
                rec("/b", 50, 10, 10),
                rec("/c", 10, 60, 60),
                rec("/e", 70, 70, 70), // new
            ],
        );
        let diff = SnapshotDiff::compute(&old, &new);
        let b = diff.breakdown();
        assert_eq!(
            (b.new, b.deleted, b.readonly, b.updated, b.untouched),
            (1, 1, 1, 1, 1)
        );
        assert_eq!(new.records()[diff.new[0] as usize].path, "/e");
        assert_eq!(old.records()[diff.deleted[0] as usize].path, "/d");
        assert_eq!(new.records()[diff.readonly[0] as usize].path, "/b");
        assert_eq!(new.records()[diff.updated[0] as usize].path, "/c");
        assert_eq!(new.records()[diff.untouched[0] as usize].path, "/a");
    }

    #[test]
    fn touch_counts_as_updated() {
        // touch moves all three timestamps -> mtime/ctime changed -> updated.
        let old = Snapshot::new(0, 0, vec![rec("/a", 10, 10, 10)]);
        let new = Snapshot::new(7, 0, vec![rec("/a", 99, 99, 99)]);
        let diff = SnapshotDiff::compute(&old, &new);
        assert_eq!(diff.breakdown().updated, 1);
    }

    #[test]
    fn restripe_counts_as_updated() {
        // ctime-only change (metadata operation).
        let old = Snapshot::new(0, 0, vec![rec("/a", 10, 10, 10)]);
        let new = Snapshot::new(7, 0, vec![rec("/a", 10, 10, 55)]);
        let diff = SnapshotDiff::compute(&old, &new);
        assert_eq!(diff.breakdown().updated, 1);
    }

    #[test]
    fn directories_are_excluded() {
        let old = Snapshot::new(0, 0, vec![dir("/d1"), rec("/f", 1, 1, 1)]);
        let new = Snapshot::new(7, 0, vec![dir("/d2"), rec("/f", 1, 1, 1)]);
        let diff = SnapshotDiff::compute(&old, &new);
        let b = diff.breakdown();
        assert_eq!(b.new + b.deleted, 0);
        assert_eq!(b.untouched, 1);
    }

    #[test]
    fn type_change_counts_as_delete_and_create() {
        // /x: file -> directory (the file died); /y: directory -> file.
        let old = Snapshot::new(0, 0, vec![rec("/x", 1, 1, 1), dir("/y")]);
        let new = Snapshot::new(7, 0, vec![dir("/x"), rec("/y", 9, 9, 9)]);
        let diff = SnapshotDiff::compute(&old, &new);
        let b = diff.breakdown();
        assert_eq!(b.deleted, 1);
        assert_eq!(b.new, 1);
        assert_eq!(b.readonly + b.updated + b.untouched, 0);
    }

    #[test]
    fn empty_snapshots() {
        let empty = Snapshot::new(0, 0, vec![]);
        let one = Snapshot::new(7, 0, vec![rec("/a", 1, 1, 1)]);
        assert_eq!(
            SnapshotDiff::compute(&empty, &empty).breakdown(),
            AccessBreakdown::default()
        );
        assert_eq!(SnapshotDiff::compute(&empty, &one).breakdown().new, 1);
        assert_eq!(SnapshotDiff::compute(&one, &empty).breakdown().deleted, 1);
    }

    #[test]
    fn fractions_sum_to_one() {
        let b = AccessBreakdown {
            new: 22,
            deleted: 13,
            readonly: 3,
            updated: 10,
            untouched: 76,
        };
        let (n, d, r, u, t) = b.fractions();
        assert!((n + d + r + u + t - 1.0).abs() < 1e-12);
        assert_eq!(b.live_total(), 111);
    }

    #[test]
    fn fractions_of_empty_breakdown() {
        let (n, d, r, u, t) = AccessBreakdown::default().fractions();
        assert_eq!((n, d, r, u, t), (0.0, 0.0, 0.0, 0.0, 0.0));
    }

    #[test]
    fn substituted_baseline_flags_the_gap() {
        // Day 7's dump was quarantined; day 0 stands in for it when
        // diffing toward day 14. Classification must match a plain diff
        // against the substitute, with the gap recorded on top.
        let day0 = Snapshot::new(0, 0, vec![rec("/a", 10, 10, 10), rec("/b", 10, 10, 10)]);
        let day14 = Snapshot::new(14, 0, vec![rec("/a", 10, 10, 10), rec("/c", 9, 9, 9)]);
        let diff = SnapshotDiff::compute_substituted(&day0, &day14, 7);
        assert!(diff.is_gap());
        let gap = diff.gap.unwrap();
        assert_eq!(gap.intended_day, 7);
        assert_eq!(gap.actual_day, 0);
        assert_eq!(gap.width(), 7);
        let plain = SnapshotDiff::compute(&day0, &day14);
        assert_eq!(diff.breakdown(), plain.breakdown());
        assert_eq!(diff.new, plain.new);
        assert_eq!(diff.deleted, plain.deleted);
    }

    #[test]
    fn intended_baseline_flags_no_gap() {
        let day7 = Snapshot::new(7, 0, vec![rec("/a", 1, 1, 1)]);
        let day14 = Snapshot::new(14, 0, vec![rec("/a", 1, 1, 1)]);
        let diff = SnapshotDiff::compute_substituted(&day7, &day14, 7);
        assert!(!diff.is_gap());
        assert_eq!(diff, SnapshotDiff::compute(&day7, &day14));
    }

    #[test]
    fn gap_width_is_symmetric() {
        // A later neighbor substituting for an earlier intended day.
        let day21 = Snapshot::new(21, 0, vec![]);
        let day28 = Snapshot::new(28, 0, vec![]);
        let diff = SnapshotDiff::compute_substituted(&day21, &day28, 14);
        assert_eq!(diff.gap.unwrap().width(), 7);
    }

    fn columns_of(snapshot: &Snapshot) -> FrameColumns {
        FrameColumns::decode(&crate::colf::encode(snapshot)).unwrap()
    }

    #[test]
    fn column_path_matches_row_path() {
        // Every transition class at once: the arena merge-join must
        // produce the exact index vectors of the record merge-join.
        let old = Snapshot::new(
            0,
            0,
            vec![
                dir("/d"),
                rec("/d/keep", 10, 10, 10),
                rec("/d/read", 10, 10, 10),
                rec("/d/write", 10, 10, 10),
                rec("/gone", 10, 10, 10),
                rec("/x", 1, 1, 1), // becomes a directory
                dir("/y"),          // becomes a file
            ],
        );
        let new = Snapshot::new(
            7,
            0,
            vec![
                dir("/d"),
                rec("/d/fresh", 70, 70, 70),
                rec("/d/keep", 10, 10, 10),
                rec("/d/read", 55, 10, 10),
                rec("/d/write", 10, 66, 66),
                dir("/x"),
                rec("/y", 9, 9, 9),
            ],
        );
        let row = SnapshotDiff::compute(&old, &new);
        let col = SnapshotDiff::compute_columns(&columns_of(&old), &columns_of(&new));
        assert_eq!(row, col);
        assert!(col.breakdown().new == 2 && col.breakdown().deleted == 2);
    }

    #[test]
    fn column_path_equivalence_on_random_interleavings() {
        // Deterministic pseudo-random path sets with collisions between
        // the two days; the two paths must agree index-for-index.
        let mut state = 0x9E37_79B9u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 33
        };
        for _ in 0..10 {
            let mut old_recs = Vec::new();
            let mut new_recs = Vec::new();
            for _ in 0..60 {
                let id = next() % 40;
                let path = format!("/p/f{id:03}");
                let t = next() % 100;
                if next() % 3 != 0 {
                    old_recs.push(rec(&path, t, t, t));
                }
                if next() % 3 != 0 {
                    let t2 = next() % 100;
                    new_recs.push(rec(&path, t2, t, t));
                }
            }
            let dedup = |mut v: Vec<SnapshotRecord>| {
                v.sort_by(|a, b| a.path.cmp(&b.path));
                v.dedup_by(|a, b| a.path == b.path);
                v
            };
            let old = Snapshot::new(0, 0, dedup(old_recs));
            let new = Snapshot::new(7, 0, dedup(new_recs));
            assert_eq!(
                SnapshotDiff::compute(&old, &new),
                SnapshotDiff::compute_columns(&columns_of(&old), &columns_of(&new))
            );
        }
    }

    #[test]
    fn column_substituted_flags_gap_like_row_path() {
        let day0 = Snapshot::new(0, 0, vec![rec("/a", 1, 1, 1)]);
        let day21 = Snapshot::new(21, 0, vec![rec("/a", 5, 1, 1)]);
        let col =
            SnapshotDiff::compute_columns_substituted(&columns_of(&day0), &columns_of(&day21), 14);
        let row = SnapshotDiff::compute_substituted(&day0, &day21, 14);
        assert_eq!(col, row);
        assert_eq!(col.gap.unwrap().width(), 14);
    }

    #[test]
    fn multi_day_quarantine_gap_is_never_silent() {
        // Days 7 and 14 both quarantined: the diff toward day 21 runs
        // against day 0, a three-interval substitution. The gap must be
        // flagged with its full width — downstream aggregate maintainers
        // key their "degraded" marking off exactly this flag, so a
        // silent merge here would poison every trend cell in the gap.
        let day0 = Snapshot::new(
            0,
            0,
            vec![rec("/a", 1, 1, 1), rec("/b", 1, 1, 1), rec("/c", 1, 1, 1)],
        );
        let day21 = Snapshot::new(
            21,
            0,
            vec![rec("/a", 9, 9, 9), rec("/c", 1, 1, 1), rec("/d", 2, 2, 2)],
        );
        for intended in [7u32, 14] {
            let diff = SnapshotDiff::compute_substituted(&day0, &day21, intended);
            assert!(diff.is_gap(), "substituted baseline must flag the gap");
            let gap = diff.gap.unwrap();
            assert_eq!(gap.intended_day, intended);
            assert_eq!(gap.actual_day, 0);
            assert_eq!(gap.width(), intended);
            // Classification itself equals the plain diff against the
            // substitute — the gap is an annotation, not a rewrite.
            let plain = SnapshotDiff::compute(&day0, &day21);
            assert_eq!(diff.breakdown(), plain.breakdown());
        }
        // Column path agrees on the same multi-day gap.
        let col =
            SnapshotDiff::compute_columns_substituted(&columns_of(&day0), &columns_of(&day21), 14);
        assert_eq!(col.gap.unwrap().width(), 14);
        assert_eq!(
            col.breakdown(),
            SnapshotDiff::compute(&day0, &day21).breakdown()
        );
    }

    #[test]
    fn gap_chain_widths_accumulate_across_week_gaps() {
        // A quarantined stretch (days 7..=28 lost) bridged in one diff:
        // width reports the true distance, not one sampling interval.
        let day0 = Snapshot::new(0, 0, vec![rec("/a", 1, 1, 1)]);
        let day35 = Snapshot::new(35, 0, vec![rec("/a", 2, 1, 1)]);
        let diff = SnapshotDiff::compute_substituted(&day0, &day35, 28);
        assert_eq!(diff.gap.unwrap().width(), 28);
        assert!(diff.gap.unwrap().width() > 7, "wider than one interval");
    }

    #[test]
    fn partition_invariant_on_interleaved_paths() {
        // Union of file paths == sum of category counts.
        let old = Snapshot::new(
            0,
            0,
            (0..100)
                .step_by(2)
                .map(|i| rec(&format!("/f{i:03}"), i, i, i))
                .collect(),
        );
        let new = Snapshot::new(
            7,
            0,
            (0..100)
                .step_by(3)
                .map(|i| rec(&format!("/f{i:03}"), i + 1, i, i))
                .collect(),
        );
        let diff = SnapshotDiff::compute(&old, &new);
        let b = diff.breakdown();
        let mut union: std::collections::BTreeSet<String> =
            old.records().iter().map(|r| r.path.clone()).collect();
        union.extend(new.records().iter().map(|r| r.path.clone()));
        assert_eq!(
            b.new + b.deleted + b.readonly + b.updated + b.untouched,
            union.len() as u64
        );
    }
}
