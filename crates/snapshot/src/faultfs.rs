//! Deterministic fault injection for the snapshot store.
//!
//! Real 500-day snapshot archives do not fail politely: disks flip bits
//! at rest, dumps get truncated by full filesystems, writers die mid
//! file, and NFS returns `EIO` once and then works fine. [`FaultFs`]
//! wraps any [`StoreIo`] and injects exactly those five failure modes —
//! [`FaultKind::BitFlip`], [`FaultKind::Truncate`], [`FaultKind::TornWrite`],
//! [`FaultKind::TransientEio`], [`FaultKind::ShortRead`] — at planned
//! operation indices, with every random choice (which bit, how much
//! tail, how long a torn prefix) drawn from a seeded SplitMix64 stream.
//! Same seed, same plan, same faults: a failing fault-matrix cell
//! reproduces exactly.
//!
//! Faults come in two durabilities:
//!
//! * **at rest** — `BitFlip` and `Truncate` rewrite the underlying file,
//!   so retries see the same damage; only checksums + quarantine help;
//! * **transient** — `TransientEio` and `ShortRead` perturb one
//!   operation; a retry succeeds. `TornWrite` persists a prefix and
//!   fails the call, modeling a crash mid-write.
//!
//! Every triggered fault is appended to a log ([`FaultFs::injected`]),
//! which the fault-matrix suite reconciles against store health: each
//! injected fault must be *recovered* or *quarantined*, never ignored.

use crate::io::StoreIo;
use std::collections::BTreeMap;
use std::ffi::OsString;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Coarse classification of the files flowing through the seam, so a
/// fault plan can target one traffic class deterministically even when
/// classes interleave.
///
/// Operation-index plans ([`FaultFs::plan_read`] /
/// [`FaultFs::plan_write`]) were implicitly colf-only while the
/// snapshot store was the seam's sole client: every write was a
/// `snap-*.colf` (or its `.tmp` twin), so "the 3rd write" always meant
/// "the 3rd colf write". With raft log segments (`*.rlog`) sharing the
/// same `StoreIo`, a global index no longer names a stable victim —
/// [`FaultFs::plan_read_class`] / [`FaultFs::plan_write_class`] count
/// per class instead, so "the 0th `RaftLog` write" tears the first log
/// segment no matter how many snapshot writes interleave.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum PathClass {
    /// Snapshot column files: any name containing `.colf` (covers the
    /// atomic-write `.colf.tmp` twins).
    Colf,
    /// Raft log segments and vote records: any name containing `.rlog`
    /// (covers their `.rlog.tmp` twins).
    RaftLog,
    /// Everything else.
    Other,
}

impl PathClass {
    /// Classifies `path` by its file name.
    pub fn of(path: &Path) -> PathClass {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if name.contains(".colf") {
            PathClass::Colf
        } else if name.contains(".rlog") {
            PathClass::RaftLog
        } else {
            PathClass::Other
        }
    }
}

/// The injectable failure modes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// One bit of the file flips at rest (read returns — and the file
    /// keeps — the corrupted bytes).
    BitFlip,
    /// The file loses its tail at rest (up to a quarter of its length).
    Truncate,
    /// A write persists only a prefix and reports failure, as if the
    /// writer crashed mid-call.
    TornWrite,
    /// One operation fails with `EIO`; the next attempt succeeds.
    TransientEio,
    /// One read returns fewer bytes than the file holds; the next
    /// attempt returns them all.
    ShortRead,
}

impl FaultKind {
    /// Fault kinds applicable to the read stream.
    pub const READ_KINDS: [FaultKind; 4] = [
        FaultKind::BitFlip,
        FaultKind::Truncate,
        FaultKind::TransientEio,
        FaultKind::ShortRead,
    ];

    /// Fault kinds applicable to the write stream.
    pub const WRITE_KINDS: [FaultKind; 2] = [FaultKind::TornWrite, FaultKind::TransientEio];
}

/// One fault that actually fired.
#[derive(Debug, Clone)]
pub struct InjectedFault {
    /// What was injected.
    pub kind: FaultKind,
    /// The file it hit.
    pub path: PathBuf,
    /// Human-readable specifics (bit position, bytes dropped, ...).
    pub detail: String,
}

#[derive(Debug)]
struct State {
    rng: u64,
    read_ops: u64,
    write_ops: u64,
    class_read_ops: BTreeMap<PathClass, u64>,
    class_write_ops: BTreeMap<PathClass, u64>,
    read_plan: BTreeMap<u64, FaultKind>,
    write_plan: BTreeMap<u64, FaultKind>,
    class_read_plan: BTreeMap<(PathClass, u64), FaultKind>,
    class_write_plan: BTreeMap<(PathClass, u64), FaultKind>,
    fail_next_rename: bool,
    injected: Vec<InjectedFault>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A [`StoreIo`] wrapper that injects planned faults; see the module
/// docs for the failure model.
#[derive(Debug)]
pub struct FaultFs<I: StoreIo> {
    inner: I,
    state: Mutex<State>,
}

impl<I: StoreIo> FaultFs<I> {
    /// Wraps `inner` with an empty fault plan (every operation passes
    /// through until faults are planned).
    pub fn new(inner: I, seed: u64) -> Self {
        FaultFs {
            inner,
            state: Mutex::new(State {
                rng: seed ^ 0x5EED_5EED_5EED_5EED,
                read_ops: 0,
                write_ops: 0,
                class_read_ops: BTreeMap::new(),
                class_write_ops: BTreeMap::new(),
                read_plan: BTreeMap::new(),
                write_plan: BTreeMap::new(),
                class_read_plan: BTreeMap::new(),
                class_write_plan: BTreeMap::new(),
                fail_next_rename: false,
                injected: Vec::new(),
            }),
        }
    }

    /// Wraps `inner` with a pseudo-random plan derived from `seed`:
    /// roughly one in three of the first `horizon` reads and one in four
    /// of the first `horizon` writes get a random applicable fault.
    pub fn seeded(inner: I, seed: u64, horizon: u64) -> Self {
        let fs = FaultFs::new(inner, seed);
        {
            let mut s = fs.state.lock().expect("fault state poisoned");
            let mut rng = seed;
            for op in 0..horizon {
                if splitmix(&mut rng) % 3 == 0 {
                    let kind = FaultKind::READ_KINDS[(splitmix(&mut rng) % 4) as usize];
                    s.read_plan.insert(op, kind);
                }
                if splitmix(&mut rng) % 4 == 0 {
                    let kind = FaultKind::WRITE_KINDS[(splitmix(&mut rng) % 2) as usize];
                    s.write_plan.insert(op, kind);
                }
            }
        }
        fs
    }

    /// Plans `kind` for the `index`-th read operation (0-based).
    ///
    /// # Panics
    /// If `kind` is not a read-stream fault.
    pub fn plan_read(&self, index: u64, kind: FaultKind) {
        assert!(
            FaultKind::READ_KINDS.contains(&kind),
            "{kind:?} is not a read fault"
        );
        self.state
            .lock()
            .expect("fault state poisoned")
            .read_plan
            .insert(index, kind);
    }

    /// Plans `kind` for the `index`-th write operation (0-based).
    ///
    /// # Panics
    /// If `kind` is not a write-stream fault.
    pub fn plan_write(&self, index: u64, kind: FaultKind) {
        assert!(
            FaultKind::WRITE_KINDS.contains(&kind),
            "{kind:?} is not a write fault"
        );
        self.state
            .lock()
            .expect("fault state poisoned")
            .write_plan
            .insert(index, kind);
    }

    /// Plans `kind` for the `nth` read *of files in `class`* (0-based).
    /// Class plans take precedence over operation-index plans, and the
    /// per-class counter ignores traffic from other classes, so the
    /// victim stays stable however the classes interleave.
    ///
    /// # Panics
    /// If `kind` is not a read-stream fault.
    pub fn plan_read_class(&self, class: PathClass, nth: u64, kind: FaultKind) {
        assert!(
            FaultKind::READ_KINDS.contains(&kind),
            "{kind:?} is not a read fault"
        );
        self.state
            .lock()
            .expect("fault state poisoned")
            .class_read_plan
            .insert((class, nth), kind);
    }

    /// Plans `kind` for the `nth` write *of files in `class`* (0-based).
    /// See [`FaultFs::plan_read_class`] for the precedence rule.
    ///
    /// # Panics
    /// If `kind` is not a write-stream fault.
    pub fn plan_write_class(&self, class: PathClass, nth: u64, kind: FaultKind) {
        assert!(
            FaultKind::WRITE_KINDS.contains(&kind),
            "{kind:?} is not a write fault"
        );
        self.state
            .lock()
            .expect("fault state poisoned")
            .class_write_plan
            .insert((class, nth), kind);
    }

    /// Makes the next rename fail with `EIO` (exercises the store's
    /// quarantine fallback when even the move is refused).
    pub fn fail_next_rename(&self) {
        self.state
            .lock()
            .expect("fault state poisoned")
            .fail_next_rename = true;
    }

    /// Every fault that has fired so far.
    pub fn injected(&self) -> Vec<InjectedFault> {
        self.state
            .lock()
            .expect("fault state poisoned")
            .injected
            .clone()
    }

    /// Planned faults that have not fired yet (their operation index was
    /// never reached).
    pub fn pending(&self) -> usize {
        let s = self.state.lock().expect("fault state poisoned");
        s.read_plan.len() + s.write_plan.len() + s.class_read_plan.len() + s.class_write_plan.len()
    }

    fn eio(what: &str) -> io::Error {
        io::Error::other(format!("injected transient EIO during {what}"))
    }
}

impl<I: StoreIo> StoreIo for FaultFs<I> {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let fault = {
            let mut s = self.state.lock().expect("fault state poisoned");
            let op = s.read_ops;
            s.read_ops += 1;
            let class = PathClass::of(path);
            let counter = s.class_read_ops.entry(class).or_insert(0);
            let class_op = *counter;
            *counter += 1;
            s.class_read_plan
                .remove(&(class, class_op))
                .or_else(|| s.read_plan.remove(&op))
        };
        let Some(kind) = fault else {
            return self.inner.read(path);
        };
        match kind {
            FaultKind::TransientEio => {
                self.state
                    .lock()
                    .expect("fault state poisoned")
                    .injected
                    .push(InjectedFault {
                        kind,
                        path: path.to_path_buf(),
                        detail: "read failed once".into(),
                    });
                Err(Self::eio("read"))
            }
            FaultKind::ShortRead => {
                let bytes = self.inner.read(path)?;
                let mut s = self.state.lock().expect("fault state poisoned");
                let keep = if bytes.is_empty() {
                    0
                } else {
                    (splitmix(&mut s.rng) % bytes.len() as u64) as usize
                };
                s.injected.push(InjectedFault {
                    kind,
                    path: path.to_path_buf(),
                    detail: format!("returned {keep} of {} bytes", bytes.len()),
                });
                Ok(bytes[..keep].to_vec())
            }
            FaultKind::BitFlip => {
                let mut bytes = self.inner.read(path)?;
                if bytes.is_empty() {
                    return Ok(bytes);
                }
                let (pos, bit) = {
                    let mut s = self.state.lock().expect("fault state poisoned");
                    let r = splitmix(&mut s.rng);
                    ((r % bytes.len() as u64) as usize, (r >> 32) % 8)
                };
                bytes[pos] ^= 1 << bit;
                // At-rest corruption: persist the damage so retries see it.
                self.inner.write(path, &bytes)?;
                self.state
                    .lock()
                    .expect("fault state poisoned")
                    .injected
                    .push(InjectedFault {
                        kind,
                        path: path.to_path_buf(),
                        detail: format!("flipped bit {bit} of byte {pos}"),
                    });
                Ok(bytes)
            }
            FaultKind::Truncate => {
                let mut bytes = self.inner.read(path)?;
                if bytes.is_empty() {
                    return Ok(bytes);
                }
                let drop = {
                    let mut s = self.state.lock().expect("fault state poisoned");
                    (splitmix(&mut s.rng) % (bytes.len() as u64 / 4 + 1) + 1) as usize
                };
                let keep = bytes.len().saturating_sub(drop);
                bytes.truncate(keep);
                self.inner.write(path, &bytes)?;
                self.state
                    .lock()
                    .expect("fault state poisoned")
                    .injected
                    .push(InjectedFault {
                        kind,
                        path: path.to_path_buf(),
                        detail: format!("dropped {drop} tail bytes, {keep} remain"),
                    });
                Ok(bytes)
            }
            FaultKind::TornWrite => unreachable!("torn write planned on read stream"),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let fault = {
            let mut s = self.state.lock().expect("fault state poisoned");
            let op = s.write_ops;
            s.write_ops += 1;
            let class = PathClass::of(path);
            let counter = s.class_write_ops.entry(class).or_insert(0);
            let class_op = *counter;
            *counter += 1;
            s.class_write_plan
                .remove(&(class, class_op))
                .or_else(|| s.write_plan.remove(&op))
        };
        let Some(kind) = fault else {
            return self.inner.write(path, bytes);
        };
        match kind {
            FaultKind::TransientEio => {
                self.state
                    .lock()
                    .expect("fault state poisoned")
                    .injected
                    .push(InjectedFault {
                        kind,
                        path: path.to_path_buf(),
                        detail: "write failed once, nothing persisted".into(),
                    });
                Err(Self::eio("write"))
            }
            FaultKind::TornWrite => {
                let keep = {
                    let mut s = self.state.lock().expect("fault state poisoned");
                    (splitmix(&mut s.rng) % (bytes.len() as u64 + 1)) as usize
                };
                self.inner.write(path, &bytes[..keep])?;
                self.state
                    .lock()
                    .expect("fault state poisoned")
                    .injected
                    .push(InjectedFault {
                        kind,
                        path: path.to_path_buf(),
                        detail: format!("persisted {keep} of {} bytes, then failed", bytes.len()),
                    });
                Err(io::Error::other("injected torn write"))
            }
            other => unreachable!("{other:?} planned on write stream"),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let fail = {
            let mut s = self.state.lock().expect("fault state poisoned");
            std::mem::take(&mut s.fail_next_rename)
        };
        if fail {
            self.state
                .lock()
                .expect("fault state poisoned")
                .injected
                .push(InjectedFault {
                    kind: FaultKind::TransientEio,
                    path: from.to_path_buf(),
                    detail: "rename refused".into(),
                });
            return Err(Self::eio("rename"));
        }
        self.inner.rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.inner.remove(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        self.inner.create_dir_all(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<OsString>> {
        self.inner.list(dir)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        self.inner.len(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::OsIo;
    use std::fs;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spider-faultfs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn transient_eio_fires_once() {
        let dir = temp_dir("eio");
        let file = dir.join("x");
        fs::write(&file, b"payload").unwrap();
        let ffs = FaultFs::new(OsIo, 1);
        ffs.plan_read(0, FaultKind::TransientEio);
        assert!(ffs.read(&file).is_err());
        assert_eq!(ffs.read(&file).unwrap(), b"payload");
        assert_eq!(ffs.injected().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_is_persistent() {
        let dir = temp_dir("flip");
        let file = dir.join("x");
        let original = vec![0u8; 64];
        fs::write(&file, &original).unwrap();
        let ffs = FaultFs::new(OsIo, 42);
        ffs.plan_read(0, FaultKind::BitFlip);
        let first = ffs.read(&file).unwrap();
        assert_ne!(first, original);
        // The damage survives a clean retry: at-rest corruption.
        let second = ffs.read(&file).unwrap();
        assert_eq!(first, second);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_read_is_transient() {
        let dir = temp_dir("short");
        let file = dir.join("x");
        let data: Vec<u8> = (0..100).collect();
        fs::write(&file, &data).unwrap();
        let ffs = FaultFs::new(OsIo, 7);
        ffs.plan_read(0, FaultKind::ShortRead);
        let first = ffs.read(&file).unwrap();
        assert!(first.len() < data.len());
        assert_eq!(data[..first.len()], first[..]);
        assert_eq!(ffs.read(&file).unwrap(), data);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_persists_a_shorter_file() {
        let dir = temp_dir("trunc");
        let file = dir.join("x");
        fs::write(&file, vec![9u8; 200]).unwrap();
        let ffs = FaultFs::new(OsIo, 3);
        ffs.plan_read(0, FaultKind::Truncate);
        let got = ffs.read(&file).unwrap();
        assert!(got.len() < 200 && got.len() >= 150, "len {}", got.len());
        assert_eq!(fs::read(&file).unwrap().len(), got.len());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_persists_prefix_and_fails() {
        let dir = temp_dir("torn");
        let file = dir.join("x");
        let ffs = FaultFs::new(OsIo, 11);
        ffs.plan_write(0, FaultKind::TornWrite);
        let data: Vec<u8> = (0..=255u8).collect();
        assert!(ffs.write(&file, &data).is_err());
        let on_disk = fs::read(&file).unwrap();
        assert!(on_disk.len() < data.len());
        assert_eq!(data[..on_disk.len()], on_disk[..]);
        // Retry (next write op) goes through.
        ffs.write(&file, &data).unwrap();
        assert_eq!(fs::read(&file).unwrap(), data);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn same_seed_same_faults() {
        for _ in 0..2 {
            let dir = temp_dir("determinism");
            let file = dir.join("x");
            fs::write(&file, vec![5u8; 500]).unwrap();
            let run = |seed: u64| {
                let ffs = FaultFs::new(OsIo, seed);
                ffs.plan_read(0, FaultKind::BitFlip);
                ffs.read(&file).unwrap()
            };
            fs::write(&file, vec![5u8; 500]).unwrap();
            let a = run(99);
            fs::write(&file, vec![5u8; 500]).unwrap();
            let b = run(99);
            fs::write(&file, vec![5u8; 500]).unwrap();
            let c = run(100);
            assert_eq!(a, b);
            assert_ne!(a, c);
            fs::remove_dir_all(&dir).unwrap();
        }
    }

    #[test]
    fn path_class_covers_tmp_twins() {
        assert_eq!(
            PathClass::of(Path::new("/s/snap-00007.colf")),
            PathClass::Colf
        );
        assert_eq!(
            PathClass::of(Path::new("/s/snap-00007.colf.tmp")),
            PathClass::Colf
        );
        assert_eq!(
            PathClass::of(Path::new("/n0/raft/seg-00000001.rlog")),
            PathClass::RaftLog
        );
        assert_eq!(
            PathClass::of(Path::new("/n0/raft/vote-a.rlog.tmp")),
            PathClass::RaftLog
        );
        assert_eq!(PathClass::of(Path::new("/s/README.txt")), PathClass::Other);
    }

    /// Regression: torn-write injection must reach raft log segments.
    /// Before class-scoped plans, a write-index plan could only name a
    /// victim by global position, which in practice always landed on a
    /// colf file; here colf traffic interleaves and the plan still tears
    /// exactly the first `.rlog` write.
    #[test]
    fn class_scoped_torn_write_hits_raft_log_not_colf() {
        let dir = temp_dir("class-torn");
        let colf = dir.join("snap-00001.colf");
        let rlog = dir.join("seg-00000001.rlog");
        let ffs = FaultFs::new(OsIo, 13);
        ffs.plan_write_class(PathClass::RaftLog, 0, FaultKind::TornWrite);
        let data: Vec<u8> = (0..=255u8).collect();
        // Colf writes pass untouched even though they come first (and
        // would have matched any index-0 global plan).
        ffs.write(&colf, &data).unwrap();
        assert_eq!(fs::read(&colf).unwrap(), data);
        // The first raft-log write tears: prefix persisted, call fails.
        assert!(ffs.write(&rlog, &data).is_err());
        let on_disk = fs::read(&rlog).unwrap();
        assert!(on_disk.len() < data.len());
        assert_eq!(data[..on_disk.len()], on_disk[..]);
        // Retry goes through; the plan fired exactly once.
        ffs.write(&rlog, &data).unwrap();
        assert_eq!(fs::read(&rlog).unwrap(), data);
        assert_eq!(ffs.injected().len(), 1);
        assert_eq!(ffs.injected()[0].path, rlog);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn class_scoped_read_faults_count_per_class() {
        let dir = temp_dir("class-read");
        let colf = dir.join("snap-00001.colf");
        let rlog = dir.join("seg-00000001.rlog");
        fs::write(&colf, b"colf bytes").unwrap();
        fs::write(&rlog, b"rlog bytes").unwrap();
        let ffs = FaultFs::new(OsIo, 29);
        // "Second RaftLog read" stays the victim despite interleaving.
        ffs.plan_read_class(PathClass::RaftLog, 1, FaultKind::TransientEio);
        assert_eq!(ffs.read(&colf).unwrap(), b"colf bytes");
        assert_eq!(ffs.read(&rlog).unwrap(), b"rlog bytes"); // rlog read 0
        assert_eq!(ffs.read(&colf).unwrap(), b"colf bytes");
        assert!(ffs.read(&rlog).is_err()); // rlog read 1 fires
        assert_eq!(ffs.read(&rlog).unwrap(), b"rlog bytes"); // transient
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn seeded_plan_is_deterministic_and_nonempty() {
        let a = FaultFs::seeded(OsIo, 1234, 32);
        let b = FaultFs::seeded(OsIo, 1234, 32);
        let sa = a.state.lock().unwrap();
        let sb = b.state.lock().unwrap();
        assert_eq!(sa.read_plan, sb.read_plan);
        assert_eq!(sa.write_plan, sb.write_plan);
        assert!(!sa.read_plan.is_empty());
    }
}
