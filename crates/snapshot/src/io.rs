//! The store's I/O seam.
//!
//! Every byte the [`crate::store::SnapshotStore`] moves goes through a
//! [`StoreIo`] implementation. Production uses [`OsIo`] (plain `std::fs`);
//! the fault-matrix suite swaps in [`crate::faultfs::FaultFs`] to inject
//! bit rot, torn writes, and transient errors deterministically. The
//! trait is object-safe so a store and its prefetch threads can share
//! one handle behind an `Arc<dyn StoreIo>`.

use std::ffi::OsString;
use std::fs;
use std::io::{self, Read, Write};
use std::path::Path;

/// Filesystem operations the snapshot store needs, as an injectable
/// seam. Implementations must be thread-safe: the prefetching reader
/// calls them from a producer thread.
pub trait StoreIo: Send + Sync + std::fmt::Debug {
    /// Reads the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Reads at most `len` bytes from the start of the file. The default
    /// routes through [`StoreIo::read`], so injected read faults apply
    /// to prefix reads too.
    fn read_prefix(&self, path: &Path, len: usize) -> io::Result<Vec<u8>> {
        let mut bytes = self.read(path)?;
        bytes.truncate(len);
        Ok(bytes)
    }

    /// Creates (or replaces) the file at `path` with `bytes`, flushed to
    /// stable storage.
    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()>;

    /// Atomically renames `from` to `to`.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Removes the file at `path`.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// Recursively creates `path` as a directory.
    fn create_dir_all(&self, path: &Path) -> io::Result<()>;

    /// File names (not paths) of directory entries.
    fn list(&self, dir: &Path) -> io::Result<Vec<OsString>>;

    /// Size in bytes of the file at `path`.
    fn len(&self, path: &Path) -> io::Result<u64>;
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct OsIo;

impl StoreIo for OsIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        fs::read(path)
    }

    fn read_prefix(&self, path: &Path, len: usize) -> io::Result<Vec<u8>> {
        let mut file = fs::File::open(path)?;
        let mut bytes = vec![0u8; len];
        let mut filled = 0;
        while filled < len {
            match file.read(&mut bytes[filled..]) {
                Ok(0) => break,
                Ok(n) => filled += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        bytes.truncate(filled);
        Ok(bytes)
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> io::Result<()> {
        let mut f = fs::File::create(path)?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn create_dir_all(&self, path: &Path) -> io::Result<()> {
        fs::create_dir_all(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<OsString>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(dir)? {
            names.push(entry?.file_name());
        }
        Ok(names)
    }

    fn len(&self, path: &Path) -> io::Result<u64> {
        Ok(fs::metadata(path)?.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("spider-io-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn os_io_roundtrip_and_list() {
        let dir = temp_dir("roundtrip");
        let io = OsIo;
        io.create_dir_all(&dir).unwrap();
        let file = dir.join("a.bin");
        io.write(&file, b"hello world").unwrap();
        assert_eq!(io.read(&file).unwrap(), b"hello world");
        assert_eq!(io.read_prefix(&file, 5).unwrap(), b"hello");
        assert_eq!(io.read_prefix(&file, 999).unwrap(), b"hello world");
        assert_eq!(io.len(&file).unwrap(), 11);
        let renamed = dir.join("b.bin");
        io.rename(&file, &renamed).unwrap();
        let names = io.list(&dir).unwrap();
        assert_eq!(names, vec![OsString::from("b.bin")]);
        io.remove(&renamed).unwrap();
        assert!(io.read(&renamed).is_err());
        fs::remove_dir_all(&dir).unwrap();
    }
}
