//! # spider-snapshot
//!
//! The snapshot layer of the Spider II study reproduction: everything
//! between the live file system and the analysis engine.
//!
//! The original pipeline (paper §2.2 and Fig. 4):
//!
//! 1. **LustreDU** walks the entire namespace daily and emits a
//!    pipe-separated (PSV) text snapshot — one record per inode with
//!    `PATH|ATIME|CTIME|MTIME|UID|GID|MODE|INODE|OST`, *no size field*
//!    (collecting sizes would require touching every OSS).
//! 2. Snapshots are **converted to a columnar, compressed binary format**
//!    (Parquet at OLCF; average 119 GB text → 28 GB columnar) before
//!    analysis.
//! 3. The study samples **one snapshot per week** from January 2015 to
//!    August 2016 (72 snapshot dates over 500 days).
//!
//! This crate reproduces each stage:
//!
//! * [`scanner`] — walks a [`spider_fsmeta::FileSystem`] and produces a
//!   [`Snapshot`] sorted by path (deterministic output, merge-joinable);
//! * [`psv`] — the LustreDU text codec;
//! * [`colf`] — "column file", our Parquet stand-in: front-coded path
//!   column plus min-anchored varint integer columns;
//! * [`columns`] — zero-rehydration column views over `colf` bytes
//!   ([`FrameColumns`]): the fast path that skips row materialization
//!   entirely, decoding paths into a contiguous arena;
//! * [`store`] — an on-disk collection of weekly snapshots;
//! * [`diff`] — adjacent-snapshot comparison classifying every regular
//!   file as new / deleted / read-only / updated / untouched, exactly the
//!   categories of Fig. 13;
//! * [`delta`] — column-level day-over-day delta frames persisted as
//!   sidecars, the substrate for O(changed rows) incremental aggregate
//!   maintenance.

#![warn(missing_docs)]

pub mod colf;
pub mod columns;
pub mod delta;
pub mod diff;
pub mod faultfs;
pub mod io;
pub mod pred;
pub mod psv;
pub mod record;
pub mod scanner;
pub mod snapshot;
pub mod store;
pub mod varint;
pub mod xxh;

pub use columns::FrameColumns;
pub use delta::{DeltaError, DeltaRow, FrameDelta};
pub use diff::{AccessBreakdown, DiffGap, SnapshotDiff};
pub use faultfs::{FaultFs, FaultKind, PathClass};
pub use io::{OsIo, StoreIo};
pub use pred::Pred;
pub use record::SnapshotRecord;
pub use scanner::scan;
pub use snapshot::Snapshot;
pub use store::{PeerHeal, RetryPolicy, SnapshotStore, StoreHealth};
