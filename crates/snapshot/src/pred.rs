//! Typed, inspectable scan predicates — the pushdown contract between
//! the query surface and the `colf` decoder.
//!
//! An opaque closure can only be *run*; a [`Pred`] can be *looked at*.
//! That inspectability is what predicate pushdown needs: the encoder
//! writes per-zone min/max statistics and an extension dictionary into
//! every v3 `colf` file, and the decoder proves entire zones irrelevant
//! against a `Pred` without touching their bytes. The closure form
//! (`Scan::filter`) remains the escape hatch for filters that cannot be
//! expressed here; the two compose freely in one scan.
//!
//! Semantics are deliberately pinned to the *frame* column types so the
//! pushdown path and the closure path agree row-for-row:
//!
//! * every range variant is **inclusive** on both ends;
//! * `Depth` and `Stripes` compare against the frame's u16-saturated
//!   columns (`min(value, 65535)`), exactly like
//!   `SnapshotFrame::{depth, stripe_count}`;
//! * `Stripes` is the study's **size proxy** — LustreDU records carry no
//!   size field (collecting sizes would touch every OSS), so stripe
//!   width is the only capacity signal a snapshot has;
//! * extension matching follows the paper's §4.1.3 rule via
//!   `spider_fsmeta::inode::extension_of` (the substring after the final
//!   dot, unless the dot leads or trails the name).

use crate::record::SnapshotRecord;
use crate::varint::put_uvarint;
use crate::xxh::section_digest;
use std::ops::{Bound, RangeBounds};

/// Saturation bound shared with `SnapshotFrame`'s u16 columns.
const U16_CAP: u32 = u16::MAX as u32;

/// A typed scan predicate over snapshot rows.
///
/// Build leaves with the range constructors ([`Pred::uid`],
/// [`Pred::mtime`], ...) or the extension constructors ([`Pred::ext`],
/// [`Pred::ext_in`], [`Pred::ext_none`]), and combine them with
/// [`Pred::and`] / [`Pred::or`]. All ranges are inclusive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pred {
    /// Observation day within `[lo, hi]`.
    Day {
        /// Inclusive lower bound.
        lo: u32,
        /// Inclusive upper bound.
        hi: u32,
    },
    /// Owner uid within `[lo, hi]`.
    Uid {
        /// Inclusive lower bound.
        lo: u32,
        /// Inclusive upper bound.
        hi: u32,
    },
    /// Owner gid (project allocation) within `[lo, hi]`.
    Gid {
        /// Inclusive lower bound.
        lo: u32,
        /// Inclusive upper bound.
        hi: u32,
    },
    /// Path depth (paper counting convention, u16-saturated) within
    /// `[lo, hi]`.
    Depth {
        /// Inclusive lower bound.
        lo: u32,
        /// Inclusive upper bound.
        hi: u32,
    },
    /// Stripe count (u16-saturated; 0 for directories) within
    /// `[lo, hi]` — the no-size-field study's size proxy.
    Stripes {
        /// Inclusive lower bound.
        lo: u32,
        /// Inclusive upper bound.
        hi: u32,
    },
    /// Modification time within `[lo, hi]`.
    Mtime {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// Access time within `[lo, hi]`.
    Atime {
        /// Inclusive lower bound.
        lo: u64,
        /// Inclusive upper bound.
        hi: u64,
    },
    /// Extension is one of the given strings (sorted, deduplicated).
    ExtIn(Vec<String>),
    /// The name has no extension (directories, `Makefile`, `.bashrc`).
    ExtNone,
    /// Every child matches (empty = matches everything).
    And(Vec<Pred>),
    /// At least one child matches (empty = matches nothing).
    Or(Vec<Pred>),
}

fn bounds_u32(r: impl RangeBounds<u32>) -> (u32, u32) {
    let lo = match r.start_bound() {
        Bound::Included(&v) => v,
        Bound::Excluded(&v) => v.saturating_add(1),
        Bound::Unbounded => 0,
    };
    let hi = match r.end_bound() {
        Bound::Included(&v) => v,
        Bound::Excluded(&v) => v.saturating_sub(1),
        Bound::Unbounded => u32::MAX,
    };
    (lo, hi)
}

fn bounds_u64(r: impl RangeBounds<u64>) -> (u64, u64) {
    let lo = match r.start_bound() {
        Bound::Included(&v) => v,
        Bound::Excluded(&v) => v.saturating_add(1),
        Bound::Unbounded => 0,
    };
    let hi = match r.end_bound() {
        Bound::Included(&v) => v,
        Bound::Excluded(&v) => v.saturating_sub(1),
        Bound::Unbounded => u64::MAX,
    };
    (lo, hi)
}

impl Pred {
    /// Rows observed on a day in `range`.
    pub fn day(range: impl RangeBounds<u32>) -> Pred {
        let (lo, hi) = bounds_u32(range);
        Pred::Day { lo, hi }
    }

    /// Rows owned by a uid in `range`.
    pub fn uid(range: impl RangeBounds<u32>) -> Pred {
        let (lo, hi) = bounds_u32(range);
        Pred::Uid { lo, hi }
    }

    /// Rows owned by a gid in `range`.
    pub fn gid(range: impl RangeBounds<u32>) -> Pred {
        let (lo, hi) = bounds_u32(range);
        Pred::Gid { lo, hi }
    }

    /// Rows at a path depth in `range`.
    pub fn depth(range: impl RangeBounds<u32>) -> Pred {
        let (lo, hi) = bounds_u32(range);
        Pred::Depth { lo, hi }
    }

    /// Rows striped across a count of OSTs in `range` (the size proxy).
    pub fn stripes(range: impl RangeBounds<u32>) -> Pred {
        let (lo, hi) = bounds_u32(range);
        Pred::Stripes { lo, hi }
    }

    /// Rows modified within `range` (Unix seconds).
    pub fn mtime(range: impl RangeBounds<u64>) -> Pred {
        let (lo, hi) = bounds_u64(range);
        Pred::Mtime { lo, hi }
    }

    /// Rows accessed within `range` (Unix seconds).
    pub fn atime(range: impl RangeBounds<u64>) -> Pred {
        let (lo, hi) = bounds_u64(range);
        Pred::Atime { lo, hi }
    }

    /// Rows with exactly this extension.
    pub fn ext(ext: impl Into<String>) -> Pred {
        Pred::ext_in([ext.into()])
    }

    /// Rows whose extension is any of the given ones. The list is
    /// sorted and deduplicated so equal predicates fingerprint equally.
    pub fn ext_in<I, S>(exts: I) -> Pred
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut names: Vec<String> = exts.into_iter().map(Into::into).collect();
        names.sort_unstable();
        names.dedup();
        Pred::ExtIn(names)
    }

    /// Rows whose name has no extension.
    pub fn ext_none() -> Pred {
        Pred::ExtNone
    }

    /// Conjunction of `preds` (empty = always true).
    pub fn and(preds: Vec<Pred>) -> Pred {
        Pred::And(preds)
    }

    /// Disjunction of `preds` (empty = always false).
    pub fn or(preds: Vec<Pred>) -> Pred {
        Pred::Or(preds)
    }

    /// Whether *any* row of the given observation day could match —
    /// the loader's day-level pruning test, answerable from the store
    /// index alone, before the day's file is even opened. Conservative:
    /// only `Day` leaves constrain it.
    pub fn matches_day(&self, day: u32) -> bool {
        match self {
            Pred::Day { lo, hi } => (*lo..=*hi).contains(&day),
            Pred::And(ps) => ps.iter().all(|p| p.matches_day(day)),
            Pred::Or(ps) => ps.iter().any(|p| p.matches_day(day)),
            _ => true,
        }
    }

    /// Reference row evaluation against a materialized record — the
    /// oracle the equivalence suites compare every other evaluation path
    /// (frame closure, dictionary-code, zone-pruned) against.
    pub fn matches_record(&self, r: &SnapshotRecord, day: u32) -> bool {
        match self {
            Pred::Day { lo, hi } => (*lo..=*hi).contains(&day),
            Pred::Uid { lo, hi } => (*lo..=*hi).contains(&r.uid),
            Pred::Gid { lo, hi } => (*lo..=*hi).contains(&r.gid),
            Pred::Depth { lo, hi } => (*lo..=*hi).contains(&r.depth().min(U16_CAP)),
            Pred::Stripes { lo, hi } => (*lo..=*hi).contains(&r.stripe_count().min(U16_CAP)),
            Pred::Mtime { lo, hi } => (*lo..=*hi).contains(&r.mtime),
            Pred::Atime { lo, hi } => (*lo..=*hi).contains(&r.atime),
            Pred::ExtIn(names) => match r.extension() {
                Some(e) => names.iter().any(|n| n == e),
                None => false,
            },
            Pred::ExtNone => r.extension().is_none(),
            Pred::And(ps) => ps.iter().all(|p| p.matches_record(r, day)),
            Pred::Or(ps) => ps.iter().any(|p| p.matches_record(r, day)),
        }
    }

    fn write_fp(&self, out: &mut Vec<u8>) {
        match self {
            Pred::Day { lo, hi } => {
                out.push(1);
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
            Pred::Uid { lo, hi } => {
                out.push(2);
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
            Pred::Gid { lo, hi } => {
                out.push(3);
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
            Pred::Depth { lo, hi } => {
                out.push(4);
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
            Pred::Stripes { lo, hi } => {
                out.push(5);
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
            Pred::Mtime { lo, hi } => {
                out.push(6);
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
            Pred::Atime { lo, hi } => {
                out.push(7);
                out.extend_from_slice(&lo.to_le_bytes());
                out.extend_from_slice(&hi.to_le_bytes());
            }
            Pred::ExtIn(names) => {
                out.push(8);
                put_uvarint(out, names.len() as u64);
                for n in names {
                    put_uvarint(out, n.len() as u64);
                    out.extend_from_slice(n.as_bytes());
                }
            }
            Pred::ExtNone => out.push(9),
            Pred::And(ps) => {
                out.push(10);
                put_uvarint(out, ps.len() as u64);
                for p in ps {
                    p.write_fp(out);
                }
            }
            Pred::Or(ps) => {
                out.push(11);
                put_uvarint(out, ps.len() as u64);
                for p in ps {
                    p.write_fp(out);
                }
            }
        }
    }

    /// Stable, non-zero structural fingerprint. Partial (late-
    /// materialized) frames are cached under `(day, bytes digest,
    /// fingerprint)`, so a pruned decode can never alias a full one;
    /// zero is reserved for full frames.
    pub fn fingerprint(&self) -> u64 {
        let mut bytes = vec![b'P'];
        self.write_fp(&mut bytes);
        match section_digest(&bytes) {
            0 => 0x9E37_79B9_7F4A_7C15,
            h => h,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(path: &str, uid: u32, mtime: u64, stripes: usize) -> SnapshotRecord {
        SnapshotRecord {
            path: path.to_string(),
            atime: mtime + 5,
            ctime: mtime,
            mtime,
            uid,
            gid: uid * 10,
            mode: 0o100664,
            ino: 1,
            osts: (0..stripes).map(|k| (k as u16, k as u32)).collect(),
        }
    }

    #[test]
    fn range_constructors_are_inclusive() {
        assert_eq!(Pred::uid(3..=7), Pred::Uid { lo: 3, hi: 7 });
        assert_eq!(Pred::uid(3..7), Pred::Uid { lo: 3, hi: 6 });
        assert_eq!(
            Pred::uid(3..),
            Pred::Uid {
                lo: 3,
                hi: u32::MAX
            }
        );
        assert_eq!(
            Pred::uid(..),
            Pred::Uid {
                lo: 0,
                hi: u32::MAX
            }
        );
        assert_eq!(Pred::mtime(10..=20), Pred::Mtime { lo: 10, hi: 20 });
    }

    #[test]
    fn ext_in_is_canonical() {
        assert_eq!(
            Pred::ext_in(["nc", "h5", "nc"]),
            Pred::ExtIn(vec!["h5".to_string(), "nc".to_string()])
        );
        assert_eq!(
            Pred::ext_in(["h5", "nc"]).fingerprint(),
            Pred::ext_in(["nc", "h5", "nc"]).fingerprint()
        );
    }

    #[test]
    fn record_oracle() {
        let r = rec("/p/u/data.h5", 42, 1_000, 4);
        assert!(Pred::uid(40..=45).matches_record(&r, 0));
        assert!(!Pred::uid(43..).matches_record(&r, 0));
        assert!(Pred::ext("h5").matches_record(&r, 0));
        assert!(!Pred::ext("nc").matches_record(&r, 0));
        assert!(!Pred::ext_none().matches_record(&r, 0));
        assert!(Pred::ext_none().matches_record(&rec("/p/u/Makefile", 1, 0, 0), 0));
        assert!(Pred::stripes(4..=4).matches_record(&r, 0));
        assert!(Pred::depth(4..=4).matches_record(&r, 0)); // /p/u/data.h5 = 3 + root
        assert!(Pred::and(vec![Pred::uid(42..=42), Pred::ext("h5")]).matches_record(&r, 0));
        assert!(!Pred::and(vec![Pred::uid(42..=42), Pred::ext("nc")]).matches_record(&r, 0));
        assert!(Pred::or(vec![Pred::uid(0..=0), Pred::ext("h5")]).matches_record(&r, 0));
        assert!(Pred::and(vec![]).matches_record(&r, 0));
        assert!(!Pred::or(vec![]).matches_record(&r, 0));
    }

    #[test]
    fn day_pruning_is_conservative() {
        let p = Pred::and(vec![Pred::day(10..=20), Pred::uid(1..)]);
        assert!(p.matches_day(15));
        assert!(!p.matches_day(9));
        assert!(!p.matches_day(21));
        // Or of two day windows.
        let p = Pred::or(vec![Pred::day(0..=5), Pred::day(30..=35)]);
        assert!(p.matches_day(3) && p.matches_day(31));
        assert!(!p.matches_day(10));
        // Non-day leaves never prune a day.
        assert!(Pred::uid(0..=0).matches_day(999));
    }

    #[test]
    fn fingerprints_discriminate_and_are_stable() {
        let a = Pred::and(vec![Pred::uid(1..=5), Pred::ext("h5")]);
        let b = Pred::and(vec![Pred::uid(1..=5), Pred::ext("nc")]);
        let c = Pred::or(vec![Pred::uid(1..=5), Pred::ext("h5")]);
        assert_eq!(a.fingerprint(), a.clone().fingerprint());
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_ne!(
            Pred::uid(1..=2).fingerprint(),
            Pred::gid(1..=2).fingerprint()
        );
        assert_ne!(a.fingerprint(), 0, "zero is reserved for full frames");
    }
}
