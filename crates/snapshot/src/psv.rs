//! The LustreDU pipe-separated text codec.
//!
//! One record per line:
//!
//! ```text
//! PATH|ATIME|CTIME|MTIME|UID|GID|MODE|INODE|OST
//! /lustre/atlas1/p/u/f.dat|1478274632|1471400961|1471400961|13133|2329|100664|1073636389|755:190da77,720:19d4fe1
//! ```
//!
//! `MODE` is octal; OST entries are `ost:objid_hex` pairs, empty for
//! directories. This is the "original snapshot file" format of Fig. 4,
//! which the study converts to a columnar format before analysis — we
//! reproduce both directions to measure the same conversion.

use crate::record::SnapshotRecord;
use crate::snapshot::Snapshot;
use std::fmt::Write as _;
use std::io::{self, BufRead, Write};

/// Errors produced when parsing PSV text.
#[derive(Debug)]
pub enum PsvError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A malformed line (1-based line number and description).
    Parse(usize, String),
    /// Records were not sorted by path (snapshot invariant).
    Unsorted(String),
}

impl std::fmt::Display for PsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PsvError::Io(e) => write!(f, "I/O error: {e}"),
            PsvError::Parse(line, msg) => write!(f, "PSV parse error on line {line}: {msg}"),
            PsvError::Unsorted(msg) => write!(f, "PSV records unsorted: {msg}"),
        }
    }
}

impl std::error::Error for PsvError {}

impl From<io::Error> for PsvError {
    fn from(e: io::Error) -> Self {
        PsvError::Io(e)
    }
}

/// Appends one record as a PSV line (without trailing newline handling —
/// the caller writes the `\n`).
pub fn format_record(record: &SnapshotRecord, out: &mut String) {
    out.push_str(&record.path);
    let _ = write!(
        out,
        "|{}|{}|{}|{}|{}|{:o}|{}|",
        record.atime, record.ctime, record.mtime, record.uid, record.gid, record.mode, record.ino
    );
    for (i, (ost, obj)) in record.osts.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{ost}:{obj:x}");
    }
}

/// Writes a snapshot as PSV text. The header line carries the snapshot
/// day and scan time (`#day|taken_at`), which LustreDU encodes in the
/// file name instead.
pub fn write_psv(snapshot: &Snapshot, mut out: impl Write) -> io::Result<()> {
    let mut line = String::with_capacity(160);
    let _ = writeln!(line, "#{}|{}", snapshot.day(), snapshot.taken_at());
    out.write_all(line.as_bytes())?;
    for record in snapshot.records() {
        line.clear();
        format_record(record, &mut line);
        line.push('\n');
        out.write_all(line.as_bytes())?;
    }
    Ok(())
}

/// Parses one PSV data line.
pub fn parse_record(line: &str, lineno: usize) -> Result<SnapshotRecord, PsvError> {
    let mut fields = line.split('|');
    let mut next = |name: &str| {
        fields
            .next()
            .ok_or_else(|| PsvError::Parse(lineno, format!("missing field {name}")))
    };
    let path = next("PATH")?.to_string();
    if path.is_empty() {
        return Err(PsvError::Parse(lineno, "empty path".into()));
    }
    let parse_u64 = |s: &str, name: &str| {
        s.parse::<u64>()
            .map_err(|e| PsvError::Parse(lineno, format!("bad {name} {s:?}: {e}")))
    };
    let atime = parse_u64(next("ATIME")?, "ATIME")?;
    let ctime = parse_u64(next("CTIME")?, "CTIME")?;
    let mtime = parse_u64(next("MTIME")?, "MTIME")?;
    let uid = parse_u64(next("UID")?, "UID")? as u32;
    let gid = parse_u64(next("GID")?, "GID")? as u32;
    let mode_str = next("MODE")?;
    let mode = u32::from_str_radix(mode_str, 8)
        .map_err(|e| PsvError::Parse(lineno, format!("bad MODE {mode_str:?}: {e}")))?;
    let ino = parse_u64(next("INODE")?, "INODE")?;
    let ost_field = next("OST")?;
    let mut osts = Vec::new();
    if !ost_field.is_empty() {
        for pair in ost_field.split(',') {
            let (ost, obj) = pair
                .split_once(':')
                .ok_or_else(|| PsvError::Parse(lineno, format!("bad OST pair {pair:?}")))?;
            let ost = ost
                .parse::<u16>()
                .map_err(|e| PsvError::Parse(lineno, format!("bad OST id {ost:?}: {e}")))?;
            let obj = u32::from_str_radix(obj, 16)
                .map_err(|e| PsvError::Parse(lineno, format!("bad object id {obj:?}: {e}")))?;
            osts.push((ost, obj));
        }
    }
    if fields.next().is_some() {
        return Err(PsvError::Parse(lineno, "trailing fields".into()));
    }
    Ok(SnapshotRecord {
        path,
        atime,
        ctime,
        mtime,
        uid,
        gid,
        mode,
        ino,
        osts,
    })
}

/// Reads a PSV snapshot written by [`write_psv`].
pub fn read_psv(input: impl BufRead) -> Result<Snapshot, PsvError> {
    let mut lines = input.lines();
    let header = lines
        .next()
        .ok_or_else(|| PsvError::Parse(0, "empty input".into()))??;
    let header = header
        .strip_prefix('#')
        .ok_or_else(|| PsvError::Parse(1, "missing #day|taken_at header".into()))?;
    let (day, taken_at) = header
        .split_once('|')
        .ok_or_else(|| PsvError::Parse(1, "malformed header".into()))?;
    let day = day
        .parse::<u32>()
        .map_err(|e| PsvError::Parse(1, format!("bad day: {e}")))?;
    let taken_at = taken_at
        .parse::<u64>()
        .map_err(|e| PsvError::Parse(1, format!("bad taken_at: {e}")))?;

    let mut records = Vec::new();
    for (i, line) in lines.enumerate() {
        let line = line?;
        if line.is_empty() {
            continue;
        }
        records.push(parse_record(&line, i + 2)?);
    }
    Snapshot::from_sorted(day, taken_at, records).map_err(PsvError::Unsorted)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_snapshot() -> Snapshot {
        let mk = |path: &str, mode: u32, osts: Vec<(u16, u32)>| SnapshotRecord {
            path: path.to_string(),
            atime: 1_478_274_632,
            ctime: 1_471_400_961,
            mtime: 1_471_400_961,
            uid: 13_133,
            gid: 2_329,
            mode,
            ino: 1_073_636_389,
            osts,
        };
        Snapshot::new(
            7,
            1_421_000_000,
            vec![
                mk("/lustre/atlas1/p", 0o040770, vec![]),
                mk(
                    "/lustre/atlas1/p/f.dat",
                    0o100664,
                    vec![(755, 0x190da77), (720, 0x19d4fe1)],
                ),
                mk("/lustre/atlas1/p/g", 0o100600, vec![(3, 0xabc)]),
            ],
        )
    }

    #[test]
    fn roundtrip() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        write_psv(&snap, &mut buf).unwrap();
        let parsed = read_psv(buf.as_slice()).unwrap();
        assert_eq!(parsed, snap);
    }

    #[test]
    fn line_format_matches_lustredu_shape() {
        let snap = sample_snapshot();
        let mut buf = Vec::new();
        write_psv(&snap, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "#7|1421000000");
        assert_eq!(
            lines[2],
            "/lustre/atlas1/p/f.dat|1478274632|1471400961|1471400961|13133|2329|100664|1073636389|755:190da77,720:19d4fe1"
        );
        // Directory: empty OST list, octal dir mode.
        assert!(lines[1].ends_with("|40770|1073636389|"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(parse_record("", 1).is_err());
        assert!(parse_record("/p|x|1|1|1|1|100644|1|", 1).is_err()); // bad atime
        assert!(parse_record("/p|1|1|1|1|1|999999999|1|", 1).is_err()); // bad octal? (valid octal digits required)
        assert!(parse_record("/p|1|1|1|1|1|100644|1|badpair", 1).is_err());
        assert!(parse_record("/p|1|1|1|1|1|100644|1||extra", 1).is_err());
        assert!(parse_record("/p|1|1|1", 1).is_err()); // missing fields
    }

    #[test]
    fn read_rejects_missing_header() {
        let err = read_psv("/p|1|1|1|1|1|100644|1|\n".as_bytes()).unwrap_err();
        assert!(matches!(err, PsvError::Parse(1, _)));
    }

    #[test]
    fn read_rejects_unsorted() {
        let text = "#0|0\n/z|1|1|1|1|1|100644|1|\n/a|1|1|1|1|1|100644|1|\n";
        assert!(matches!(
            read_psv(text.as_bytes()).unwrap_err(),
            PsvError::Unsorted(_)
        ));
    }

    #[test]
    fn blank_lines_are_skipped() {
        let text = "#0|0\n/a|1|1|1|1|1|100644|1|\n\n/b|1|1|1|1|1|100644|1|\n";
        let snap = read_psv(text.as_bytes()).unwrap();
        assert_eq!(snap.len(), 2);
    }
}
