//! The snapshot record — one line of a LustreDU scan.

use serde::{Deserialize, Serialize};
use spider_fsmeta::{FileKind, Mode};

/// One scanned metadata record, mirroring Fig. 2 of the paper:
///
/// ```text
/// PATH  | /proj/user/E40/E03/D07/C07/B02/A00/f.00000245
/// ATIME | 1478274632
/// CTIME | 1471400961
/// MTIME | 1471400961
/// UID   | 13133
/// GID   | 2329
/// MODE  | 100664
/// INODE | 1073636389
/// OST   | 755:190da77,720:19d4fe1,...
/// ```
///
/// There is deliberately **no size field** — LustreDU omits it because
/// collecting sizes requires querying every OSS holding the striped file.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SnapshotRecord {
    /// Full path from the mount root.
    pub path: String,
    /// Last access time (Unix seconds).
    pub atime: u64,
    /// Last status-change time.
    pub ctime: u64,
    /// Last modification time.
    pub mtime: u64,
    /// Owning user id.
    pub uid: u32,
    /// Owning group id (project allocation at OLCF).
    pub gid: u32,
    /// Full mode word (type + permission bits).
    pub mode: u32,
    /// Inode number.
    pub ino: u64,
    /// `(ost, object)` stripe pairs; empty for directories.
    pub osts: Vec<(u16, u32)>,
}

impl SnapshotRecord {
    /// File kind derived from the mode's type bits; `None` for types the
    /// substrate does not model.
    pub fn kind(&self) -> Option<FileKind> {
        Mode(self.mode).kind()
    }

    /// True for regular files.
    pub fn is_file(&self) -> bool {
        self.kind() == Some(FileKind::Regular)
    }

    /// True for directories.
    pub fn is_dir(&self) -> bool {
        self.kind() == Some(FileKind::Directory)
    }

    /// The final path component.
    pub fn name(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }

    /// File-name extension under the paper's rules (§4.1.3): the substring
    /// after the final dot, unless the dot leads or trails the name.
    pub fn extension(&self) -> Option<&str> {
        spider_fsmeta::inode::extension_of(self.name())
    }

    /// Path depth in the paper's counting convention: number of `/`
    /// separated components plus the implicit `/root` prefix, so
    /// `/lustre/atlas1/<proj>/<user>` has depth 5 (the Fig. 8a knee).
    pub fn depth(&self) -> u32 {
        self.path.split('/').filter(|c| !c.is_empty()).count() as u32 + 1
    }

    /// Stripe count (0 for directories).
    pub fn stripe_count(&self) -> u32 {
        self.osts.len() as u32
    }

    /// File age in the paper's Fig. 16 sense: `atime - mtime`, i.e. how
    /// long past its last modification the file was still being read.
    /// Clamped at zero (mtime can exceed atime after a write with no
    /// subsequent read).
    pub fn file_age_secs(&self) -> u64 {
        self.atime.saturating_sub(self.mtime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SnapshotRecord {
        SnapshotRecord {
            path: "/lustre/atlas1/chp101/u4821/run7/out.xyz".to_string(),
            atime: 1_478_274_632,
            ctime: 1_471_400_961,
            mtime: 1_471_400_961,
            uid: 13_133,
            gid: 2_329,
            mode: 0o100664,
            ino: 1_073_636_389,
            osts: vec![(755, 0x190da77), (720, 0x19d4fe1)],
        }
    }

    #[test]
    fn kind_from_mode() {
        let mut r = sample();
        assert!(r.is_file());
        assert!(!r.is_dir());
        r.mode = 0o040775;
        assert!(r.is_dir());
        r.mode = 0o120777; // symlink: unmodeled
        assert_eq!(r.kind(), None);
        assert!(!r.is_file() && !r.is_dir());
    }

    #[test]
    fn name_and_extension() {
        let r = sample();
        assert_eq!(r.name(), "out.xyz");
        assert_eq!(r.extension(), Some("xyz"));
    }

    #[test]
    fn depth_counts_root_prefix() {
        let r = sample();
        // lustre, atlas1, chp101, u4821, run7, out.xyz = 6 components + root.
        assert_eq!(r.depth(), 7);
        let user_dir = SnapshotRecord {
            path: "/lustre/atlas1/chp101/u4821".to_string(),
            mode: 0o040770,
            ..sample()
        };
        assert_eq!(user_dir.depth(), 5); // the paper's "user dirs at depth 5"
    }

    #[test]
    fn file_age_clamps_at_zero() {
        let mut r = sample();
        assert_eq!(r.file_age_secs(), 1_478_274_632 - 1_471_400_961);
        r.mtime = r.atime + 100;
        assert_eq!(r.file_age_secs(), 0);
    }

    #[test]
    fn stripe_count() {
        let r = sample();
        assert_eq!(r.stripe_count(), 2);
    }
}
