//! The LustreDU scanner: walks a live file system and emits a snapshot.
//!
//! The real LustreDU walks up to a billion inodes per night; ours walks the
//! in-memory substrate. The scan is the hot path of the simulation driver
//! (executed per snapshot day), so it does a single pass over the inode
//! table and reconstructs paths without intermediate allocations beyond the
//! output records themselves.

use crate::record::SnapshotRecord;
use crate::snapshot::Snapshot;
use spider_fsmeta::FileSystem;

/// Scans every live inode (the mount root itself is excluded — LustreDU
/// lists the contents of the file system, and the analysis treats
/// `/lustre/atlas1` as the origin, not as data).
pub fn scan(fs: &FileSystem, day: u32) -> Snapshot {
    let root = fs.root();
    let mut records = Vec::with_capacity(fs.entry_count() as usize);
    for inode in fs.iter() {
        if inode.ino == root {
            continue;
        }
        let path = fs.path(inode.ino).expect("live inode has a path");
        records.push(SnapshotRecord {
            path,
            atime: inode.atime,
            ctime: inode.ctime,
            mtime: inode.mtime,
            uid: inode.uid.0,
            gid: inode.gid.0,
            mode: inode.mode().0,
            ino: inode.ino.0,
            osts: inode
                .stripes
                .as_ref()
                .map(|s| {
                    s.osts
                        .iter()
                        .zip(s.objects.iter())
                        .map(|(o, &obj)| (o.0, obj))
                        .collect()
                })
                .unwrap_or_default(),
        });
    }
    Snapshot::new(day, fs.now(), records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spider_fsmeta::{Gid, OstPool, SimClock, Uid};

    fn build_fs() -> FileSystem {
        let mut fs = FileSystem::with_parts(SimClock::new(), OstPool::new(16));
        let root = fs.root();
        let proj = fs.mkdir(root, "bip001", Uid(0), Gid(100)).unwrap();
        let user = fs.mkdir(proj, "u17", Uid(17), Gid(100)).unwrap();
        fs.create(user, "traj.bz2", Uid(17), Gid(100), None)
            .unwrap();
        fs.create(user, "traj.xyz", Uid(17), Gid(100), Some(8))
            .unwrap();
        fs
    }

    #[test]
    fn scan_captures_all_entries_except_root() {
        let fs = build_fs();
        let snap = scan(&fs, 0);
        assert_eq!(snap.len(), 4); // 2 dirs + 2 files
        assert_eq!(snap.file_count(), 2);
        assert_eq!(snap.dir_count(), 2);
        assert!(snap.find("/lustre/atlas1").is_none());
    }

    #[test]
    fn records_carry_metadata_faithfully() {
        let fs = build_fs();
        let snap = scan(&fs, 5);
        let r = snap.find("/lustre/atlas1/bip001/u17/traj.xyz").unwrap();
        assert_eq!(r.uid, 17);
        assert_eq!(r.gid, 100);
        assert!(r.is_file());
        assert_eq!(r.stripe_count(), 8);
        assert_eq!(r.extension(), Some("xyz"));
        assert_eq!(r.atime, fs.now());
        assert_eq!(snap.day(), 5);
        assert_eq!(snap.taken_at(), fs.now());

        let d = snap.find("/lustre/atlas1/bip001/u17").unwrap();
        assert!(d.is_dir());
        assert_eq!(d.stripe_count(), 0);
        assert_eq!(d.depth(), 5);
    }

    #[test]
    fn scan_is_deterministic() {
        let fs = build_fs();
        assert_eq!(scan(&fs, 0), scan(&fs, 0));
    }

    #[test]
    fn scan_reflects_deletions() {
        let mut fs = build_fs();
        let user = {
            let proj = fs.lookup(fs.root(), "bip001").unwrap().unwrap();
            fs.lookup(proj, "u17").unwrap().unwrap()
        };
        let f = fs.lookup(user, "traj.bz2").unwrap().unwrap();
        fs.unlink(f).unwrap();
        let snap = scan(&fs, 1);
        assert!(snap.find("/lustre/atlas1/bip001/u17/traj.bz2").is_none());
        assert_eq!(snap.file_count(), 1);
    }

    #[test]
    fn empty_fs_scans_to_empty_snapshot() {
        let fs = FileSystem::with_parts(SimClock::new(), OstPool::new(4));
        let snap = scan(&fs, 0);
        assert!(snap.is_empty());
    }
}
