//! A full-namespace snapshot, sorted by path.

use crate::record::SnapshotRecord;
use serde::{Deserialize, Serialize};

/// One LustreDU snapshot: every live inode's metadata at a point in time,
/// sorted by path.
///
/// The sort order is a structural invariant: the diff engine merge-joins
/// adjacent snapshots by path, and the `colf` path column is front-coded,
/// both of which require sorted input. [`Snapshot::new`] sorts; the
/// deserializers validate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Snapshot {
    day: u32,
    taken_at: u64,
    records: Vec<SnapshotRecord>,
}

impl Snapshot {
    /// Builds a snapshot, sorting records by path.
    ///
    /// # Panics
    /// Panics if two records share a path (a namespace cannot contain
    /// duplicate paths; upstream scan bugs should fail loudly).
    pub fn new(day: u32, taken_at: u64, mut records: Vec<SnapshotRecord>) -> Self {
        records.sort_unstable_by(|a, b| a.path.cmp(&b.path));
        for w in records.windows(2) {
            assert_ne!(
                w[0].path, w[1].path,
                "duplicate path in snapshot: {}",
                w[0].path
            );
        }
        Snapshot {
            day,
            taken_at,
            records,
        }
    }

    /// Builds from records already sorted by path (validated).
    ///
    /// Used by the deserializers, which write records in sorted order.
    pub fn from_sorted(
        day: u32,
        taken_at: u64,
        records: Vec<SnapshotRecord>,
    ) -> Result<Self, String> {
        for w in records.windows(2) {
            if w[0].path >= w[1].path {
                return Err(format!(
                    "records not strictly sorted by path: {:?} >= {:?}",
                    w[0].path, w[1].path
                ));
            }
        }
        Ok(Snapshot {
            day,
            taken_at,
            records,
        })
    }

    /// Simulation day the snapshot was taken.
    pub fn day(&self) -> u32 {
        self.day
    }

    /// Unix time of the scan.
    pub fn taken_at(&self) -> u64 {
        self.taken_at
    }

    /// The records, sorted by path.
    pub fn records(&self) -> &[SnapshotRecord] {
        &self.records
    }

    /// Number of records (files + directories).
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the namespace was empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Count of regular files.
    pub fn file_count(&self) -> u64 {
        self.records.iter().filter(|r| r.is_file()).count() as u64
    }

    /// Count of directories.
    pub fn dir_count(&self) -> u64 {
        self.records.iter().filter(|r| r.is_dir()).count() as u64
    }

    /// Binary-search lookup by exact path.
    pub fn find(&self, path: &str) -> Option<&SnapshotRecord> {
        self.records
            .binary_search_by(|r| r.path.as_str().cmp(path))
            .ok()
            .map(|i| &self.records[i])
    }

    /// Consumes the snapshot, returning its records.
    pub fn into_records(self) -> Vec<SnapshotRecord> {
        self.records
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(path: &str, mode: u32) -> SnapshotRecord {
        SnapshotRecord {
            path: path.to_string(),
            atime: 10,
            ctime: 10,
            mtime: 10,
            uid: 1,
            gid: 1,
            mode,
            ino: 1,
            osts: vec![],
        }
    }

    #[test]
    fn new_sorts_by_path() {
        let s = Snapshot::new(
            0,
            100,
            vec![
                rec("/b", 0o100644),
                rec("/a", 0o100644),
                rec("/c", 0o040755),
            ],
        );
        let paths: Vec<&str> = s.records().iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, vec!["/a", "/b", "/c"]);
        assert_eq!(s.file_count(), 2);
        assert_eq!(s.dir_count(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate path")]
    fn duplicate_paths_panic() {
        let _ = Snapshot::new(0, 0, vec![rec("/a", 0o100644), rec("/a", 0o100644)]);
    }

    #[test]
    fn from_sorted_validates() {
        assert!(Snapshot::from_sorted(0, 0, vec![rec("/a", 0), rec("/b", 0)]).is_ok());
        assert!(Snapshot::from_sorted(0, 0, vec![rec("/b", 0), rec("/a", 0)]).is_err());
        assert!(Snapshot::from_sorted(0, 0, vec![rec("/a", 0), rec("/a", 0)]).is_err());
    }

    #[test]
    fn find_by_path() {
        let s = Snapshot::new(0, 0, vec![rec("/x/1", 0o100644), rec("/x/2", 0o100644)]);
        assert_eq!(s.find("/x/2").unwrap().path, "/x/2");
        assert!(s.find("/x/3").is_none());
    }

    #[test]
    fn empty_snapshot() {
        let s = Snapshot::new(3, 42, vec![]);
        assert!(s.is_empty());
        assert_eq!(s.day(), 3);
        assert_eq!(s.taken_at(), 42);
    }
}
