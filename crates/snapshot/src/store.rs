//! On-disk snapshot collections.
//!
//! OLCF accumulates daily snapshots and the study samples one per week;
//! the aggregate (8.5 TB of text) cannot live in memory, so the analysis
//! streams snapshots one at a time. `SnapshotStore` mirrors that: each
//! snapshot is a `colf` file named `snap-<day>.colf` in a directory, and
//! iteration loads at most one (the diff-based analyses hold two).
//!
//! Operational archives also *rot* — the paper's team simply skipped
//! unusable dumps and sampled the nearest good day. The store owns that
//! policy end to end:
//!
//! * all I/O goes through an injectable [`StoreIo`] seam and transient
//!   failures are **retried with exponential backoff** ([`RetryPolicy`]);
//! * [`SnapshotStore::scrub`] verifies every snapshot, moving
//!   undecodable ones to a `quarantine/` subdirectory and reporting a
//!   [`StoreHealth`] with a **substitution plan**: each lost day mapped
//!   to the nearest healthy one, exactly the paper's sampling fallback;
//! * [`SnapshotStore::open`] cross-checks each file name's day against
//!   the day stored in the colf header, so a misnamed (or misrenamed)
//!   snapshot cannot silently masquerade as a different date.

use crate::colf;
use crate::io::{OsIo, StoreIo};
use crate::snapshot::Snapshot;
use spider_telemetry as telemetry;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Name of the subdirectory holding quarantined snapshot files.
pub const QUARANTINE_DIR: &str = "quarantine";

/// Errors from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem-level failure (after retries were exhausted).
    Io(io::Error),
    /// A stored snapshot failed to decode.
    Colf(colf::ColfError),
    /// A snapshot for the given day already exists.
    DuplicateDay(u32),
    /// A file's name claims one day but its header records another.
    DayMismatch {
        /// Day parsed from the `snap-<day>.colf` file name.
        file_day: u32,
        /// Day stored in the colf header.
        header_day: u32,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Colf(e) => write!(f, "store decode error: {e}"),
            StoreError::DuplicateDay(d) => write!(f, "snapshot for day {d} already stored"),
            StoreError::DayMismatch {
                file_day,
                header_day,
            } => write!(
                f,
                "file named for day {file_day} but header records day {header_day}"
            ),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<colf::ColfError> for StoreError {
    fn from(e: colf::ColfError) -> Self {
        StoreError::Colf(e)
    }
}

/// How the store retries transient I/O failures.
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Total attempts per operation (1 = no retry).
    pub attempts: u32,
    /// Sleep before the first retry; doubles each further retry, up to
    /// [`RetryPolicy::max_backoff`].
    pub backoff: Duration,
    /// Ceiling on any single backoff sleep, so a generously configured
    /// attempt count cannot grow the doubling delay without bound.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(250),
        }
    }
}

impl RetryPolicy {
    /// Default attempt count with no sleeping — what tests want.
    pub fn immediate() -> Self {
        RetryPolicy {
            attempts: 3,
            backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }
}

/// The operation kinds the store distinguishes in its retry/latency
/// telemetry. Each maps to static counter/histogram names so recording
/// needs no allocation.
#[derive(Debug, Clone, Copy)]
enum StoreOp {
    /// Whole-file and prefix reads.
    Read,
    /// Snapshot writes (tmp write + rename).
    Write,
    /// Metadata lookups (file sizes).
    Meta,
}

impl StoreOp {
    fn attempts_counter(self) -> &'static str {
        match self {
            StoreOp::Read => "store.read.attempts",
            StoreOp::Write => "store.write.attempts",
            StoreOp::Meta => "store.meta.attempts",
        }
    }

    fn retries_counter(self) -> &'static str {
        match self {
            StoreOp::Read => "store.read.retries",
            StoreOp::Write => "store.write.retries",
            StoreOp::Meta => "store.meta.retries",
        }
    }

    fn latency_histogram(self) -> &'static str {
        match self {
            StoreOp::Read => "store.read_ns",
            StoreOp::Write => "store.write_ns",
            StoreOp::Meta => "store.meta_ns",
        }
    }
}

/// A snapshot that decoded only partially: some checksummed sections
/// were lost and replaced with defaults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradedDay {
    /// The snapshot's day.
    pub day: u32,
    /// Sections that failed their checksum and were dropped.
    pub lost_sections: Vec<&'static str>,
}

/// A snapshot that could not be decoded at all and was moved out of the
/// store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedDay {
    /// The day the file claimed to hold.
    pub day: u32,
    /// Why it was quarantined.
    pub reason: String,
}

/// The nearest-healthy-day stand-in for a quarantined snapshot — the
/// paper's own fallback when a weekly dump was unusable (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Substitution {
    /// The day that was lost.
    pub day: u32,
    /// The nearest remaining healthy day (ties break earlier).
    pub substitute: u32,
}

/// A quarantined day that was repaired with the *genuine* bytes
/// re-fetched from a replication peer — a true heal, unlike a
/// [`Substitution`], which stands a neighbor day in for the lost one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PeerHeal {
    /// The day that was lost and then restored.
    pub day: u32,
    /// Where the bytes came from (e.g. `"node-2"`).
    pub source: String,
}

/// Result of a [`SnapshotStore::scrub`]: the store's verified condition
/// plus the degradation plan downstream consumers should follow.
#[derive(Debug, Clone, Default)]
pub struct StoreHealth {
    /// Days that decoded bit-perfectly.
    pub healthy_days: Vec<u32>,
    /// Days that decoded with lost sections (kept in the store).
    pub degraded: Vec<DegradedDay>,
    /// Days whose files were quarantined.
    pub quarantined: Vec<QuarantinedDay>,
    /// Replacement day for each quarantined day, when any healthy or
    /// degraded day remains.
    pub substitutions: Vec<Substitution>,
    /// Quarantined days later restored with the real bytes from a
    /// replication peer (see [`StoreHealth::record_peer_heal`]). A
    /// healed day no longer appears in [`StoreHealth::substitutions`].
    pub peer_heals: Vec<PeerHeal>,
    /// Transient I/O retries the store performed while scrubbing (and
    /// before it, since open).
    pub transient_retries: u64,
}

impl StoreHealth {
    /// True when every snapshot decoded bit-perfectly.
    pub fn is_clean(&self) -> bool {
        self.degraded.is_empty() && self.quarantined.is_empty()
    }

    /// The substitute day for `day`, if it was quarantined and one exists.
    pub fn substitute_for(&self, day: u32) -> Option<u32> {
        self.substitutions
            .iter()
            .find(|s| s.day == day)
            .map(|s| s.substitute)
    }

    /// The peer that healed `day`, if it was re-fetched rather than
    /// substituted.
    pub fn peer_heal_source(&self, day: u32) -> Option<&str> {
        self.peer_heals
            .iter()
            .find(|h| h.day == day)
            .map(|h| h.source.as_str())
    }

    /// Records that `day` was restored with genuine bytes fetched from
    /// `source`, upgrading any neighbor-day substitution for it: the day
    /// leaves the substitution plan (consumers must read the real data,
    /// not the stand-in) but stays listed under `quarantined` as the
    /// record of what happened.
    pub fn record_peer_heal(&mut self, day: u32, source: impl Into<String>) {
        self.substitutions.retain(|s| s.day != day);
        self.peer_heals.push(PeerHeal {
            day,
            source: source.into(),
        });
    }
}

/// A directory of `colf` snapshots, indexed by simulation day.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    days: Vec<u32>,
    io: Arc<dyn StoreIo>,
    retry: RetryPolicy,
    retries: AtomicU64,
}

impl SnapshotStore {
    /// Opens (creating if needed) a store at `dir` over the real
    /// filesystem, indexing any snapshots already present.
    ///
    /// Every indexed file's header day is cross-checked against its file
    /// name; a mismatch is an error (use [`SnapshotStore::scrub`] after
    /// [`SnapshotStore::open_with_io`] on a store opened leniently to
    /// quarantine instead — see `open_lenient`).
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        Self::open_with_io(dir, Arc::new(OsIo), RetryPolicy::default())
    }

    /// Opens a store routing all I/O through `io` with the given retry
    /// policy. Same day cross-check as [`SnapshotStore::open`].
    pub fn open_with_io(
        dir: impl Into<PathBuf>,
        io: Arc<dyn StoreIo>,
        retry: RetryPolicy,
    ) -> Result<Self, StoreError> {
        let store = Self::open_lenient(dir, io, retry)?;
        for &day in &store.days {
            if let Some(header_day) = store.peek_header_day(day)? {
                if header_day != day {
                    return Err(StoreError::DayMismatch {
                        file_day: day,
                        header_day,
                    });
                }
            }
        }
        Ok(store)
    }

    /// Opens without the day cross-check, so a damaged archive can be
    /// indexed and then healed via [`SnapshotStore::scrub`] (which
    /// quarantines mismatched files rather than refusing to open).
    pub fn open_lenient(
        dir: impl Into<PathBuf>,
        io: Arc<dyn StoreIo>,
        retry: RetryPolicy,
    ) -> Result<Self, StoreError> {
        let dir = dir.into();
        io.create_dir_all(&dir)?;
        let mut days = Vec::new();
        for name in io.list(&dir)? {
            if let Some(day) = Self::parse_file_name(&name) {
                days.push(day);
            }
        }
        days.sort_unstable();
        Ok(SnapshotStore {
            dir,
            days,
            io,
            retry,
            retries: AtomicU64::new(0),
        })
    }

    fn parse_file_name(name: &std::ffi::OsStr) -> Option<u32> {
        let name = name.to_str()?;
        name.strip_prefix("snap-")?
            .strip_suffix(".colf")?
            .parse()
            .ok()
    }

    fn file_path(&self, day: u32) -> PathBuf {
        self.dir.join(format!("snap-{day:05}.colf"))
    }

    /// Sidecar path for the delta landing on `new_day`. The `.delta`
    /// suffix keeps sidecars invisible to the snapshot index
    /// ([`SnapshotStore::parse_file_name`] only admits `.colf`).
    fn delta_file_path(&self, new_day: u32) -> PathBuf {
        self.dir.join(format!("snap-{new_day:05}.delta"))
    }

    /// Runs `op`, retrying transient failures per the policy. Not-found
    /// errors are permanent and returned immediately. Each attempt's
    /// latency, each retry, and each backoff sleep is recorded against
    /// `kind`'s telemetry names.
    fn with_retry<T>(&self, kind: StoreOp, mut op: impl FnMut() -> io::Result<T>) -> io::Result<T> {
        let tel = telemetry::global();
        let mut delay = self.retry.backoff;
        let mut last = None;
        for attempt in 0..self.retry.attempts.max(1) {
            tel.incr(kind.attempts_counter(), 1);
            let sw = tel.stopwatch();
            let result = op();
            if let Some(ns) = tel.elapsed_ns(sw) {
                tel.record(kind.latency_histogram(), ns);
            }
            match result {
                Ok(v) => return Ok(v),
                Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(e),
                Err(e) => {
                    last = Some(e);
                    if attempt + 1 < self.retry.attempts.max(1) {
                        self.retries.fetch_add(1, Ordering::Relaxed);
                        tel.incr(kind.retries_counter(), 1);
                        if !delay.is_zero() {
                            std::thread::sleep(delay);
                            tel.record("store.backoff_ns", delay.as_nanos() as u64);
                            delay = (delay * 2).min(self.retry.max_backoff);
                        }
                    }
                }
            }
        }
        Err(last.expect("at least one attempt"))
    }

    /// Header day of the stored file for `day`, or `None` when the
    /// prefix is not parseable (deferred to decode-time diagnosis).
    fn peek_header_day(&self, day: u32) -> Result<Option<u32>, StoreError> {
        let path = self.file_path(day);
        let prefix = self.with_retry(StoreOp::Read, || {
            self.io.read_prefix(&path, colf::PEEK_PREFIX_LEN)
        })?;
        Ok(colf::peek_day(&prefix))
    }

    /// Persists a snapshot. Days must be unique. The write is atomic
    /// (tmp file + rename) and retried on transient failure, so a torn
    /// write can never leave a half-written `.colf` in the index.
    pub fn put(&mut self, snapshot: &Snapshot) -> Result<(), StoreError> {
        let day = snapshot.day();
        if self.days.binary_search(&day).is_ok() {
            return Err(StoreError::DuplicateDay(day));
        }
        let bytes = colf::encode(snapshot);
        let path = self.file_path(day);
        let tmp = path.with_extension("colf.tmp");
        let result = self.with_retry(StoreOp::Write, || {
            self.io.write(&tmp, &bytes)?;
            self.io.rename(&tmp, &path)
        });
        if let Err(e) = result {
            // Best-effort cleanup of a torn tmp file; the store itself
            // is untouched (nothing under the snap-*.colf namespace).
            let _ = self.io.remove(&tmp);
            return Err(e.into());
        }
        let pos = self.days.partition_point(|&d| d < day);
        self.days.insert(pos, day);
        Ok(())
    }

    /// Persists pre-encoded `colf` bytes for `day` verbatim — the
    /// replication apply path, where a committed log entry carries the
    /// exact bytes every replica must hold so store digests converge
    /// byte-for-byte. The bytes are strict-decoded first and the header
    /// day cross-checked, so a corrupt or mislabeled entry can never be
    /// admitted. Days must be unique, as in [`SnapshotStore::put`].
    pub fn put_raw(&mut self, day: u32, bytes: &[u8]) -> Result<(), StoreError> {
        if self.days.binary_search(&day).is_ok() {
            return Err(StoreError::DuplicateDay(day));
        }
        self.admit_raw(day, bytes)
    }

    /// Restores `day` from replica-fetched bytes, replacing whatever the
    /// store holds: the heal path for a day that was quarantined (or
    /// degraded) locally but survives intact on a peer. Validates like
    /// [`SnapshotStore::put_raw`], then clears any quarantined copy of
    /// the day (best effort) so the archive does not accumulate stale
    /// corpses for healed days.
    pub fn heal_raw(&mut self, day: u32, bytes: &[u8]) -> Result<(), StoreError> {
        self.admit_raw(day, bytes)?;
        let corpse = self
            .dir
            .join(QUARANTINE_DIR)
            .join(format!("snap-{day:05}.colf"));
        let _ = self.io.remove(&corpse);
        telemetry::global().incr("store.peer_heals", 1);
        Ok(())
    }

    /// Validates and atomically writes raw colf bytes for `day`,
    /// indexing it (idempotent on the index).
    fn admit_raw(&mut self, day: u32, bytes: &[u8]) -> Result<(), StoreError> {
        let decoded = colf::decode(bytes)?;
        if decoded.day() != day {
            return Err(StoreError::DayMismatch {
                file_day: day,
                header_day: decoded.day(),
            });
        }
        let path = self.file_path(day);
        let tmp = path.with_extension("colf.tmp");
        let result = self.with_retry(StoreOp::Write, || {
            self.io.write(&tmp, bytes)?;
            self.io.rename(&tmp, &path)
        });
        if let Err(e) = result {
            let _ = self.io.remove(&tmp);
            return Err(e.into());
        }
        if let Err(pos) = self.days.binary_search(&day) {
            self.days.insert(pos, day);
        }
        Ok(())
    }

    /// Persists a delta sidecar next to its landing day's `.colf` file
    /// (atomic tmp + rename, same discipline as snapshot writes).
    /// Overwrites any prior sidecar for the day: a re-put or healed day
    /// gets a fresh delta, and its digests are what consumers validate.
    pub fn put_delta(&self, delta: &crate::delta::FrameDelta) -> Result<(), StoreError> {
        let bytes = delta.encode();
        let path = self.delta_file_path(delta.new_day);
        let tmp = path.with_extension("delta.tmp");
        let result = self.with_retry(StoreOp::Write, || {
            self.io.write(&tmp, &bytes)?;
            self.io.rename(&tmp, &path)
        });
        if let Err(e) = result {
            let _ = self.io.remove(&tmp);
            return Err(e.into());
        }
        telemetry::global().incr("store.deltas_written", 1);
        Ok(())
    }

    /// Reads and decodes the delta sidecar landing on `new_day`.
    ///
    /// Returns `Ok(None)` when no sidecar exists *or* when the sidecar
    /// fails to decode (rot is counted under `store.delta_invalid` and
    /// treated as absence — the incremental layer then falls back to
    /// the full-rescan oracle rather than trusting damaged bytes).
    /// Digest-chain validation against the endpoint `.colf` files is
    /// the caller's job (`FrameLoader::delta_for`).
    pub fn read_delta(&self, new_day: u32) -> Result<Option<crate::delta::FrameDelta>, StoreError> {
        let path = self.delta_file_path(new_day);
        let bytes = match self.with_retry(StoreOp::Read, || self.io.read(&path)) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        match crate::delta::FrameDelta::decode(&bytes) {
            Ok(delta) => Ok(Some(delta)),
            Err(_) => {
                telemetry::global().incr("store.delta_invalid", 1);
                Ok(None)
            }
        }
    }

    /// Days that have a delta sidecar on disk, ascending. Purely
    /// presence — validity is decided at read/apply time.
    pub fn delta_days(&self) -> Result<Vec<u32>, StoreError> {
        let mut days = Vec::new();
        for name in self.io.list(&self.dir)? {
            if let Some(name) = name.to_str() {
                if let Some(day) = name
                    .strip_prefix("snap-")
                    .and_then(|n| n.strip_suffix(".delta"))
                    .and_then(|n| n.parse().ok())
                {
                    days.push(day);
                }
            }
        }
        days.sort_unstable();
        Ok(days)
    }

    /// XXH64 section digest of the raw stored bytes for `day` — the
    /// convergence fingerprint replicas compare: byte-identical files
    /// (the only thing [`SnapshotStore::put_raw`] admits) digest
    /// identically on every node.
    pub fn day_digest(&self, day: u32) -> Result<Option<u64>, StoreError> {
        Ok(self
            .read_raw(day)?
            .map(|bytes| crate::xxh::section_digest(&bytes)))
    }

    fn read_day(&self, day: u32) -> Result<Vec<u8>, StoreError> {
        let path = self.file_path(day);
        Ok(self.with_retry(StoreOp::Read, || self.io.read(&path))?)
    }

    /// Reads the raw `colf` bytes for `day` without decoding, if the day
    /// is indexed. This is the entry point for the columnar fast path
    /// (`spider-core`'s `FrameLoader`), which decodes the bytes straight
    /// into column views and keys its cache by their section digest.
    pub fn read_raw(&self, day: u32) -> Result<Option<Vec<u8>>, StoreError> {
        if self.days.binary_search(&day).is_err() {
            return Ok(None);
        }
        self.read_day(day).map(Some)
    }

    /// Loads the snapshot for `day`, if present. Strict: a failed
    /// checksum anywhere is an error. Transparently retries the read
    /// once more when the first decode fails, which heals short reads
    /// without masking at-rest corruption.
    pub fn get(&self, day: u32) -> Result<Option<Snapshot>, StoreError> {
        if self.days.binary_search(&day).is_err() {
            return Ok(None);
        }
        match colf::decode(&self.read_day(day)?) {
            Ok(snap) => Ok(Some(snap)),
            Err(_) => {
                self.retries.fetch_add(1, Ordering::Relaxed);
                telemetry::global().incr("store.decode_heals", 1);
                Ok(Some(colf::decode(&self.read_day(day)?)?))
            }
        }
    }

    /// Loads the snapshot for `day` with lossy section recovery: corrupt
    /// non-spine sections are dropped (and named) instead of failing the
    /// whole snapshot.
    pub fn get_lossy(&self, day: u32) -> Result<Option<colf::LossyDecode>, StoreError> {
        if self.days.binary_search(&day).is_err() {
            return Ok(None);
        }
        match colf::decode_lossy(&self.read_day(day)?) {
            Ok(d) => Ok(Some(d)),
            Err(_) => {
                self.retries.fetch_add(1, Ordering::Relaxed);
                telemetry::global().incr("store.decode_heals", 1);
                Ok(Some(colf::decode_lossy(&self.read_day(day)?)?))
            }
        }
    }

    /// Verifies every stored snapshot, quarantining the unrecoverable
    /// and reporting the store's health with a substitution plan.
    ///
    /// * decodes bit-perfectly → healthy;
    /// * decodes with lost sections → degraded (file kept);
    /// * fails decode, misreports its day, or cannot be read → the file
    ///   is moved to `quarantine/` and the day mapped to the nearest
    ///   surviving day (ties break earlier), mirroring the paper's
    ///   skip-to-nearest-dump sampling.
    pub fn scrub(&mut self) -> StoreHealth {
        let _span = telemetry::global().span("scrub");
        let mut health = StoreHealth::default();
        for day in self.days.clone() {
            match self.get_lossy(day) {
                Ok(Some(lossy)) => {
                    if lossy.snapshot.day() != day {
                        self.quarantine_day(
                            day,
                            format!(
                                "header records day {} but file is named for day {day}",
                                lossy.snapshot.day()
                            ),
                            &mut health,
                        );
                    } else if lossy.lost_sections.is_empty() {
                        health.healthy_days.push(day);
                    } else {
                        health.degraded.push(DegradedDay {
                            day,
                            lost_sections: lossy.lost_sections,
                        });
                    }
                }
                Ok(None) => unreachable!("scrub iterates indexed days"),
                Err(e) => self.quarantine_day(day, e.to_string(), &mut health),
            }
        }
        // Substitutions: nearest surviving day for each quarantined one.
        for q in &health.quarantined {
            if let Some(substitute) = self.nearest_day(q.day) {
                health.substitutions.push(Substitution {
                    day: q.day,
                    substitute,
                });
            }
        }
        health.transient_retries = self.retries.load(Ordering::Relaxed);
        health
    }

    /// Moves the file for `day` into `quarantine/` and drops it from the
    /// index. Never panics: if even the move fails, the file stays put
    /// but the day is still deindexed and the failure recorded.
    fn quarantine_day(&mut self, day: u32, reason: String, health: &mut StoreHealth) {
        let from = self.file_path(day);
        let qdir = self.dir.join(QUARANTINE_DIR);
        let to = qdir.join(format!("snap-{day:05}.colf"));
        let moved = self
            .io
            .create_dir_all(&qdir)
            .and_then(|()| self.io.rename(&from, &to));
        let reason = match moved {
            Ok(()) => reason,
            Err(e) => format!("{reason} (quarantine move failed: {e}; file left in place)"),
        };
        if let Ok(pos) = self.days.binary_search(&day) {
            self.days.remove(pos);
        }
        // The delta landing on this day lost its new endpoint; move the
        // sidecar alongside the corpse (best effort) so it can never be
        // mistaken for a live delta. Deltas *departing* from this day
        // stay put: their old-digest check fails at read time, which is
        // what routes consumers to the full-rescan oracle.
        let delta_from = self.delta_file_path(day);
        let delta_to = qdir.join(format!("snap-{day:05}.delta"));
        let _ = self.io.rename(&delta_from, &delta_to);
        telemetry::global().incr("store.quarantined_days", 1);
        telemetry::global().trigger("quarantine", &format!("day {day}: {reason}"));
        health.quarantined.push(QuarantinedDay { day, reason });
    }

    /// Builds any missing (or digest-stale) delta sidecars between
    /// consecutive indexed days, decoding each day's columns at most
    /// once in a rolling pair. Lossy days cannot anchor a delta and
    /// their pairs are skipped. Returns `(built, skipped)` counts;
    /// telemetry: `store.deltas_written` per sidecar.
    pub fn ensure_deltas(&self) -> Result<(u64, u64), StoreError> {
        use crate::columns::FrameColumns;
        let _span = telemetry::global().span("ensure_deltas");
        let mut built = 0u64;
        let mut skipped = 0u64;
        let mut prev: Option<(u32, u64, Option<FrameColumns>)> = None;
        for &day in &self.days {
            let Some(bytes) = self.read_raw(day)? else {
                continue;
            };
            let digest = crate::xxh::section_digest(&bytes);
            // Decode lazily: only when this pair actually needs building.
            let mut cols: Option<FrameColumns> = None;
            if let Some((old_day, old_digest, old_cols)) = prev.take() {
                let fresh = match self.read_delta(day)? {
                    Some(d) => {
                        d.old_day == old_day && d.old_digest == old_digest && d.new_digest == digest
                    }
                    None => false,
                };
                if fresh {
                    skipped += 1;
                } else {
                    let old_cols = match old_cols {
                        Some(c) => Some(c),
                        None => self
                            .read_raw(old_day)?
                            .and_then(|b| FrameColumns::decode(&b).ok()),
                    };
                    cols = FrameColumns::decode(&bytes).ok();
                    match (old_cols, cols.as_ref()) {
                        (Some(oc), Some(nc)) => {
                            match crate::delta::FrameDelta::compute(&oc, nc, old_digest, digest) {
                                Ok(delta) => {
                                    self.put_delta(&delta)?;
                                    built += 1;
                                }
                                Err(_) => skipped += 1,
                            }
                        }
                        _ => skipped += 1,
                    }
                }
            }
            prev = Some((day, digest, cols));
        }
        Ok((built, skipped))
    }

    /// Re-lists the directory and rebuilds the day index, picking up
    /// snapshots added (or removed) by other handles onto the same
    /// directory — e.g. a simulation appending days under a running
    /// query server. Returns true when the day set changed.
    pub fn rescan(&mut self) -> Result<bool, StoreError> {
        let mut days = Vec::new();
        for name in self.io.list(&self.dir)? {
            if let Some(day) = Self::parse_file_name(&name) {
                days.push(day);
            }
        }
        days.sort_unstable();
        let changed = days != self.days;
        self.days = days;
        Ok(changed)
    }

    /// The indexed day closest to `day` (itself excluded); ties break to
    /// the earlier day, matching the paper's preference for the older
    /// dump when two are equally near.
    pub fn nearest_day(&self, day: u32) -> Option<u32> {
        self.days
            .iter()
            .copied()
            .filter(|&d| d != day)
            .min_by_key(|&d| (d.abs_diff(day), d))
    }

    /// Days with stored snapshots, ascending.
    pub fn days(&self) -> &[u32] {
        &self.days
    }

    /// Number of stored snapshots.
    pub fn len(&self) -> usize {
        self.days.len()
    }

    /// True if the store holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.days.is_empty()
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The I/O seam this store routes through — share it to open helper
    /// views (e.g. the prefetching reader) under the same fault regime.
    pub fn io(&self) -> Arc<dyn StoreIo> {
        Arc::clone(&self.io)
    }

    /// The store's retry policy.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.retry
    }

    /// Transient I/O retries performed so far.
    pub fn transient_retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// On-disk bytes of the snapshot for `day` (footprint accounting for
    /// the Fig. 4 conversion experiment).
    pub fn file_size(&self, day: u32) -> Result<Option<u64>, StoreError> {
        if self.days.binary_search(&day).is_err() {
            return Ok(None);
        }
        let path = self.file_path(day);
        Ok(Some(self.with_retry(StoreOp::Meta, || self.io.len(&path))?))
    }

    /// Streams snapshots in day order, loading one at a time.
    pub fn iter(&self) -> impl Iterator<Item = Result<Snapshot, StoreError>> + '_ {
        self.days.iter().map(move |&day| {
            self.get(day)?
                .ok_or_else(|| StoreError::Io(io::Error::other(format!("day {day} vanished"))))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faultfs::{FaultFs, FaultKind};
    use crate::record::SnapshotRecord;
    use std::fs;

    fn snap(day: u32, n: usize) -> Snapshot {
        let records = (0..n)
            .map(|i| SnapshotRecord {
                path: format!("/lustre/atlas1/p/f{i:04}"),
                atime: day as u64 * 86_400 + i as u64,
                ctime: 1,
                mtime: 1,
                uid: 1,
                gid: 1,
                mode: 0o100664,
                ino: i as u64 + 1,
                osts: vec![(1, 1)],
            })
            .collect();
        Snapshot::new(day, day as u64 * 86_400, records)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("spider-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn fault_store(dir: &Path, seed: u64) -> (SnapshotStore, Arc<FaultFs<OsIo>>) {
        let ffs = Arc::new(FaultFs::new(OsIo, seed));
        let store =
            SnapshotStore::open_with_io(dir, ffs.clone(), RetryPolicy::immediate()).unwrap();
        (store, ffs)
    }

    #[test]
    fn put_get_roundtrip() {
        let dir = temp_dir("roundtrip");
        let mut store = SnapshotStore::open(&dir).unwrap();
        let s = snap(7, 50);
        store.put(&s).unwrap();
        assert_eq!(store.get(7).unwrap().unwrap(), s);
        assert_eq!(store.get(8).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_day_rejected() {
        let dir = temp_dir("dup");
        let mut store = SnapshotStore::open(&dir).unwrap();
        store.put(&snap(7, 1)).unwrap();
        assert!(matches!(
            store.put(&snap(7, 2)),
            Err(StoreError::DuplicateDay(7))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_reindexes() {
        let dir = temp_dir("reopen");
        {
            let mut store = SnapshotStore::open(&dir).unwrap();
            store.put(&snap(14, 3)).unwrap();
            store.put(&snap(0, 3)).unwrap();
            store.put(&snap(7, 3)).unwrap();
        }
        let store = SnapshotStore::open(&dir).unwrap();
        assert_eq!(store.days(), &[0, 7, 14]);
        assert_eq!(store.len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn iter_streams_in_day_order() {
        let dir = temp_dir("iter");
        let mut store = SnapshotStore::open(&dir).unwrap();
        for day in [21, 0, 7, 14] {
            store.put(&snap(day, 2)).unwrap();
        }
        let days: Vec<u32> = store.iter().map(|s| s.unwrap().day()).collect();
        assert_eq!(days, vec![0, 7, 14, 21]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_size_reports_bytes() {
        let dir = temp_dir("size");
        let mut store = SnapshotStore::open(&dir).unwrap();
        store.put(&snap(0, 100)).unwrap();
        let size = store.file_size(0).unwrap().unwrap();
        assert!(size > 0);
        assert_eq!(store.file_size(99).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_surfaces_decode_error() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("snap-00003.colf"), b"definitely not colf").unwrap();
        let store = SnapshotStore::open(&dir).unwrap();
        assert_eq!(store.days(), &[3]);
        assert!(matches!(store.get(3), Err(StoreError::Colf(_))));
        // Streaming surfaces the same error instead of panicking.
        let first = store.iter().next().unwrap();
        assert!(first.is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unrelated_files_are_ignored() {
        let dir = temp_dir("noise");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("README.txt"), "not a snapshot").unwrap();
        fs::write(dir.join("snap-abc.colf"), "bad name").unwrap();
        let store = SnapshotStore::open(&dir).unwrap();
        assert!(store.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn misnamed_file_is_rejected_at_open() {
        let dir = temp_dir("mismatch");
        {
            let mut store = SnapshotStore::open(&dir).unwrap();
            store.put(&snap(7, 5)).unwrap();
        }
        // Rename day 7's file to claim day 9.
        fs::rename(dir.join("snap-00007.colf"), dir.join("snap-00009.colf")).unwrap();
        match SnapshotStore::open(&dir) {
            Err(StoreError::DayMismatch {
                file_day,
                header_day,
            }) => {
                assert_eq!(file_day, 9);
                assert_eq!(header_day, 7);
            }
            other => panic!("expected DayMismatch, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_quarantines_misnamed_file() {
        let dir = temp_dir("mismatch-scrub");
        {
            let mut store = SnapshotStore::open(&dir).unwrap();
            store.put(&snap(7, 5)).unwrap();
            store.put(&snap(14, 5)).unwrap();
        }
        fs::rename(dir.join("snap-00007.colf"), dir.join("snap-00009.colf")).unwrap();
        let mut store =
            SnapshotStore::open_lenient(&dir, Arc::new(OsIo), RetryPolicy::immediate()).unwrap();
        let health = store.scrub();
        assert_eq!(health.healthy_days, vec![14]);
        assert_eq!(health.quarantined.len(), 1);
        assert_eq!(health.quarantined[0].day, 9);
        assert_eq!(health.substitute_for(9), Some(14));
        assert!(dir.join(QUARANTINE_DIR).join("snap-00009.colf").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_on_clean_store_is_clean() {
        let dir = temp_dir("clean");
        let mut store = SnapshotStore::open(&dir).unwrap();
        for day in [0, 7, 14] {
            store.put(&snap(day, 10)).unwrap();
        }
        let health = store.scrub();
        assert!(health.is_clean());
        assert_eq!(health.healthy_days, vec![0, 7, 14]);
        assert!(health.substitutions.is_empty());
        assert_eq!(health.transient_retries, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn scrub_degrades_on_corrupt_osts_and_quarantines_corrupt_paths() {
        let dir = temp_dir("scrub");
        {
            let mut store = SnapshotStore::open(&dir).unwrap();
            for day in [0, 7, 14, 21] {
                store.put(&snap(day, 40)).unwrap();
            }
        }
        let corrupt_section = |day: u32, section: &str| {
            let path = dir.join(format!("snap-{day:05}.colf"));
            let mut bytes = fs::read(&path).unwrap();
            let spans = colf::section_table(&bytes).unwrap();
            let span = spans.iter().find(|s| s.name == section).unwrap();
            bytes[span.offset + span.len / 2] ^= 0xFF;
            fs::write(&path, bytes).unwrap();
        };
        corrupt_section(7, "osts"); // recoverable: every other column survives
        corrupt_section(14, "paths"); // unrecoverable: the record spine

        let mut store = SnapshotStore::open(&dir).unwrap();
        let health = store.scrub();
        assert_eq!(health.healthy_days, vec![0, 21]);
        assert_eq!(
            health.degraded,
            vec![DegradedDay {
                day: 7,
                lost_sections: vec!["osts"]
            }]
        );
        assert_eq!(health.quarantined.len(), 1);
        assert_eq!(health.quarantined[0].day, 14);
        // Nearest surviving day to 14: tie between 7 and 21 breaks earlier.
        assert_eq!(health.substitute_for(14), Some(7));
        assert_eq!(store.days(), &[0, 7, 21]);
        assert!(dir.join(QUARANTINE_DIR).join("snap-00014.colf").exists());
        // The degraded day still serves lossy reads.
        let lossy = store.get_lossy(7).unwrap().unwrap();
        assert_eq!(lossy.lost_sections, vec!["osts"]);
        assert_eq!(lossy.snapshot.len(), 40);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn transient_read_error_is_retried() {
        let dir = temp_dir("transient");
        {
            let mut store = SnapshotStore::open(&dir).unwrap();
            store.put(&snap(7, 20)).unwrap();
        }
        let (store, ffs) = fault_store(&dir, 5);
        // Read op 0 was the open-time header peek; the get is op 1.
        ffs.plan_read(1, FaultKind::TransientEio);
        assert_eq!(store.get(7).unwrap().unwrap(), snap(7, 20));
        assert!(store.transient_retries() >= 1);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn backoff_caps_at_max_and_is_recorded() {
        let dir = temp_dir("backoff-cap");
        {
            let mut store = SnapshotStore::open(&dir).unwrap();
            store.put(&snap(7, 5)).unwrap();
        }
        let ffs = Arc::new(FaultFs::new(OsIo, 5));
        let policy = RetryPolicy {
            attempts: 5,
            backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(2),
        };
        let store = SnapshotStore::open_with_io(&dir, ffs.clone(), policy).unwrap();
        // Read op 0 was the open-time header peek; fail the get's first
        // four attempts so every backoff sleep happens.
        for op in 1..5 {
            ffs.plan_read(op, FaultKind::TransientEio);
        }
        let tel = telemetry::global();
        let backoff = tel.histogram("store.backoff_ns");
        let attempts = tel.counter("store.read.attempts");
        let retries = tel.counter("store.read.retries");
        let (count0, sum0, _) = backoff.core().totals();
        let (attempts0, retries0) = (attempts.get(), retries.get());
        tel.enable();
        let got = store.get(7);
        tel.disable();
        assert_eq!(got.unwrap().unwrap(), snap(7, 5));
        // Sleeps were 1ms, then 2ms capped: 2ms, 2ms — never 4ms/8ms.
        let (count1, sum1, max) = backoff.core().totals();
        assert_eq!(count1 - count0, 4);
        assert_eq!(sum1 - sum0, 7_000_000);
        assert_eq!(max, 2_000_000);
        assert!(attempts.get() - attempts0 >= 5);
        assert!(retries.get() - retries0 >= 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn short_read_is_healed_by_reread() {
        let dir = temp_dir("shortread");
        {
            let mut store = SnapshotStore::open(&dir).unwrap();
            store.put(&snap(7, 20)).unwrap();
        }
        let (store, ffs) = fault_store(&dir, 5);
        ffs.plan_read(1, FaultKind::ShortRead);
        assert_eq!(store.get(7).unwrap().unwrap(), snap(7, 20));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_write_never_corrupts_the_index() {
        let dir = temp_dir("torn");
        let (mut store, ffs) = fault_store(&dir, 9);
        // Tear every attempt: the put must fail cleanly.
        for i in 0..8 {
            ffs.plan_write(i, FaultKind::TornWrite);
        }
        assert!(store.put(&snap(7, 30)).is_err());
        assert!(store.is_empty());
        // A fresh open sees no snapshot and no stray tmp artifacts
        // indexed; the next put succeeds.
        drop(store);
        let (mut store, _ffs) = fault_store(&dir, 10);
        assert!(store.is_empty());
        store.put(&snap(7, 30)).unwrap();
        assert_eq!(store.get(7).unwrap().unwrap(), snap(7, 30));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn quarantine_rename_failure_does_not_panic() {
        let dir = temp_dir("qfail");
        {
            let mut store = SnapshotStore::open(&dir).unwrap();
            store.put(&snap(7, 30)).unwrap();
            store.put(&snap(14, 30)).unwrap();
        }
        // Corrupt day 7's paths section so scrub must quarantine it.
        let path = dir.join("snap-00007.colf");
        let mut bytes = fs::read(&path).unwrap();
        let spans = colf::section_table(&bytes).unwrap();
        let span = spans.iter().find(|s| s.name == "paths").unwrap();
        bytes[span.offset] ^= 0xFF;
        fs::write(&path, bytes).unwrap();

        let (mut store, ffs) = fault_store(&dir, 3);
        ffs.fail_next_rename();
        let health = store.scrub();
        assert_eq!(health.quarantined.len(), 1);
        assert!(health.quarantined[0]
            .reason
            .contains("quarantine move failed"));
        // Deindexed even though the file could not be moved.
        assert_eq!(store.days(), &[14]);
        assert!(path.exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn put_raw_validates_and_digests_converge() {
        let dir = temp_dir("putraw");
        let mut store = SnapshotStore::open(&dir).unwrap();
        let s = snap(7, 30);
        let bytes = colf::encode(&s);
        store.put_raw(7, &bytes).unwrap();
        assert_eq!(store.get(7).unwrap().unwrap(), s);
        // Duplicate day rejected; wrong-day label rejected; garbage rejected.
        assert!(matches!(
            store.put_raw(7, &bytes),
            Err(StoreError::DuplicateDay(7))
        ));
        assert!(matches!(
            store.put_raw(9, &bytes),
            Err(StoreError::DayMismatch { .. })
        ));
        assert!(matches!(
            store.put_raw(9, b"not colf"),
            Err(StoreError::Colf(_))
        ));
        // The digest is a pure function of the bytes: a second store
        // admitting the same entry fingerprints identically.
        let dir2 = temp_dir("putraw-twin");
        let mut twin = SnapshotStore::open(&dir2).unwrap();
        twin.put_raw(7, &bytes).unwrap();
        assert_eq!(
            store.day_digest(7).unwrap().unwrap(),
            twin.day_digest(7).unwrap().unwrap()
        );
        assert_eq!(store.day_digest(99).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
        fs::remove_dir_all(&dir2).unwrap();
    }

    #[test]
    fn heal_raw_restores_quarantined_day_and_clears_corpse() {
        let dir = temp_dir("healraw");
        let s = snap(7, 30);
        let bytes = colf::encode(&s);
        {
            let mut store = SnapshotStore::open(&dir).unwrap();
            store.put(&s).unwrap();
            store.put(&snap(14, 30)).unwrap();
        }
        // Smash day 7's paths section: scrub must quarantine it.
        let path = dir.join("snap-00007.colf");
        let mut damaged = fs::read(&path).unwrap();
        let spans = colf::section_table(&damaged).unwrap();
        let span = spans.iter().find(|s| s.name == "paths").unwrap();
        damaged[span.offset + 2] ^= 0xFF;
        fs::write(&path, damaged).unwrap();

        let mut store =
            SnapshotStore::open_lenient(&dir, Arc::new(OsIo), RetryPolicy::immediate()).unwrap();
        let mut health = store.scrub();
        assert_eq!(health.quarantined.len(), 1);
        assert_eq!(health.substitute_for(7), Some(14));
        let corpse = dir.join(QUARANTINE_DIR).join("snap-00007.colf");
        assert!(corpse.exists());

        // Heal with the genuine bytes, as a replication peer would serve.
        store.heal_raw(7, &bytes).unwrap();
        health.record_peer_heal(7, "node-2");
        assert_eq!(store.get(7).unwrap().unwrap(), s);
        assert!(!corpse.exists(), "healed day's corpse must be cleared");
        // The substitution is upgraded, not duplicated.
        assert_eq!(health.substitute_for(7), None);
        assert_eq!(health.peer_heal_source(7), Some("node-2"));
        assert_eq!(health.quarantined.len(), 1, "history preserved");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn nearest_day_prefers_earlier_on_tie() {
        let dir = temp_dir("nearest");
        let mut store = SnapshotStore::open(&dir).unwrap();
        for day in [0, 7, 21] {
            store.put(&snap(day, 1)).unwrap();
        }
        assert_eq!(store.nearest_day(14), Some(7)); // 7 and 21 both 7 away
        assert_eq!(store.nearest_day(20), Some(21));
        assert_eq!(store.nearest_day(7), Some(0)); // itself excluded
        fs::remove_dir_all(&dir).unwrap();
    }
}
