//! On-disk snapshot collections.
//!
//! OLCF accumulates daily snapshots and the study samples one per week; the
//! aggregate (8.5 TB of text) cannot live in memory, so the analysis
//! streams snapshots one at a time. `SnapshotStore` mirrors that: each
//! snapshot is a `colf` file named `snap-<day>.colf` in a directory, and
//! iteration loads at most one (the diff-based analyses hold two).

use crate::colf;
use crate::snapshot::Snapshot;
use std::fs;
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Errors from store operations.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem-level failure.
    Io(io::Error),
    /// A stored snapshot failed to decode.
    Colf(colf::ColfError),
    /// A snapshot for the given day already exists.
    DuplicateDay(u32),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store I/O error: {e}"),
            StoreError::Colf(e) => write!(f, "store decode error: {e}"),
            StoreError::DuplicateDay(d) => write!(f, "snapshot for day {d} already stored"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

impl From<colf::ColfError> for StoreError {
    fn from(e: colf::ColfError) -> Self {
        StoreError::Colf(e)
    }
}

/// A directory of `colf` snapshots, indexed by simulation day.
#[derive(Debug)]
pub struct SnapshotStore {
    dir: PathBuf,
    days: Vec<u32>,
}

impl SnapshotStore {
    /// Opens (creating if needed) a store at `dir`, indexing any snapshots
    /// already present.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut days = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            if let Some(day) = Self::parse_file_name(&entry.file_name()) {
                days.push(day);
            }
        }
        days.sort_unstable();
        Ok(SnapshotStore { dir, days })
    }

    fn parse_file_name(name: &std::ffi::OsStr) -> Option<u32> {
        let name = name.to_str()?;
        name.strip_prefix("snap-")?
            .strip_suffix(".colf")?
            .parse()
            .ok()
    }

    fn file_path(&self, day: u32) -> PathBuf {
        self.dir.join(format!("snap-{day:05}.colf"))
    }

    /// Persists a snapshot. Days must be unique.
    pub fn put(&mut self, snapshot: &Snapshot) -> Result<(), StoreError> {
        let day = snapshot.day();
        if self.days.binary_search(&day).is_ok() {
            return Err(StoreError::DuplicateDay(day));
        }
        let bytes = colf::encode(snapshot);
        let path = self.file_path(day);
        let tmp = path.with_extension("colf.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&bytes)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &path)?;
        let pos = self.days.partition_point(|&d| d < day);
        self.days.insert(pos, day);
        Ok(())
    }

    /// Loads the snapshot for `day`, if present.
    pub fn get(&self, day: u32) -> Result<Option<Snapshot>, StoreError> {
        if self.days.binary_search(&day).is_err() {
            return Ok(None);
        }
        let mut bytes = Vec::new();
        fs::File::open(self.file_path(day))?.read_to_end(&mut bytes)?;
        Ok(Some(colf::decode(&bytes)?))
    }

    /// Days with stored snapshots, ascending.
    pub fn days(&self) -> &[u32] {
        &self.days
    }

    /// Number of stored snapshots.
    pub fn len(&self) -> usize {
        self.days.len()
    }

    /// True if the store holds no snapshots.
    pub fn is_empty(&self) -> bool {
        self.days.is_empty()
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// On-disk bytes of the snapshot for `day` (footprint accounting for
    /// the Fig. 4 conversion experiment).
    pub fn file_size(&self, day: u32) -> Result<Option<u64>, StoreError> {
        if self.days.binary_search(&day).is_err() {
            return Ok(None);
        }
        Ok(Some(fs::metadata(self.file_path(day))?.len()))
    }

    /// Streams snapshots in day order, loading one at a time.
    pub fn iter(&self) -> impl Iterator<Item = Result<Snapshot, StoreError>> + '_ {
        self.days.iter().map(move |&day| {
            self.get(day)?
                .ok_or_else(|| StoreError::Io(io::Error::other(format!("day {day} vanished"))))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SnapshotRecord;

    fn snap(day: u32, n: usize) -> Snapshot {
        let records = (0..n)
            .map(|i| SnapshotRecord {
                path: format!("/lustre/atlas1/p/f{i:04}"),
                atime: day as u64 * 86_400 + i as u64,
                ctime: 1,
                mtime: 1,
                uid: 1,
                gid: 1,
                mode: 0o100664,
                ino: i as u64 + 1,
                osts: vec![(1, 1)],
            })
            .collect();
        Snapshot::new(day, day as u64 * 86_400, records)
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("spider-store-test-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn put_get_roundtrip() {
        let dir = temp_dir("roundtrip");
        let mut store = SnapshotStore::open(&dir).unwrap();
        let s = snap(7, 50);
        store.put(&s).unwrap();
        assert_eq!(store.get(7).unwrap().unwrap(), s);
        assert_eq!(store.get(8).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn duplicate_day_rejected() {
        let dir = temp_dir("dup");
        let mut store = SnapshotStore::open(&dir).unwrap();
        store.put(&snap(7, 1)).unwrap();
        assert!(matches!(
            store.put(&snap(7, 2)),
            Err(StoreError::DuplicateDay(7))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_reindexes() {
        let dir = temp_dir("reopen");
        {
            let mut store = SnapshotStore::open(&dir).unwrap();
            store.put(&snap(14, 3)).unwrap();
            store.put(&snap(0, 3)).unwrap();
            store.put(&snap(7, 3)).unwrap();
        }
        let store = SnapshotStore::open(&dir).unwrap();
        assert_eq!(store.days(), &[0, 7, 14]);
        assert_eq!(store.len(), 3);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn iter_streams_in_day_order() {
        let dir = temp_dir("iter");
        let mut store = SnapshotStore::open(&dir).unwrap();
        for day in [21, 0, 7, 14] {
            store.put(&snap(day, 2)).unwrap();
        }
        let days: Vec<u32> = store.iter().map(|s| s.unwrap().day()).collect();
        assert_eq!(days, vec![0, 7, 14, 21]);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_size_reports_bytes() {
        let dir = temp_dir("size");
        let mut store = SnapshotStore::open(&dir).unwrap();
        store.put(&snap(0, 100)).unwrap();
        let size = store.file_size(0).unwrap().unwrap();
        assert!(size > 0);
        assert_eq!(store.file_size(99).unwrap(), None);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_snapshot_surfaces_decode_error() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("snap-00003.colf"), b"definitely not colf").unwrap();
        let store = SnapshotStore::open(&dir).unwrap();
        assert_eq!(store.days(), &[3]);
        assert!(matches!(store.get(3), Err(StoreError::Colf(_))));
        // Streaming surfaces the same error instead of panicking.
        let first = store.iter().next().unwrap();
        assert!(first.is_err());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn unrelated_files_are_ignored() {
        let dir = temp_dir("noise");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("README.txt"), "not a snapshot").unwrap();
        fs::write(dir.join("snap-abc.colf"), "bad name").unwrap();
        let store = SnapshotStore::open(&dir).unwrap();
        assert!(store.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }
}
