//! LEB128 variable-length integers over [`bytes`] buffers.
//!
//! The `colf` columnar format stores every integer column as varints
//! (usually min-anchored deltas), which is where its footprint advantage
//! over PSV text comes from. Kept as its own module so the encoding is
//! testable in isolation.

use bytes::{Buf, BufMut};

/// Maximum encoded length of a `u64` varint.
pub const MAX_VARINT_LEN: usize = 10;

/// Encodes `value` as an unsigned LEB128 varint.
pub fn put_uvarint(buf: &mut impl BufMut, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Decodes an unsigned LEB128 varint. Returns `None` on truncated or
/// over-long (> 10 byte) input.
pub fn get_uvarint(buf: &mut impl Buf) -> Option<u64> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for _ in 0..MAX_VARINT_LEN {
        if !buf.has_remaining() {
            return None;
        }
        let byte = buf.get_u8();
        let low = (byte & 0x7f) as u64;
        value |= low.checked_shl(shift)?;
        if byte & 0x80 == 0 {
            // Reject non-canonical encodings that would overflow u64.
            if shift == 63 && low > 1 {
                return None;
            }
            return Some(value);
        }
        shift += 7;
    }
    None
}

/// ZigZag-encodes a signed value so small magnitudes stay small.
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes a signed value as a zigzag varint.
pub fn put_ivarint(buf: &mut impl BufMut, value: i64) {
    put_uvarint(buf, zigzag(value));
}

/// Decodes a zigzag varint.
pub fn get_ivarint(buf: &mut impl Buf) -> Option<i64> {
    get_uvarint(buf).map(unzigzag)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn roundtrip_representative_values() {
        let values = [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            1_478_274_632, // the paper's example ATIME
            u32::MAX as u64,
            u64::MAX,
        ];
        for &v in &values {
            let mut buf = BytesMut::new();
            put_uvarint(&mut buf, v);
            let mut r = buf.freeze();
            assert_eq!(get_uvarint(&mut r), Some(v), "value {v}");
            assert!(!r.has_remaining());
        }
    }

    #[test]
    fn encoded_lengths() {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, 0);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_uvarint(&mut buf, 127);
        assert_eq!(buf.len(), 1);
        buf.clear();
        put_uvarint(&mut buf, 128);
        assert_eq!(buf.len(), 2);
        buf.clear();
        put_uvarint(&mut buf, u64::MAX);
        assert_eq!(buf.len(), 10);
    }

    #[test]
    fn truncated_input_is_detected() {
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, 1_000_000);
        let bytes = buf.freeze();
        for cut in 0..bytes.len() - 1 {
            let mut r = bytes.slice(..cut);
            assert_eq!(get_uvarint(&mut r), None, "cut at {cut}");
        }
    }

    #[test]
    fn overlong_encoding_rejected() {
        // Eleven continuation bytes can never be a valid u64 varint.
        let mut r: &[u8] = &[0x80; 11];
        assert_eq!(get_uvarint(&mut r), None);
    }

    #[test]
    fn zigzag_pairs() {
        for (signed, unsigned) in [(0i64, 0u64), (-1, 1), (1, 2), (-2, 3), (2, 4)] {
            assert_eq!(zigzag(signed), unsigned);
            assert_eq!(unzigzag(unsigned), signed);
        }
        assert_eq!(unzigzag(zigzag(i64::MIN)), i64::MIN);
        assert_eq!(unzigzag(zigzag(i64::MAX)), i64::MAX);
    }

    #[test]
    fn signed_roundtrip() {
        for v in [-1_000_000i64, -1, 0, 1, 1_000_000, i64::MIN, i64::MAX] {
            let mut buf = BytesMut::new();
            put_ivarint(&mut buf, v);
            let mut r = buf.freeze();
            assert_eq!(get_ivarint(&mut r), Some(v));
        }
    }
}
