//! Pure-Rust XXH64 — the checksum behind `colf` v2's per-section
//! integrity words.
//!
//! The offline crate set carries no hashing dependency, and the store
//! needs a checksum that is (a) fast enough to disappear next to varint
//! decoding and (b) strong enough that a single flipped bit anywhere in
//! a section changes the digest with overwhelming probability. XXH64
//! (Collet's xxHash, 64-bit variant) is the classic answer — this is a
//! from-spec implementation, verified against the reference vectors.
//!
//! Not a cryptographic hash: it detects *corruption* (bit rot, torn
//! writes, truncation), not adversaries.

const PRIME_1: u64 = 0x9E37_79B1_85EB_CA87;
const PRIME_2: u64 = 0xC2B2_AE3D_27D4_EB4F;
const PRIME_3: u64 = 0x1656_67B1_9E37_79F9;
const PRIME_4: u64 = 0x85EB_CA77_C2B2_AE63;
const PRIME_5: u64 = 0x27D4_EB2F_1656_67C5;

#[inline]
fn read_u64(bytes: &[u8]) -> u64 {
    u64::from_le_bytes(bytes[..8].try_into().expect("8-byte slice"))
}

#[inline]
fn read_u32(bytes: &[u8]) -> u32 {
    u32::from_le_bytes(bytes[..4].try_into().expect("4-byte slice"))
}

#[inline]
fn round(acc: u64, input: u64) -> u64 {
    acc.wrapping_add(input.wrapping_mul(PRIME_2))
        .rotate_left(31)
        .wrapping_mul(PRIME_1)
}

#[inline]
fn merge_round(acc: u64, val: u64) -> u64 {
    (acc ^ round(0, val))
        .wrapping_mul(PRIME_1)
        .wrapping_add(PRIME_4)
}

/// XXH64 digest of `data` with the given seed.
pub fn xxh64(data: &[u8], seed: u64) -> u64 {
    let mut rest = data;
    let mut h = if data.len() >= 32 {
        let mut v1 = seed.wrapping_add(PRIME_1).wrapping_add(PRIME_2);
        let mut v2 = seed.wrapping_add(PRIME_2);
        let mut v3 = seed;
        let mut v4 = seed.wrapping_sub(PRIME_1);
        while rest.len() >= 32 {
            v1 = round(v1, read_u64(&rest[0..8]));
            v2 = round(v2, read_u64(&rest[8..16]));
            v3 = round(v3, read_u64(&rest[16..24]));
            v4 = round(v4, read_u64(&rest[24..32]));
            rest = &rest[32..];
        }
        let mut acc = v1
            .rotate_left(1)
            .wrapping_add(v2.rotate_left(7))
            .wrapping_add(v3.rotate_left(12))
            .wrapping_add(v4.rotate_left(18));
        acc = merge_round(acc, v1);
        acc = merge_round(acc, v2);
        acc = merge_round(acc, v3);
        merge_round(acc, v4)
    } else {
        seed.wrapping_add(PRIME_5)
    };

    h = h.wrapping_add(data.len() as u64);

    while rest.len() >= 8 {
        h ^= round(0, read_u64(rest));
        h = h
            .rotate_left(27)
            .wrapping_mul(PRIME_1)
            .wrapping_add(PRIME_4);
        rest = &rest[8..];
    }
    if rest.len() >= 4 {
        h ^= (read_u32(rest) as u64).wrapping_mul(PRIME_1);
        h = h
            .rotate_left(23)
            .wrapping_mul(PRIME_2)
            .wrapping_add(PRIME_3);
        rest = &rest[4..];
    }
    for &byte in rest {
        h ^= (byte as u64).wrapping_mul(PRIME_5);
        h = h.rotate_left(11).wrapping_mul(PRIME_1);
    }

    h ^= h >> 33;
    h = h.wrapping_mul(PRIME_2);
    h ^= h >> 29;
    h = h.wrapping_mul(PRIME_3);
    h ^= h >> 32;
    h
}

/// The store's fixed checksum seed: mixing the format name in keeps a
/// colf digest from colliding with the same bytes hashed elsewhere.
pub const COLF_SEED: u64 = 0xC01F_0002;

/// Section digest with the colf seed.
pub fn section_digest(data: &[u8]) -> u64 {
    xxh64(data, COLF_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_vectors_seed_zero() {
        // Reference vectors from the canonical xxHash test suite.
        assert_eq!(xxh64(b"", 0), 0xEF46_DB37_51D8_E999);
        assert_eq!(xxh64(b"a", 0), 0xD24E_C4F1_A98C_6E5B);
        assert_eq!(xxh64(b"abc", 0), 0x44BC_2CF5_AD77_0999);
    }

    #[test]
    fn seed_changes_digest() {
        assert_ne!(xxh64(b"spider", 0), xxh64(b"spider", 1));
        assert_ne!(xxh64(b"", 0), xxh64(b"", 7));
    }

    #[test]
    fn covers_all_tail_lengths() {
        // Exercise every branch: >=32 lanes, 8-byte, 4-byte, byte tail.
        let data: Vec<u8> = (0..=255u8).collect();
        let mut seen = std::collections::HashSet::new();
        for len in 0..data.len() {
            assert!(seen.insert(xxh64(&data[..len], 0)), "collision at {len}");
        }
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let data: Vec<u8> = (0..97u8).cycle().take(300).collect();
        let base = section_digest(&data);
        let mut flipped = data.clone();
        for pos in 0..flipped.len() {
            for bit in 0..8 {
                flipped[pos] ^= 1 << bit;
                assert_ne!(section_digest(&flipped), base, "byte {pos} bit {bit}");
                flipped[pos] ^= 1 << bit;
            }
        }
        assert_eq!(section_digest(&flipped), base);
    }

    #[test]
    fn deterministic() {
        let data = b"deterministic across calls";
        assert_eq!(xxh64(data, 42), xxh64(data, 42));
    }
}
