//! The corruption matrix: every injected fault must be *fully
//! recovered* or *cleanly quarantined* — never a panic, never silently
//! wrong numbers.
//!
//! Three layers of coverage:
//!
//! 1. **Section matrix** — for every checksummed region of a v2 colf
//!    file (header, section table, each of the nine columns) and every
//!    at-rest mutation (bit flip, byte smash, truncation at the
//!    section), the store's scrub must land the file in exactly the
//!    right bucket: spine damage (header / table / paths) quarantines
//!    with a nearest-day substitution; column damage degrades with the
//!    column reported lost and every surviving column bit-exact.
//! 2. **I/O fault kinds** — each [`FaultKind`] injected through
//!    [`FaultFs`] at the operation level: transients recover via retry,
//!    at-rest damage is detected, torn writes never corrupt the index.
//! 3. **Seeded soak** — a pseudo-random fault plan over a whole
//!    store lifecycle; every outcome reconciled against the originals.
//!
//! The seed comes from `SPIDER_FAULT_SEED` when set (CI runs three
//! fixed seeds); otherwise three defaults run.

use spider_snapshot::colf;
use spider_snapshot::faultfs::{FaultFs, FaultKind};
use spider_snapshot::io::OsIo;
use spider_snapshot::record::SnapshotRecord;
use spider_snapshot::snapshot::Snapshot;
use spider_snapshot::store::{RetryPolicy, SnapshotStore, StoreError, QUARANTINE_DIR};
use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

fn seeds() -> Vec<u64> {
    match std::env::var("SPIDER_FAULT_SEED") {
        Ok(raw) => vec![raw.parse().expect("SPIDER_FAULT_SEED must be a u64")],
        Err(_) => vec![0xA11CE, 0xB0B5_1ED5, 0xC0FF_EE42],
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn sample_snapshot(day: u32, n: usize) -> Snapshot {
    let records: Vec<SnapshotRecord> = (0..n)
        .map(|i| SnapshotRecord {
            path: format!(
                "/lustre/atlas1/proj{:02}/u{:02}/d{day}/f.{i:06}",
                i % 5,
                i % 9
            ),
            atime: 1_420_000_000 + day as u64 * 86_400 + i as u64 * 31,
            ctime: 1_420_000_000 + i as u64 * 17,
            mtime: 1_420_000_000 + i as u64 * 19,
            uid: 10_000 + (i % 23) as u32,
            gid: 2_000 + (i % 7) as u32,
            mode: if i % 9 == 0 { 0o040770 } else { 0o100664 },
            ino: day as u64 * 1_000_000 + i as u64,
            osts: ((i % 4) as u16..4)
                .map(|k| (k * 97, i as u32 + k as u32))
                .collect(),
        })
        .collect();
    Snapshot::new(day, 1_420_000_000 + day as u64 * 86_400, records)
}

const STORE_DAYS: [u32; 6] = [0, 7, 14, 21, 28, 35];

fn temp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("spider-fault-matrix-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Builds a clean six-snapshot store and returns the originals.
fn seed_store(dir: &Path) -> BTreeMap<u32, Snapshot> {
    let mut store = SnapshotStore::open(dir).expect("open clean store");
    let mut originals = BTreeMap::new();
    for day in STORE_DAYS {
        let snap = sample_snapshot(day, 40);
        store.put(&snap).expect("put clean snapshot");
        originals.insert(day, snap);
    }
    originals
}

/// Asserts that `got`'s surviving columns equal `want`'s, given the
/// sections reported lost. Lost numeric columns read as zero, lost osts
/// as empty — the documented defaults, detectably absent rather than
/// silently wrong.
fn assert_surviving_columns_exact(got: &Snapshot, want: &Snapshot, lost: &[&str]) {
    assert_eq!(got.len(), want.len(), "record count changed");
    for (g, w) in got.records().iter().zip(want.records()) {
        assert_eq!(g.path, w.path, "paths are the spine; never lossy");
        macro_rules! check {
            ($field:ident, $name:literal, $default:expr) => {
                if lost.contains(&$name) {
                    assert_eq!(g.$field, $default, "lost {} must read as default", $name);
                } else {
                    assert_eq!(g.$field, w.$field, "surviving {} must be exact", $name);
                }
            };
        }
        check!(atime, "atime", 0);
        check!(ctime, "ctime", 0);
        check!(mtime, "mtime", 0);
        check!(ino, "ino", 0);
        check!(uid, "uid", 0);
        check!(gid, "gid", 0);
        check!(mode, "mode", 0);
        check!(osts, "osts", Vec::new());
    }
}

/// Pushdown must never change answers on damaged files: a pruned
/// decode of the corrupted bytes returns exactly the rows the lossy
/// full decode keeps under the same predicate — a corrupted zone map
/// (or any lost column) degrades to full-section decode, never to
/// wrong numbers.
fn assert_pruned_decode_consistent(bytes: &[u8], cell: &str) {
    use spider_snapshot::columns::FrameColumns;
    use spider_snapshot::Pred;
    let full = match FrameColumns::decode_lossy(bytes) {
        Ok(f) => f,
        Err(_) => return, // store salvaged via other means; nothing to compare
    };
    let preds = [
        Pred::uid(10_005..=10_011),
        Pred::and(vec![Pred::gid(2_001..=2_003), Pred::stripes(2..)]),
        Pred::or(vec![Pred::ext_none(), Pred::mtime(..1_420_000_300)]),
        Pred::depth(..=5),
    ];
    for pred in &preds {
        let pruned = FrameColumns::decode_pruned(bytes, pred)
            .unwrap_or_else(|e| panic!("{cell}: pruned decode failed where lossy passed: {e}"));
        let expect: Vec<usize> = (0..full.len())
            .filter(|&i| full.pred_matches(pred, i))
            .collect();
        assert_eq!(pruned.len(), expect.len(), "{cell}: {pred:?}");
        for (j, &i) in expect.iter().enumerate() {
            assert_eq!(pruned.path(j), full.path(i), "{cell}: {pred:?}");
            assert_eq!(pruned.uid[j], full.uid[i], "{cell}: {pred:?}");
            assert_eq!(pruned.mtime[j], full.mtime[i], "{cell}: {pred:?}");
        }
    }
}

#[derive(Debug, Clone, Copy)]
enum Mutation {
    /// XOR one bit somewhere in the section.
    BitFlip,
    /// XOR up to four bytes with 0xFF.
    ByteSmash,
    /// Cut the file inside the section.
    TruncateAt,
}

fn mutate(bytes: &mut Vec<u8>, span: &colf::SectionSpan, mutation: Mutation, rng: &mut u64) {
    assert!(span.len > 0, "cannot mutate empty section {}", span.name);
    let pos = span.offset + (splitmix(rng) % span.len as u64) as usize;
    match mutation {
        Mutation::BitFlip => bytes[pos] ^= 1 << (splitmix(rng) % 8),
        Mutation::ByteSmash => {
            let end = (pos + 4).min(span.offset + span.len);
            for b in &mut bytes[pos..end] {
                *b ^= 0xFF;
            }
        }
        Mutation::TruncateAt => bytes.truncate(pos),
    }
}

/// The section × mutation × seed matrix.
#[test]
fn section_matrix_recovers_or_quarantines_every_cell() {
    // Spine sections: damage is unrecoverable by design.
    let spine = ["header", "section-table", "paths"];
    for seed in seeds() {
        let mut rng = seed;
        let names: Vec<&str> = {
            let probe = colf::encode(&sample_snapshot(14, 40));
            colf::section_table(&probe)
                .unwrap()
                .iter()
                .map(|s| s.name)
                .collect()
        };
        for target in &names {
            for mutation in [Mutation::BitFlip, Mutation::ByteSmash, Mutation::TruncateAt] {
                let dir = temp_dir(&format!("sec-{seed:x}-{target}-{mutation:?}"));
                let originals = seed_store(&dir);

                // Corrupt day 14's file at the target section.
                let victim = dir.join("snap-00014.colf");
                let mut bytes = fs::read(&victim).unwrap();
                let spans = colf::section_table(&bytes).unwrap();
                let span = spans.iter().find(|s| s.name == *target).unwrap().clone();
                mutate(&mut bytes, &span, mutation, &mut rng);
                fs::write(&victim, &bytes).unwrap();

                let mut store =
                    SnapshotStore::open_lenient(&dir, Arc::new(OsIo), RetryPolicy::immediate())
                        .unwrap();
                let health = store.scrub();

                let cell = format!("seed={seed:#x} section={target} mutation={mutation:?}");
                let quarantined: Vec<u32> = health.quarantined.iter().map(|q| q.day).collect();
                let degraded_day = health.degraded.iter().find(|d| d.day == 14);

                if spine.contains(target) {
                    // Spine damage: exactly day 14 quarantined, moved to
                    // quarantine/, substitution to the nearest survivor.
                    assert_eq!(quarantined, vec![14], "{cell}: expected quarantine");
                    assert!(degraded_day.is_none(), "{cell}: must not also degrade");
                    assert_eq!(health.substitute_for(14), Some(7), "{cell}: substitution");
                    assert!(
                        dir.join(QUARANTINE_DIR).join("snap-00014.colf").exists(),
                        "{cell}: file must move to quarantine/"
                    );
                    assert!(store.get(14).unwrap().is_none(), "{cell}: deindexed");
                } else {
                    // Column damage: day 14 degraded, never quarantined.
                    assert!(
                        quarantined.is_empty(),
                        "{cell}: {quarantined:?} quarantined"
                    );
                    let degraded = degraded_day.unwrap_or_else(|| {
                        panic!("{cell}: day 14 should be degraded, health {health:?}")
                    });
                    // Truncation takes the target section and everything
                    // after it; point mutations take exactly the target.
                    assert!(
                        degraded.lost_sections.contains(target),
                        "{cell}: lost {:?}",
                        degraded.lost_sections
                    );
                    if !matches!(mutation, Mutation::TruncateAt) {
                        assert_eq!(degraded.lost_sections, vec![*target], "{cell}");
                    }
                    let lossy = store.get_lossy(14).unwrap().unwrap();
                    assert_surviving_columns_exact(
                        &lossy.snapshot,
                        &originals[&14],
                        &degraded.lost_sections,
                    );
                    assert_pruned_decode_consistent(&fs::read(&victim).unwrap(), &cell);
                }

                // Every other day is untouched and healthy.
                for day in STORE_DAYS.iter().filter(|&&d| d != 14) {
                    assert!(
                        health.healthy_days.contains(day),
                        "{cell}: day {day} should stay healthy"
                    );
                    assert_eq!(
                        store.get(*day).unwrap().unwrap(),
                        originals[day],
                        "{cell}: day {day} changed"
                    );
                }
                fs::remove_dir_all(&dir).unwrap();
            }
        }
    }
}

/// Each I/O-level fault kind, injected through the FaultFs shim.
#[test]
fn io_fault_kinds_recover_or_quarantine() {
    for seed in seeds() {
        for kind in FaultKind::READ_KINDS {
            let dir = temp_dir(&format!("io-{seed:x}-{kind:?}"));
            let originals = seed_store(&dir);

            let ffs = Arc::new(FaultFs::new(OsIo, seed));
            let store = SnapshotStore::open_with_io(
                &dir,
                ffs.clone() as Arc<dyn spider_snapshot::io::StoreIo>,
                RetryPolicy::immediate(),
            )
            .unwrap();
            // Open peeked one prefix per day; the next read is op 6.
            let first_get_op = STORE_DAYS.len() as u64;
            ffs.plan_read(first_get_op, kind);

            let cell = format!("seed={seed:#x} kind={kind:?}");
            match kind {
                FaultKind::TransientEio | FaultKind::ShortRead => {
                    // Transient: the store must heal it invisibly.
                    let got = store.get(14).unwrap().unwrap();
                    assert_eq!(got, originals[&14], "{cell}: recovered value wrong");
                    assert_eq!(ffs.injected().len(), 1, "{cell}: fault must fire");
                }
                FaultKind::BitFlip | FaultKind::Truncate => {
                    // At rest: strict reads must fail loudly (never wrong
                    // numbers), and scrub must then classify the damage.
                    match store.get(14) {
                        Ok(Some(got)) => {
                            assert_eq!(got, originals[&14], "{cell}: silent corruption")
                        }
                        Ok(None) => panic!("{cell}: day vanished"),
                        Err(StoreError::Colf(_)) | Err(StoreError::Io(_)) => {}
                        Err(e) => panic!("{cell}: unexpected error {e}"),
                    }
                    let mut store = SnapshotStore::open_lenient(
                        &dir,
                        ffs.clone() as Arc<dyn spider_snapshot::io::StoreIo>,
                        RetryPolicy::immediate(),
                    )
                    .unwrap();
                    let health = store.scrub();
                    let accounted = health.healthy_days.contains(&14)
                        || health.degraded.iter().any(|d| d.day == 14)
                        || health.quarantined.iter().any(|q| q.day == 14);
                    assert!(accounted, "{cell}: day 14 unaccounted, health {health:?}");
                    for q in &health.quarantined {
                        assert!(
                            health.substitute_for(q.day).is_some(),
                            "{cell}: quarantined day {} has no substitute",
                            q.day
                        );
                    }
                }
                FaultKind::TornWrite => unreachable!("not a read kind"),
            }
            fs::remove_dir_all(&dir).unwrap();
        }

        // Torn writes: the put fails (or retries through), and the store
        // index never holds a half-written file.
        let dir = temp_dir(&format!("io-{seed:x}-torn"));
        let ffs = Arc::new(FaultFs::new(OsIo, seed));
        let mut store = SnapshotStore::open_with_io(
            &dir,
            ffs.clone() as Arc<dyn spider_snapshot::io::StoreIo>,
            RetryPolicy::immediate(),
        )
        .unwrap();
        ffs.plan_write(0, FaultKind::TornWrite);
        let snap = sample_snapshot(7, 40);
        // First write attempt tears; the retry succeeds.
        store
            .put(&snap)
            .expect("retry should absorb one torn write");
        assert_eq!(store.get(7).unwrap().unwrap(), snap);
        assert_eq!(ffs.injected().len(), 1);
        fs::remove_dir_all(&dir).unwrap();
    }
}

/// Whole-lifecycle soak under a pseudo-random seeded fault plan.
#[test]
fn seeded_soak_never_panics_and_never_lies() {
    for seed in seeds() {
        let dir = temp_dir(&format!("soak-{seed:x}"));
        // Establish originals with clean I/O first.
        let originals = seed_store(&dir);

        // Re-open the archive through a faulty lens and scrub it.
        let ffs = Arc::new(FaultFs::seeded(OsIo, seed, 64));
        let mut store = SnapshotStore::open_lenient(
            &dir,
            ffs.clone() as Arc<dyn spider_snapshot::io::StoreIo>,
            RetryPolicy::immediate(),
        )
        .unwrap();
        let health = store.scrub();

        // Every day accounted for exactly once.
        let mut seen: Vec<u32> = health.healthy_days.clone();
        seen.extend(health.degraded.iter().map(|d| d.day));
        seen.extend(health.quarantined.iter().map(|q| q.day));
        seen.sort_unstable();
        assert_eq!(
            seen,
            STORE_DAYS.to_vec(),
            "seed {seed:#x}: days unaccounted"
        );

        // Healthy days must read back exactly — or fail loudly if a
        // later planned fault hits; an Ok that differs is the one
        // forbidden outcome.
        for &day in &health.healthy_days {
            match store.get(day) {
                Ok(Some(got)) => assert_eq!(got, originals[&day], "seed {seed:#x} day {day}"),
                Ok(None) => panic!("seed {seed:#x}: healthy day {day} vanished"),
                Err(_) => {} // a fresh injected fault; loud is fine
            }
        }
        // Degraded days: surviving sections exact, lost ones defaulted.
        for d in &health.degraded {
            if let Ok(Some(lossy)) = store.get_lossy(d.day) {
                if lossy.lost_sections == d.lost_sections {
                    assert_surviving_columns_exact(
                        &lossy.snapshot,
                        &originals[&d.day],
                        &d.lost_sections,
                    );
                }
            }
        }
        // Quarantined days have substitutes as long as anything survived.
        if health.quarantined.len() < STORE_DAYS.len() {
            for q in &health.quarantined {
                let sub = health
                    .substitute_for(q.day)
                    .unwrap_or_else(|| panic!("seed {seed:#x}: no substitute for {}", q.day));
                assert!(STORE_DAYS.contains(&sub) && sub != q.day);
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }
}
