//! Golden-fixture regression tests for the colf format.
//!
//! `tests/fixtures/` holds tiny committed `.colf` files — valid v1,
//! v2, and v3, plus deliberately corrupted variants. They freeze the
//! on-disk format: an encoder change that silently breaks the archive
//! of half a terabyte of historical snapshots fails here first, against
//! files a few hundred bytes long.
//!
//! Regenerate (after an *intentional* format change) with:
//! `SPIDER_BLESS_FIXTURES=1` set for this test binary, then commit the
//! new files alongside the code change.

use spider_snapshot::colf::{self, ColfError};
use spider_snapshot::record::SnapshotRecord;
use spider_snapshot::snapshot::Snapshot;
use std::fs;
use std::path::PathBuf;

fn fixtures_dir() -> PathBuf {
    // Under cargo the manifest dir is set at compile time; the offline
    // rustc harness runs from the repo root instead.
    match option_env!("CARGO_MANIFEST_DIR") {
        Some(dir) => PathBuf::from(dir).join("tests/fixtures"),
        None => PathBuf::from("crates/snapshot/tests/fixtures"),
    }
}

/// The canonical fixture snapshot: covers front-coded paths, shared
/// prefixes, a directory, empty and multi-stripe ost lists, and
/// non-ASCII text. Must never change — it is baked into the fixtures.
fn fixture_snapshot() -> Snapshot {
    let records = vec![
        SnapshotRecord {
            path: "/lustre/atlas1/abc101/u1".to_string(),
            atime: 1_421_000_000,
            ctime: 1_420_000_000,
            mtime: 1_420_000_000,
            uid: 10_001,
            gid: 2_001,
            mode: 0o040770,
            ino: 100,
            osts: vec![],
        },
        SnapshotRecord {
            path: "/lustre/atlas1/abc101/u1/data.h5".to_string(),
            atime: 1_421_100_000,
            ctime: 1_420_100_000,
            mtime: 1_420_100_000,
            uid: 10_001,
            gid: 2_001,
            mode: 0o100664,
            ino: 101,
            osts: vec![(7, 0x10), (19, 0x11), (755, 0x12)],
        },
        SnapshotRecord {
            path: "/lustre/atlas1/abc101/u1/restart.0001".to_string(),
            atime: 1_421_200_000,
            ctime: 1_420_200_000,
            mtime: 1_420_150_000,
            uid: 10_001,
            gid: 2_001,
            mode: 0o100600,
            ino: 102,
            osts: vec![(7, 0x20)],
        },
        SnapshotRecord {
            path: "/lustre/atlas1/xyz202/σμβ/out.αβ".to_string(),
            atime: 1_421_300_000,
            ctime: 1_420_300_000,
            mtime: 1_420_300_000,
            uid: 10_002,
            gid: 2_002,
            mode: 0o100664,
            ino: 103,
            osts: vec![(2015, 0xFFFF_FFFF)],
        },
    ];
    Snapshot::new(42, 1_421_625_600, records)
}

/// Derives the corrupted variants from the clean v2 bytes. Kept in code
/// so the corruption is reproducible and documented.
fn corrupt_variants(v2: &[u8]) -> Vec<(&'static str, Vec<u8>)> {
    let spans = colf::section_table(v2).expect("fixture v2 must parse");
    let span = |name: &str| spans.iter().find(|s| s.name == name).unwrap().clone();

    let osts = span("osts");
    let mut osts_corrupt = v2.to_vec();
    osts_corrupt[osts.offset + osts.len / 2] ^= 0xFF;

    let paths = span("paths");
    let mut paths_corrupt = v2.to_vec();
    paths_corrupt[paths.offset + 1] ^= 0xFF;

    let truncated = v2[..osts.offset + 1].to_vec();

    vec![
        ("tiny-v2-osts-corrupt.colf", osts_corrupt),
        ("tiny-v2-paths-corrupt.colf", paths_corrupt),
        ("tiny-v2-truncated.colf", truncated),
    ]
}

/// The corrupted v3 variant: a flipped byte inside the `zonemap`
/// section, which must degrade to an unpruned full decode — never a
/// wrong answer.
fn v3_zonemap_corrupt(v3: &[u8]) -> Vec<u8> {
    let spans = colf::section_table(v3).expect("fixture v3 must parse");
    let zm = spans.iter().find(|s| s.name == "zonemap").unwrap();
    let mut out = v3.to_vec();
    out[zm.offset + zm.len / 2] ^= 0xFF;
    out
}

fn all_fixtures() -> Vec<(&'static str, Vec<u8>)> {
    let snap = fixture_snapshot();
    let v2 = colf::encode_v2(&snap);
    let v3 = colf::encode(&snap);
    let mut out = vec![
        ("tiny-v1.colf", colf::encode_v1(&snap)),
        ("tiny-v2.colf", v2.clone()),
        ("tiny-v3.colf", v3.clone()),
        ("tiny-v3-zonemap-corrupt.colf", v3_zonemap_corrupt(&v3)),
    ];
    out.extend(corrupt_variants(&v2));
    out
}

#[test]
fn bless_fixtures_when_asked() {
    if std::env::var("SPIDER_BLESS_FIXTURES").is_err() {
        return;
    }
    let dir = fixtures_dir();
    fs::create_dir_all(&dir).unwrap();
    for (name, bytes) in all_fixtures() {
        fs::write(dir.join(name), bytes).unwrap();
    }
}

fn read_fixture(name: &str) -> Vec<u8> {
    let path = fixtures_dir().join(name);
    fs::read(&path).unwrap_or_else(|e| panic!("missing fixture {}: {e}", path.display()))
}

#[test]
fn v1_fixture_still_decodes() {
    let snap = colf::decode(&read_fixture("tiny-v1.colf")).expect("v1 fixture must decode");
    assert_eq!(snap, fixture_snapshot());
}

#[test]
fn v2_fixture_still_decodes() {
    let snap = colf::decode(&read_fixture("tiny-v2.colf")).expect("v2 fixture must decode");
    assert_eq!(snap, fixture_snapshot());
}

#[test]
fn encoder_output_is_byte_stable() {
    // The committed fixtures pin the encoders byte-for-byte: any change
    // to the layout, varint packing, zone framing, or checksum seed
    // shows up here.
    assert_eq!(
        colf::encode(&fixture_snapshot()),
        read_fixture("tiny-v3.colf"),
        "v3 encoder output drifted from the golden fixture"
    );
    assert_eq!(
        colf::encode_v2(&fixture_snapshot()),
        read_fixture("tiny-v2.colf"),
        "v2 encoder output drifted from the golden fixture"
    );
    assert_eq!(
        colf::encode_v1(&fixture_snapshot()),
        read_fixture("tiny-v1.colf"),
        "v1 encoder output drifted from the golden fixture"
    );
}

#[test]
fn v3_fixture_still_decodes() {
    let snap = colf::decode(&read_fixture("tiny-v3.colf")).expect("v3 fixture must decode");
    assert_eq!(snap, fixture_snapshot());
}

#[test]
fn corrupt_zonemap_fixture_degrades_without_wrong_answers() {
    use spider_snapshot::{FrameColumns, Pred};
    let bytes = read_fixture("tiny-v3-zonemap-corrupt.colf");
    // Strict: the checksum mismatch is an error.
    assert!(matches!(
        colf::decode(&bytes),
        Err(ColfError::Corrupt {
            section: "zonemap",
            ..
        })
    ));
    // Lossy: rows are untouched (the zone map carries no row data).
    let lossy = colf::decode_lossy(&bytes).expect("zonemap loss is recoverable");
    assert_eq!(lossy.lost_sections, vec!["zonemap"]);
    assert_eq!(lossy.snapshot, fixture_snapshot());
    // Pruned decodes fall back to full-decode-and-filter — identical
    // rows to filtering the lossy decode, never a wrong answer.
    for pred in [Pred::uid(10_002..), Pred::ext("h5"), Pred::day(0..=5)] {
        let pruned = FrameColumns::decode_pruned(&bytes, &pred).unwrap();
        let full = FrameColumns::decode_lossy(&bytes).unwrap();
        let expect: Vec<usize> = (0..full.len())
            .filter(|&i| full.pred_matches(&pred, i))
            .collect();
        assert_eq!(pruned.len(), expect.len(), "{pred:?}");
        for (j, &i) in expect.iter().enumerate() {
            assert_eq!(pruned.path(j), full.path(i));
            assert_eq!(pruned.uid[j], full.uid[i]);
        }
    }
}

#[test]
fn corrupt_osts_fixture_degrades_as_documented() {
    let bytes = read_fixture("tiny-v2-osts-corrupt.colf");
    assert!(matches!(
        colf::decode(&bytes),
        Err(ColfError::Corrupt {
            section: "osts",
            ..
        })
    ));
    let lossy = colf::decode_lossy(&bytes).expect("osts loss is recoverable");
    assert_eq!(lossy.lost_sections, vec!["osts"]);
    let want = fixture_snapshot();
    assert_eq!(lossy.snapshot.len(), want.len());
    for (got, orig) in lossy.snapshot.records().iter().zip(want.records()) {
        assert_eq!(got.path, orig.path);
        assert_eq!(got.atime, orig.atime);
        assert_eq!(got.mode, orig.mode);
        assert!(got.osts.is_empty());
    }
}

#[test]
fn corrupt_paths_fixture_is_unrecoverable() {
    let bytes = read_fixture("tiny-v2-paths-corrupt.colf");
    assert!(colf::decode(&bytes).is_err());
    assert!(colf::decode_lossy(&bytes).is_err());
}

#[test]
fn truncated_fixture_errors_strictly_and_salvages_lossily() {
    let bytes = read_fixture("tiny-v2-truncated.colf");
    assert!(colf::decode(&bytes).is_err());
    let lossy = colf::decode_lossy(&bytes).expect("prefix sections salvage");
    assert_eq!(lossy.lost_sections, vec!["osts"]);
    assert_eq!(lossy.snapshot.len(), fixture_snapshot().len());
}

#[test]
fn fixtures_match_their_in_code_derivation() {
    // The corrupted fixtures must stay derivable from the clean one —
    // guards against hand-edited fixture drift.
    for (name, bytes) in all_fixtures() {
        assert_eq!(read_fixture(name), bytes, "fixture {name} drifted");
    }
}
