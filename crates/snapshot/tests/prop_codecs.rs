//! Property-based tests for the PSV and colf codecs and the diff engine.

use proptest::prelude::*;
use spider_snapshot::{colf, psv, Snapshot, SnapshotDiff, SnapshotRecord};

/// A path component without separators or the PSV delimiter.
fn component() -> impl Strategy<Value = String> {
    "[a-zA-Z0-9._-]{1,12}".prop_filter("no dot-only names", |s| s != "." && s != "..")
}

fn record_strategy() -> impl Strategy<Value = SnapshotRecord> {
    (
        prop::collection::vec(component(), 1..6),
        0u64..2_000_000_000,
        0u64..2_000_000_000,
        0u64..2_000_000_000,
        any::<u32>(),
        any::<u32>(),
        prop::bool::ANY,
        any::<u64>(),
        prop::collection::vec((0u16..2016, any::<u32>()), 0..6),
    )
        .prop_map(
            |(components, atime, ctime, mtime, uid, gid, is_dir, ino, osts)| SnapshotRecord {
                path: format!("/{}", components.join("/")),
                atime,
                ctime,
                mtime,
                uid,
                gid,
                mode: if is_dir { 0o040770 } else { 0o100664 },
                ino,
                osts: if is_dir { vec![] } else { osts },
            },
        )
}

fn snapshot_strategy() -> impl Strategy<Value = Snapshot> {
    (
        0u32..1000,
        0u64..2_000_000_000,
        prop::collection::vec(record_strategy(), 0..60),
    )
        .prop_map(|(day, taken, mut records)| {
            // Deduplicate paths (a namespace has unique paths).
            records.sort_by(|a, b| a.path.cmp(&b.path));
            records.dedup_by(|a, b| a.path == b.path);
            Snapshot::new(day, taken, records)
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// PSV round-trips any snapshot.
    #[test]
    fn psv_roundtrip(snapshot in snapshot_strategy()) {
        let mut bytes = Vec::new();
        psv::write_psv(&snapshot, &mut bytes).unwrap();
        let decoded = psv::read_psv(bytes.as_slice()).unwrap();
        prop_assert_eq!(decoded, snapshot);
    }

    /// colf round-trips any snapshot.
    #[test]
    fn colf_roundtrip(snapshot in snapshot_strategy()) {
        let decoded = colf::decode(&colf::encode(&snapshot)).unwrap();
        prop_assert_eq!(decoded, snapshot);
    }

    /// Truncating a colf buffer anywhere yields an error, never a panic
    /// or a silently wrong snapshot.
    #[test]
    fn colf_truncation_safe(snapshot in snapshot_strategy(), cut_frac in 0.0..1.0f64) {
        let bytes = colf::encode(&snapshot);
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        if cut < bytes.len() {
            prop_assert!(colf::decode(&bytes[..cut]).is_err());
        }
    }

    /// Bit-flipping the header magic or version is always rejected.
    #[test]
    fn colf_header_corruption_rejected(snapshot in snapshot_strategy(), byte in 0usize..5) {
        let mut bytes = colf::encode(&snapshot);
        bytes[byte] ^= 0xff;
        prop_assert!(colf::decode(&bytes).is_err());
    }

    /// The section-checksum guarantee: XOR-ing any single byte of a valid
    /// colf buffer with any nonzero pattern either fails to decode or
    /// decodes to the identical record set — never a silently *different*
    /// snapshot. (The deterministic exhaustive variant lives in the colf
    /// unit tests; this one samples random positions and patterns.)
    #[test]
    fn colf_single_byte_mutation_detected_or_harmless(
        snapshot in snapshot_strategy(),
        pos_frac in 0.0..1.0f64,
        pattern in 1u8..,
    ) {
        let bytes = colf::encode(&snapshot);
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        let mut mutated = bytes.clone();
        mutated[pos] ^= pattern;
        match colf::decode(&mutated) {
            Err(_) => {}
            Ok(decoded) => prop_assert_eq!(
                decoded.records(),
                snapshot.records(),
                "byte {} ^ {:#x} changed the decode", pos, pattern
            ),
        }
    }

    /// Lossy decode under the same mutation: when it succeeds, every
    /// section it does NOT report lost must be byte-identical to the
    /// original column — degradation is explicit, never silent.
    #[test]
    fn colf_lossy_mutation_reports_what_it_lost(
        snapshot in snapshot_strategy(),
        pos_frac in 0.0..1.0f64,
        pattern in 1u8..,
    ) {
        let bytes = colf::encode(&snapshot);
        let pos = ((bytes.len() as f64) * pos_frac) as usize % bytes.len();
        let mut mutated = bytes.clone();
        mutated[pos] ^= pattern;
        if let Ok(lossy) = colf::decode_lossy(&mutated) {
            prop_assert_eq!(lossy.snapshot.len(), snapshot.len());
            let lost = &lossy.lost_sections;
            for (got, orig) in lossy.snapshot.records().iter().zip(snapshot.records()) {
                prop_assert_eq!(&got.path, &orig.path, "paths are never lossy");
                if !lost.contains(&"atime") { prop_assert_eq!(got.atime, orig.atime); }
                if !lost.contains(&"ctime") { prop_assert_eq!(got.ctime, orig.ctime); }
                if !lost.contains(&"mtime") { prop_assert_eq!(got.mtime, orig.mtime); }
                if !lost.contains(&"ino") { prop_assert_eq!(got.ino, orig.ino); }
                if !lost.contains(&"uid") { prop_assert_eq!(got.uid, orig.uid); }
                if !lost.contains(&"gid") { prop_assert_eq!(got.gid, orig.gid); }
                if !lost.contains(&"mode") { prop_assert_eq!(got.mode, orig.mode); }
                if !lost.contains(&"osts") { prop_assert_eq!(&got.osts, &orig.osts); }
            }
        }
    }

    /// The diff's five categories partition the union of file paths.
    #[test]
    fn diff_partitions_the_union(a in snapshot_strategy(), b in snapshot_strategy()) {
        // Re-label days so b is "after" a (irrelevant to the diff logic).
        let diff = SnapshotDiff::compute(&a, &b);
        let counts = diff.breakdown();
        let mut union: std::collections::BTreeSet<&str> = a
            .records()
            .iter()
            .filter(|r| r.is_file())
            .map(|r| r.path.as_str())
            .collect();
        union.extend(
            b.records()
                .iter()
                .filter(|r| r.is_file())
                .map(|r| r.path.as_str()),
        );
        prop_assert_eq!(
            counts.new + counts.deleted + counts.readonly + counts.updated + counts.untouched,
            union.len() as u64
        );
        // Category index vectors point at real records of the right side.
        for &i in &diff.deleted {
            prop_assert!(a.records()[i as usize].is_file());
        }
        for &i in diff.new.iter().chain(&diff.readonly).chain(&diff.updated).chain(&diff.untouched) {
            prop_assert!(b.records()[i as usize].is_file());
        }
    }

    /// The PSV parser never panics on arbitrary input lines — it returns
    /// errors (fuzz-style robustness).
    #[test]
    fn psv_parser_never_panics(line in ".{0,200}") {
        let _ = psv::parse_record(&line, 1);
    }

    /// Full PSV documents of arbitrary text never panic the reader.
    #[test]
    fn psv_reader_never_panics(text in "[ -~\n|]{0,400}") {
        let _ = psv::read_psv(text.as_bytes());
    }

    /// The colf decoder never panics on arbitrary bytes.
    #[test]
    fn colf_decoder_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
        let _ = colf::decode(&bytes);
    }

    /// A valid header followed by arbitrary garbage never panics either.
    #[test]
    fn colf_decoder_survives_garbage_body(
        snapshot in snapshot_strategy(),
        garbage in prop::collection::vec(any::<u8>(), 1..100),
        keep in 5usize..40,
    ) {
        let mut bytes = colf::encode(&snapshot);
        bytes.truncate(keep.min(bytes.len()));
        bytes.extend(garbage);
        let _ = colf::decode(&bytes);
    }

    /// Diffing a snapshot against itself yields only untouched files.
    #[test]
    fn self_diff_is_untouched(snapshot in snapshot_strategy()) {
        let diff = SnapshotDiff::compute(&snapshot, &snapshot);
        let counts = diff.breakdown();
        prop_assert_eq!(counts.new + counts.deleted + counts.readonly + counts.updated, 0);
        prop_assert_eq!(counts.untouched, snapshot.file_count());
    }
}
