//! Empirical cumulative distribution functions.
//!
//! Figures 6(a,b), 8(a,b) of the paper are CDFs over discrete per-entity
//! counts (projects per user, users per project, directory depth, files per
//! user/project). This module provides an exact ECDF with evaluation,
//! inverse lookup, and step-point extraction for plotting/CSV emission.

use serde::{Deserialize, Serialize};

/// An exact empirical CDF over a finite sample.
///
/// ```
/// use spider_stats::EmpiricalCdf;
///
/// // Projects per user: most users hold one project, some several.
/// let cdf = EmpiricalCdf::new(vec![1.0, 1.0, 2.0, 2.0, 8.0]);
/// assert_eq!(cdf.eval(1.0), 0.4);           // 40% hold exactly one
/// assert_eq!(cdf.ccdf(1.0), 0.6);           // 60% hold more than one
/// assert_eq!(cdf.inverse(0.9), Some(8.0));  // the 90th percentile user
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct EmpiricalCdf {
    sorted: Vec<f64>,
}

impl EmpiricalCdf {
    /// Builds the ECDF; NaNs are dropped, the rest sorted.
    pub fn new(mut values: Vec<f64>) -> Self {
        values.retain(|v| !v.is_nan());
        values.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));
        EmpiricalCdf { sorted: values }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `F(x)` — fraction of samples `<= x`. Returns 0 for an empty sample.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        self.sorted.partition_point(|&v| v <= x) as f64 / self.sorted.len() as f64
    }

    /// Generalized inverse `F^{-1}(p)`: the smallest sample value whose
    /// cumulative fraction reaches `p`. `None` if empty or `p` outside
    /// `(0, 1]`.
    pub fn inverse(&self, p: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0..=1.0).contains(&p) || p == 0.0 {
            return None;
        }
        let n = self.sorted.len();
        let rank = (p * n as f64).ceil() as usize;
        Some(self.sorted[rank.min(n) - 1])
    }

    /// Step points `(x, F(x))` at each distinct sample value, suitable for
    /// plotting the CDF or writing a figure series.
    pub fn steps(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n {
            let x = self.sorted[i];
            let mut j = i + 1;
            while j < n && self.sorted[j] == x {
                j += 1;
            }
            out.push((x, j as f64 / n as f64));
            i = j;
        }
        out
    }

    /// Fraction of samples strictly greater than `x` (`1 - F(x)`), the
    /// complementary CDF used for statements like "60% of users participated
    /// in more than one project".
    pub fn ccdf(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            1.0 - self.eval(x)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cdf() {
        let c = EmpiricalCdf::new(vec![]);
        assert!(c.is_empty());
        assert_eq!(c.eval(1.0), 0.0);
        assert_eq!(c.inverse(0.5), None);
        assert!(c.steps().is_empty());
    }

    #[test]
    fn eval_simple() {
        let c = EmpiricalCdf::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.eval(0.5), 0.0);
        assert_eq!(c.eval(1.0), 0.25);
        assert_eq!(c.eval(2.5), 0.5);
        assert_eq!(c.eval(4.0), 1.0);
        assert_eq!(c.eval(100.0), 1.0);
    }

    #[test]
    fn inverse_simple() {
        let c = EmpiricalCdf::new(vec![10.0, 20.0, 30.0, 40.0]);
        assert_eq!(c.inverse(0.25), Some(10.0));
        assert_eq!(c.inverse(0.26), Some(20.0));
        assert_eq!(c.inverse(1.0), Some(40.0));
        assert_eq!(c.inverse(0.0), None);
        assert_eq!(c.inverse(1.5), None);
    }

    #[test]
    fn steps_collapse_duplicates() {
        let c = EmpiricalCdf::new(vec![1.0, 1.0, 1.0, 2.0, 3.0, 3.0]);
        let steps = c.steps();
        assert_eq!(steps, vec![(1.0, 0.5), (2.0, 4.0 / 6.0), (3.0, 1.0)]);
    }

    #[test]
    fn steps_are_monotone_and_end_at_one() {
        let c = EmpiricalCdf::new((0..50).map(|i| ((i * 13) % 7) as f64).collect());
        let steps = c.steps();
        for w in steps.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert_eq!(steps.last().unwrap().1, 1.0);
    }

    #[test]
    fn ccdf_complements_cdf() {
        let c = EmpiricalCdf::new(vec![1.0, 2.0, 2.0, 5.0]);
        for x in [0.0, 1.0, 2.0, 3.0, 5.0, 6.0] {
            assert!((c.eval(x) + c.ccdf(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn projects_per_user_style() {
        // 40% of users in 1 project, 40% in 2, 20% in 3+ — paper-style claim
        // "more than 60% participated in more than one project" fails here,
        // but "exactly 60% in more than one" holds.
        let mut v = vec![1.0; 4];
        v.extend(vec![2.0; 4]);
        v.extend(vec![8.0; 2]);
        let c = EmpiricalCdf::new(v);
        assert!((c.ccdf(1.0) - 0.6).abs() < 1e-12);
        assert!((c.ccdf(2.0) - 0.2).abs() < 1e-12);
    }
}
