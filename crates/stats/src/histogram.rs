//! Fixed-width and logarithmic histograms.
//!
//! Degree distributions (Fig. 18b) and component-size distributions
//! (Table 3) are heavy-tailed; log-binned histograms make the power-law
//! visible while linear histograms serve bounded quantities like weekly
//! access-pattern shares (Fig. 13).

use serde::{Deserialize, Serialize};

/// A fixed-width histogram over `[lo, hi)` with `bins` equal buckets plus
/// underflow/overflow counters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram over `[lo, hi)` with `bins` buckets.
    ///
    /// # Panics
    /// Panics if `bins == 0` or `lo >= hi`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Adds an observation.
    pub fn push(&mut self, value: f64) {
        if value < self.lo {
            self.underflow += 1;
        } else if value >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = ((value - self.lo) / w) as usize;
            // Guard against FP edge (value infinitesimally below hi).
            let idx = idx.min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Per-bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the upper bound.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations, including out-of-range ones.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// `(bin_center, count)` pairs.
    pub fn centers(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * w, c))
            .collect()
    }
}

/// A base-2 logarithmic histogram for positive integer-ish quantities
/// (degrees, file counts, component sizes). Bucket `k` covers
/// `[2^k, 2^(k+1))`; zero values get a dedicated bucket.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct LogHistogram {
    zero: u64,
    counts: Vec<u64>,
}

impl LogHistogram {
    /// Creates an empty log histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a non-negative observation.
    pub fn push(&mut self, value: u64) {
        if value == 0 {
            self.zero += 1;
            return;
        }
        let k = 63 - value.leading_zeros() as usize; // floor(log2(value))
        if self.counts.len() <= k {
            self.counts.resize(k + 1, 0);
        }
        self.counts[k] += 1;
    }

    /// Count of zero observations.
    pub fn zeros(&self) -> u64 {
        self.zero
    }

    /// `(bucket_lower_bound, count)` pairs for non-empty buckets.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (1u64 << k, c))
            .collect()
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.zero + self.counts.iter().sum::<u64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for v in [0.0, 1.9, 2.0, 5.5, 9.999] {
            h.push(v);
        }
        assert_eq!(h.counts(), &[2, 1, 1, 0, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn out_of_range_goes_to_flows() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.push(-0.5);
        h.push(1.0); // hi is exclusive
        h.push(2.0);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_panics() {
        let _ = Histogram::new(0.0, 1.0, 0);
    }

    #[test]
    fn centers_are_midpoints() {
        let mut h = Histogram::new(0.0, 4.0, 2);
        h.push(0.5);
        h.push(3.0);
        assert_eq!(h.centers(), vec![(1.0, 1), (3.0, 1)]);
    }

    #[test]
    fn log_histogram_buckets() {
        let mut h = LogHistogram::new();
        for v in [0, 1, 1, 2, 3, 4, 7, 8, 1024] {
            h.push(v);
        }
        assert_eq!(h.zeros(), 1);
        assert_eq!(h.buckets(), vec![(1, 2), (2, 2), (4, 2), (8, 1), (1024, 1)]);
        assert_eq!(h.total(), 9);
    }

    #[test]
    fn log_histogram_power_of_two_edges() {
        let mut h = LogHistogram::new();
        h.push(1);
        h.push(2);
        h.push(4);
        h.push(u64::MAX);
        let b = h.buckets();
        assert_eq!(b[0], (1, 1));
        assert_eq!(b[1], (2, 1));
        assert_eq!(b[2], (4, 1));
        assert_eq!(b[3], (1u64 << 63, 1));
    }
}
