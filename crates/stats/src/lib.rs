//! # spider-stats
//!
//! Statistics primitives shared by the Spider II metadata-analysis
//! reproduction (SC '17, "Scientific User Behavior and Data-Sharing Trends
//! in a Petascale File System").
//!
//! The paper reports almost all of its findings through a small set of
//! distributional summaries:
//!
//! * **empirical CDFs** (Figs. 6 and 8 — projects per user, users per
//!   project, directory depth, file counts),
//! * **quantile boxes** (Figs. 9 and 17 — min/25th/median/75th/max per
//!   science domain),
//! * **coefficient of variation** `c_v = σ/μ` of timestamp distributions
//!   (Fig. 17 and Table 1 — burstiness of file operations),
//! * **power-law degree fits** on a log–log scale (Fig. 18b), and
//! * **time-series trends** (Figs. 10, 15, 16).
//!
//! This crate provides exactly those primitives, with an emphasis on
//! single-pass streaming computation (the analysis engine scans multi-million
//! row snapshot frames) and on numerical behaviour that is well-defined for
//! the degenerate inputs a file-system scan produces (empty groups, constant
//! timestamps, single-file projects).

#![warn(missing_docs)]

pub mod cdf;
pub mod histogram;
pub mod linreg;
pub mod moments;
pub mod powerlaw;
pub mod quantile;
pub mod sketch;
pub mod timeseries;

pub use cdf::EmpiricalCdf;
pub use histogram::{Histogram, LogHistogram};
pub use linreg::LinearFit;
pub use moments::StreamingMoments;
pub use powerlaw::PowerLawFit;
pub use quantile::{FiveNumber, Quantiles};
pub use sketch::QuantileSketch;
pub use timeseries::TimeSeries;
