//! Ordinary least-squares linear regression.
//!
//! Used directly for trend lines over time series (Fig. 15 growth, Fig. 16
//! file age) and indirectly by the power-law fitter (log–log regression of
//! Fig. 18b).

use serde::{Deserialize, Serialize};

/// Result of fitting `y = slope * x + intercept` by least squares.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 = perfect fit). For a
    /// constant-`y` input the residuals are zero and `r2` is defined as 1.
    pub r2: f64,
    /// Number of points used.
    pub n: usize,
}

impl LinearFit {
    /// Fits `(x, y)` pairs. Returns `None` with fewer than two points or
    /// when all `x` are identical (vertical line).
    pub fn fit(points: &[(f64, f64)]) -> Option<LinearFit> {
        let n = points.len();
        if n < 2 {
            return None;
        }
        let nf = n as f64;
        let mean_x = points.iter().map(|p| p.0).sum::<f64>() / nf;
        let mean_y = points.iter().map(|p| p.1).sum::<f64>() / nf;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for &(x, y) in points {
            let dx = x - mean_x;
            let dy = y - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }
        if sxx == 0.0 {
            return None;
        }
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let r2 = if syy == 0.0 {
            1.0
        } else {
            (sxy * sxy) / (sxx * syy)
        };
        Some(LinearFit {
            slope,
            intercept,
            r2,
            n,
        })
    }

    /// Predicted `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let f = LinearFit::fit(&pts).unwrap();
        assert!((f.slope - 3.0).abs() < 1e-12);
        assert!((f.intercept - 2.0).abs() < 1e-12);
        assert!((f.r2 - 1.0).abs() < 1e-12);
        assert!((f.predict(100.0) - 302.0).abs() < 1e-9);
    }

    #[test]
    fn constant_y() {
        let pts: Vec<(f64, f64)> = (0..5).map(|i| (i as f64, 4.0)).collect();
        let f = LinearFit::fit(&pts).unwrap();
        assert_eq!(f.slope, 0.0);
        assert_eq!(f.intercept, 4.0);
        assert_eq!(f.r2, 1.0);
    }

    #[test]
    fn degenerate_inputs() {
        assert!(LinearFit::fit(&[]).is_none());
        assert!(LinearFit::fit(&[(1.0, 2.0)]).is_none());
        // vertical line: identical x
        assert!(LinearFit::fit(&[(1.0, 2.0), (1.0, 5.0)]).is_none());
    }

    #[test]
    fn noisy_line_has_r2_below_one() {
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 1.0 } else { -1.0 };
                (x, 2.0 * x + noise * 5.0)
            })
            .collect();
        let f = LinearFit::fit(&pts).unwrap();
        assert!((f.slope - 2.0).abs() < 0.1);
        assert!(f.r2 < 1.0 && f.r2 > 0.9);
    }

    #[test]
    fn negative_slope() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, -1.5 * i as f64)).collect();
        let f = LinearFit::fit(&pts).unwrap();
        assert!((f.slope + 1.5).abs() < 1e-12);
    }
}
