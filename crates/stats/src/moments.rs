//! Streaming first/second moments (Welford's algorithm) and the coefficient
//! of variation used throughout the burstiness analysis (§4.2.4).
//!
//! The paper defines burstiness of file operations through
//! `c_v = σ / μ` over the *mtime* distribution of newly created files
//! (write burstiness) and the *atime* distribution of read-only files
//! (read burstiness). Lower `c_v` means the operations are packed into
//! shorter intervals, i.e. burstier behaviour.

use serde::{Deserialize, Serialize};

/// Single-pass accumulator for count, mean, and variance.
///
/// ```
/// use spider_stats::StreamingMoments;
///
/// let mut m = StreamingMoments::new();
/// for offset in [3600.0, 3660.0, 3720.0] {
///     m.push(offset); // mtime offsets packed into two minutes: bursty
/// }
/// let cv = m.coefficient_of_variation().unwrap();
/// assert!(cv < 0.02); // low c_v == bursty, the paper's convention
/// ```
///
/// Uses Welford's online algorithm, which is numerically stable for the
/// large-magnitude inputs we feed it (Unix timestamps in seconds, file
/// counts in the millions). Accumulators can be merged, which is what the
/// parallel group-by in `spider-core` relies on (rayon `fold` + `reduce`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamingMoments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl StreamingMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        StreamingMoments {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Builds an accumulator from a slice in one pass.
    pub fn from_slice(values: &[f64]) -> Self {
        let mut m = Self::new();
        for &v in values {
            m.push(v);
        }
        m
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = value - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merges another accumulator into this one (Chan et al. parallel
    /// variance combination).
    pub fn merge(&mut self, other: &StreamingMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean, or `None` if no observations were pushed.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Population variance (`m2 / n`), or `None` if empty.
    pub fn variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Sample variance (`m2 / (n-1)`), or `None` for fewer than two samples.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> Option<f64> {
        self.variance().map(f64::sqrt)
    }

    /// Coefficient of variation `c_v = σ / μ` (population σ).
    ///
    /// Returns `None` when the accumulator is empty or when the mean is zero
    /// (a `c_v` of a distribution centred at zero is undefined; the analysis
    /// layer shifts timestamps to an epoch-relative offset before computing
    /// `c_v`, matching how the paper treats mtime/atime distributions).
    pub fn coefficient_of_variation(&self) -> Option<f64> {
        let mean = self.mean()?;
        if mean == 0.0 {
            return None;
        }
        Some(self.std_dev()? / mean.abs())
    }

    /// Smallest observation, or `None` if empty.
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest observation, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.mean * self.count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9 * b.abs().max(1.0)
    }

    #[test]
    fn empty_accumulator_yields_none() {
        let m = StreamingMoments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), None);
        assert_eq!(m.variance(), None);
        assert_eq!(m.coefficient_of_variation(), None);
        assert_eq!(m.min(), None);
        assert_eq!(m.max(), None);
    }

    #[test]
    fn single_value() {
        let m = StreamingMoments::from_slice(&[42.0]);
        assert_eq!(m.count(), 1);
        assert_eq!(m.mean(), Some(42.0));
        assert_eq!(m.variance(), Some(0.0));
        assert_eq!(m.sample_variance(), None);
        assert_eq!(m.coefficient_of_variation(), Some(0.0));
    }

    #[test]
    fn known_mean_and_variance() {
        let m = StreamingMoments::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!(close(m.mean().unwrap(), 5.0));
        assert!(close(m.variance().unwrap(), 4.0));
        assert!(close(m.std_dev().unwrap(), 2.0));
        assert!(close(m.coefficient_of_variation().unwrap(), 0.4));
    }

    #[test]
    fn merge_matches_single_pass() {
        let data: Vec<f64> = (0..1000)
            .map(|i| (i as f64).sin() * 100.0 + 500.0)
            .collect();
        let whole = StreamingMoments::from_slice(&data);
        let mut left = StreamingMoments::from_slice(&data[..317]);
        let right = StreamingMoments::from_slice(&data[317..]);
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!(close(left.mean().unwrap(), whole.mean().unwrap()));
        assert!(close(left.variance().unwrap(), whole.variance().unwrap()));
        assert!(close(left.min().unwrap(), whole.min().unwrap()));
        assert!(close(left.max().unwrap(), whole.max().unwrap()));
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut m = StreamingMoments::from_slice(&[1.0, 2.0, 3.0]);
        let before = m;
        m.merge(&StreamingMoments::new());
        assert_eq!(m, before);

        let mut e = StreamingMoments::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn cv_of_zero_mean_is_none() {
        let m = StreamingMoments::from_slice(&[-1.0, 1.0]);
        assert_eq!(m.coefficient_of_variation(), None);
    }

    #[test]
    fn cv_shrinks_for_burstier_distributions() {
        // Bursty: all events within a narrow window relative to the epoch
        // offset. Dispersed: events spread across the whole window. The
        // paper's convention: lower c_v == burstier.
        let base = 1_000_000.0;
        let bursty: Vec<f64> = (0..100).map(|i| base + i as f64).collect();
        let dispersed: Vec<f64> = (0..100).map(|i| base + i as f64 * 10_000.0).collect();
        let cv_bursty = StreamingMoments::from_slice(&bursty)
            .coefficient_of_variation()
            .unwrap();
        let cv_dispersed = StreamingMoments::from_slice(&dispersed)
            .coefficient_of_variation()
            .unwrap();
        assert!(cv_bursty < cv_dispersed);
    }

    #[test]
    fn sum_is_consistent() {
        let m = StreamingMoments::from_slice(&[1.5, 2.5, 6.0]);
        assert!(close(m.sum(), 10.0));
    }

    #[test]
    fn timestamps_do_not_lose_precision() {
        // Unix timestamps around 1.47e9 (the paper's observation window).
        let ts: Vec<f64> = (0..10_000).map(|i| 1_470_000_000.0 + i as f64).collect();
        let m = StreamingMoments::from_slice(&ts);
        assert!(close(m.mean().unwrap(), 1_470_000_000.0 + 4_999.5));
        // Variance of 0..n-1 uniform grid = (n^2-1)/12.
        let expect = (10_000.0f64 * 10_000.0 - 1.0) / 12.0;
        assert!((m.variance().unwrap() - expect).abs() / expect < 1e-6);
    }
}
