//! Power-law detection on degree distributions.
//!
//! §4.3.1 of the paper observes "a descending linear slope in the log-log
//! plot" of the file-generation network's degree distribution (Fig. 18b) and
//! concludes the distribution follows a power law, like other real-world
//! social networks. We reproduce that exact methodology: bucket the degree
//! frequencies, regress `log(count)` on `log(degree)`, and report the slope
//! (the negated exponent) and goodness of fit.

use crate::linreg::LinearFit;
use serde::{Deserialize, Serialize};

/// Result of a log–log regression over a degree (or size) frequency
/// distribution.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerLawFit {
    /// Slope of `log10(freq)` vs `log10(value)`; negative for a power law.
    pub slope: f64,
    /// Intercept of the log–log regression.
    pub intercept: f64,
    /// Coefficient of determination of the log–log fit.
    pub r2: f64,
    /// Number of distinct values used in the regression.
    pub distinct_values: usize,
}

impl PowerLawFit {
    /// Fits the frequency distribution of `values` (e.g. vertex degrees).
    ///
    /// Zeros are ignored (log undefined); at least two distinct positive
    /// values are required. Frequencies are computed exactly — no binning —
    /// mirroring the paper's scatter of `(degree, #vertices)` points.
    pub fn from_values(values: &[u64]) -> Option<PowerLawFit> {
        let mut freq = std::collections::BTreeMap::new();
        for &v in values {
            if v > 0 {
                *freq.entry(v).or_insert(0u64) += 1;
            }
        }
        Self::from_frequencies(freq.into_iter())
    }

    /// Fits from pre-computed `(value, frequency)` pairs.
    pub fn from_frequencies(pairs: impl Iterator<Item = (u64, u64)>) -> Option<PowerLawFit> {
        let pts: Vec<(f64, f64)> = pairs
            .filter(|&(v, c)| v > 0 && c > 0)
            .map(|(v, c)| ((v as f64).log10(), (c as f64).log10()))
            .collect();
        let fit = LinearFit::fit(&pts)?;
        Some(PowerLawFit {
            slope: fit.slope,
            intercept: fit.intercept,
            r2: fit.r2,
            distinct_values: pts.len(),
        })
    }

    /// The paper's qualitative criterion: a clearly descending, reasonably
    /// linear log–log trend. We encode "descending" as slope < -0.5 and
    /// "linear" as `r2 >= min_r2`.
    pub fn looks_power_law(&self, min_r2: f64) -> bool {
        self.slope < -0.5 && self.r2 >= min_r2 && self.distinct_values >= 3
    }

    /// Estimated power-law exponent `alpha` (`P(k) ~ k^-alpha`).
    pub fn alpha(&self) -> f64 {
        -self.slope
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds a sample whose frequency distribution is exactly
    /// `freq(k) = round(C * k^-alpha)` for k = 1..=kmax.
    fn synth_power_law(alpha: f64, c: f64, kmax: u64) -> Vec<u64> {
        let mut out = Vec::new();
        for k in 1..=kmax {
            let f = (c * (k as f64).powf(-alpha)).round() as u64;
            for _ in 0..f {
                out.push(k);
            }
        }
        out
    }

    #[test]
    fn recovers_exponent_on_synthetic_data() {
        let values = synth_power_law(2.0, 10_000.0, 30);
        let fit = PowerLawFit::from_values(&values).unwrap();
        assert!((fit.alpha() - 2.0).abs() < 0.1, "alpha = {}", fit.alpha());
        assert!(fit.r2 > 0.98);
        assert!(fit.looks_power_law(0.9));
    }

    #[test]
    fn uniform_distribution_is_not_power_law() {
        // Every degree 1..=20 appears exactly 50 times: slope ~ 0.
        let mut values = Vec::new();
        for k in 1..=20u64 {
            values.extend(std::iter::repeat_n(k, 50));
        }
        let fit = PowerLawFit::from_values(&values).unwrap();
        assert!(fit.slope.abs() < 0.05);
        assert!(!fit.looks_power_law(0.9));
    }

    #[test]
    fn increasing_distribution_is_not_power_law() {
        let mut values = Vec::new();
        for k in 1..=10u64 {
            values.extend(std::iter::repeat_n(k, (k * k) as usize));
        }
        let fit = PowerLawFit::from_values(&values).unwrap();
        assert!(fit.slope > 0.0);
        assert!(!fit.looks_power_law(0.5));
    }

    #[test]
    fn zeros_are_ignored() {
        let values = vec![0, 0, 0, 1, 1, 1, 1, 2, 2, 4];
        let fit = PowerLawFit::from_values(&values).unwrap();
        assert_eq!(fit.distinct_values, 3);
    }

    #[test]
    fn insufficient_data_returns_none() {
        assert!(PowerLawFit::from_values(&[]).is_none());
        assert!(PowerLawFit::from_values(&[5, 5, 5]).is_none()); // one distinct value
        assert!(PowerLawFit::from_values(&[0, 0]).is_none());
    }

    #[test]
    fn from_frequencies_equals_from_values() {
        let values = synth_power_law(1.5, 1000.0, 10);
        let a = PowerLawFit::from_values(&values).unwrap();
        let mut freq = std::collections::BTreeMap::new();
        for &v in &values {
            *freq.entry(v).or_insert(0u64) += 1;
        }
        let b = PowerLawFit::from_frequencies(freq.into_iter()).unwrap();
        assert!((a.slope - b.slope).abs() < 1e-12);
        assert!((a.r2 - b.r2).abs() < 1e-12);
    }
}
