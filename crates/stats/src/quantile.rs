//! Exact quantiles over owned samples.
//!
//! Figure 9 (directory depth per domain) and Figure 17 (burstiness per
//! domain) report five-number summaries: minimum, 25th percentile, median,
//! 75th percentile, and maximum. The snapshot analysis collects per-group
//! samples (hundreds to a few million values per group), so exact
//! `select_nth_unstable`-based quantiles are both affordable and free of
//! sketch error.

use serde::{Deserialize, Serialize};

/// A set of samples from which exact quantiles can be extracted.
///
/// Construction sorts the data once; all queries afterwards are O(1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Quantiles {
    sorted: Vec<f64>,
}

/// Five-number summary (min, q1, median, q3, max) as reported in the
/// paper's box-style figures.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiveNumber {
    /// Minimum observation.
    pub min: f64,
    /// 25th percentile.
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 75th percentile.
    pub q3: f64,
    /// Maximum observation.
    pub max: f64,
}

impl Quantiles {
    /// Builds a quantile set, sorting the input. NaN values are removed
    /// (they arise from undefined `c_v` of empty subgroups and must not
    /// poison the ordering).
    pub fn new(mut values: Vec<f64>) -> Self {
        values.retain(|v| !v.is_nan());
        values.sort_unstable_by(|a, b| a.partial_cmp(b).expect("NaN filtered"));
        Quantiles { sorted: values }
    }

    /// Number of (non-NaN) samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if no samples were retained.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The q-th quantile for `q` in `[0, 1]`, using linear interpolation
    /// between closest ranks (type-7 quantile, the R/NumPy default).
    ///
    /// Returns `None` on an empty sample or if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let n = self.sorted.len();
        if n == 1 {
            return Some(self.sorted[0]);
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        Some(self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac)
    }

    /// Median (50th percentile).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Minimum observation.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Maximum observation.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The five-number summary used by Figures 9 and 17.
    pub fn five_number(&self) -> Option<FiveNumber> {
        Some(FiveNumber {
            min: self.min()?,
            q1: self.quantile(0.25)?,
            median: self.median()?,
            q3: self.quantile(0.75)?,
            max: self.max()?,
        })
    }

    /// Fraction of samples strictly greater than `threshold`.
    ///
    /// Used for statements like "more than 30% of the projects have a
    /// directory depth greater than 10" (Observation 3 context).
    pub fn fraction_above(&self, threshold: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= threshold);
        (self.sorted.len() - idx) as f64 / self.sorted.len() as f64
    }

    /// Borrow the sorted samples.
    pub fn sorted(&self) -> &[f64] {
        &self.sorted
    }
}

impl FiveNumber {
    /// Interquartile range `q3 - q1`.
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_sample() {
        let q = Quantiles::new(vec![]);
        assert!(q.is_empty());
        assert_eq!(q.median(), None);
        assert_eq!(q.five_number(), None);
        assert_eq!(q.fraction_above(0.0), 0.0);
    }

    #[test]
    fn single_sample() {
        let q = Quantiles::new(vec![7.0]);
        let f = q.five_number().unwrap();
        assert_eq!(f.min, 7.0);
        assert_eq!(f.q1, 7.0);
        assert_eq!(f.median, 7.0);
        assert_eq!(f.q3, 7.0);
        assert_eq!(f.max, 7.0);
    }

    #[test]
    fn median_of_odd_and_even() {
        let odd = Quantiles::new(vec![3.0, 1.0, 2.0]);
        assert_eq!(odd.median(), Some(2.0));
        let even = Quantiles::new(vec![4.0, 1.0, 3.0, 2.0]);
        assert_eq!(even.median(), Some(2.5));
    }

    #[test]
    fn type7_interpolation() {
        // For [1,2,3,4]: q1 at pos 0.75 => 1.75, q3 at pos 2.25 => 3.25.
        let q = Quantiles::new(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(q.quantile(0.25), Some(1.75));
        assert_eq!(q.quantile(0.75), Some(3.25));
    }

    #[test]
    fn quantile_bounds() {
        let q = Quantiles::new(vec![5.0, 1.0, 9.0]);
        assert_eq!(q.quantile(0.0), Some(1.0));
        assert_eq!(q.quantile(1.0), Some(9.0));
        assert_eq!(q.quantile(-0.1), None);
        assert_eq!(q.quantile(1.1), None);
    }

    #[test]
    fn nan_values_are_dropped() {
        let q = Quantiles::new(vec![1.0, f64::NAN, 3.0]);
        assert_eq!(q.len(), 2);
        assert_eq!(q.median(), Some(2.0));
    }

    #[test]
    fn fraction_above_threshold() {
        let q = Quantiles::new((1..=10).map(|i| i as f64).collect());
        assert!((q.fraction_above(7.0) - 0.3).abs() < 1e-12);
        assert_eq!(q.fraction_above(10.0), 0.0);
        assert_eq!(q.fraction_above(0.0), 1.0);
    }

    #[test]
    fn five_number_is_ordered() {
        let q = Quantiles::new((0..100).map(|i| ((i * 37) % 100) as f64).collect());
        let f = q.five_number().unwrap();
        assert!(f.min <= f.q1 && f.q1 <= f.median && f.median <= f.q3 && f.q3 <= f.max);
        assert!(f.iqr() >= 0.0);
    }

    #[test]
    fn directory_depth_style_input() {
        // Depths akin to Table 1's [median, max] = [10, 22] domain.
        let depths: Vec<f64> = vec![5., 6., 8., 9., 10., 10., 11., 12., 14., 22.];
        let q = Quantiles::new(depths);
        assert_eq!(q.median(), Some(10.0));
        assert_eq!(q.max(), Some(22.0));
    }
}
