//! Mergeable quantile sketch for one-pass multi-aggregate scans.
//!
//! The exact [`crate::Quantiles`] needs every sample in memory and a sort;
//! that is fine per-analysis, but the fused scan engine computes many
//! aggregates per group in a single morsel-driven pass, where per-group
//! accumulators must be small, cheap to update, and **exactly mergeable**
//! (the morsel tree merges shards pairwise, and parallel and sequential
//! engines must agree bit-for-bit).
//!
//! [`QuantileSketch`] is a DDSketch-style log-bucketed histogram: positive
//! values land in bucket `ceil(ln(v) / ln(γ))`, which bounds the relative
//! error of any reported quantile by `(γ − 1) / (γ + 1)`. Buckets hold
//! integer counts, so merging is exact addition — the sketch of a
//! concatenation equals the merge of the sketches, independent of split
//! points. Zero and negative values are clamped into a dedicated zero
//! bucket (snapshot-frame values — ages, depths, stripe widths — are
//! non-negative); NaN is ignored.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Default relative-error bound (1%): `γ = (1 + ε) / (1 − ε)`.
pub const DEFAULT_RELATIVE_ERROR: f64 = 0.01;

/// A mergeable, bounded-relative-error quantile sketch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantileSketch {
    /// Configured relative-error bound ε.
    relative_error: f64,
    /// log(γ) for the bucket mapping, derived from ε.
    gamma_ln: f64,
    /// Count of values ≤ 0 (clamped to the "zero" bucket).
    zero_count: u64,
    /// Total count of ingested (non-NaN) values.
    count: u64,
    /// Log-bucket index → count. BTreeMap keeps quantile walks ordered
    /// and makes equality/merge deterministic.
    buckets: BTreeMap<i32, u64>,
}

impl Default for QuantileSketch {
    fn default() -> Self {
        Self::new(DEFAULT_RELATIVE_ERROR)
    }
}

impl QuantileSketch {
    /// Creates a sketch with the given relative-error bound ε (clamped to
    /// `[1e-6, 0.5]`).
    pub fn new(relative_error: f64) -> Self {
        let eps = relative_error.clamp(1e-6, 0.5);
        let gamma = (1.0 + eps) / (1.0 - eps);
        QuantileSketch {
            relative_error: eps,
            gamma_ln: gamma.ln(),
            zero_count: 0,
            count: 0,
            buckets: BTreeMap::new(),
        }
    }

    /// The configured relative-error bound.
    pub fn relative_error(&self) -> f64 {
        self.relative_error
    }

    /// Number of ingested values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether the sketch has seen no values.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Ingests one value. Values ≤ 0 land in the zero bucket; NaN is
    /// dropped.
    pub fn push(&mut self, v: f64) {
        if v.is_nan() {
            return;
        }
        self.count += 1;
        if v <= 0.0 {
            self.zero_count += 1;
        } else {
            let idx = (v.ln() / self.gamma_ln).ceil() as i32;
            *self.buckets.entry(idx).or_insert(0) += 1;
        }
    }

    /// Ingests `count` copies of one value in O(1) — the bulk form of
    /// [`QuantileSketch::push`], used when ingesting pre-bucketed data
    /// (e.g. telemetry's log2 histograms feed each bucket's midpoint
    /// here with the bucket's population). NaN and `count == 0` are
    /// dropped.
    pub fn push_weighted(&mut self, v: f64, count: u64) {
        if v.is_nan() || count == 0 {
            return;
        }
        self.count += count;
        if v <= 0.0 {
            self.zero_count += count;
        } else {
            let idx = (v.ln() / self.gamma_ln).ceil() as i32;
            *self.buckets.entry(idx).or_insert(0) += count;
        }
    }

    /// Merges another sketch into this one. Exact: bucket counts add, so
    /// `sketch(a ++ b) == merge(sketch(a), sketch(b))`. Both sketches must
    /// share the same ε (debug-asserted).
    pub fn merge(&mut self, other: &QuantileSketch) {
        debug_assert_eq!(
            self.relative_error, other.relative_error,
            "merging quantile sketches with different error bounds"
        );
        self.count += other.count;
        self.zero_count += other.zero_count;
        for (&idx, &c) in &other.buckets {
            *self.buckets.entry(idx).or_insert(0) += c;
        }
    }

    /// The value of bucket `idx`: the log-midpoint `2 γ^idx / (γ + 1)`,
    /// within ε relative error of every value mapped to the bucket.
    fn bucket_value(&self, idx: i32) -> f64 {
        let gamma = self.gamma_ln.exp();
        2.0 * (idx as f64 * self.gamma_ln).exp() / (gamma + 1.0)
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`), or `None` when empty or `q` is
    /// out of range. Positive results carry at most ε relative error;
    /// ranks falling in the zero bucket return exactly `0.0`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.count == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        // 0-based rank of the requested order statistic.
        let rank = (q * (self.count - 1) as f64).round() as u64;
        if rank < self.zero_count {
            return Some(0.0);
        }
        let mut cum = self.zero_count;
        for (&idx, &c) in &self.buckets {
            cum += c;
            if rank < cum {
                return Some(self.bucket_value(idx));
            }
        }
        // Unreachable when counts are consistent; fall back to the top
        // bucket defensively.
        self.buckets
            .last_key_value()
            .map(|(&idx, _)| self.bucket_value(idx))
            .or(Some(0.0))
    }

    /// The median, within ε relative error.
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(got: f64, want: f64, eps: f64) {
        if want == 0.0 {
            assert_eq!(got, 0.0);
        } else {
            let rel = (got - want).abs() / want;
            assert!(rel <= eps, "got {got}, want {want} (rel err {rel})");
        }
    }

    #[test]
    fn empty_sketch_has_no_quantiles() {
        let s = QuantileSketch::default();
        assert!(s.is_empty());
        assert_eq!(s.quantile(0.5), None);
        assert_eq!(s.median(), None);
    }

    #[test]
    fn quantiles_within_relative_error() {
        let mut s = QuantileSketch::new(0.01);
        for i in 1..=10_000u32 {
            s.push(i as f64);
        }
        assert_eq!(s.count(), 10_000);
        for (q, want) in [(0.0, 1.0), (0.25, 2_500.0), (0.5, 5_000.0), (1.0, 10_000.0)] {
            // 2ε slack: ε from the bucket plus the rank-rounding step.
            assert_close(s.quantile(q).unwrap(), want, 0.025);
        }
    }

    #[test]
    fn zeros_and_negatives_land_in_zero_bucket() {
        let mut s = QuantileSketch::default();
        for v in [-3.0, 0.0, 0.0, 5.0] {
            s.push(v);
        }
        assert_eq!(s.count(), 4);
        assert_eq!(s.quantile(0.0), Some(0.0));
        assert_close(s.quantile(1.0).unwrap(), 5.0, 0.01);
    }

    #[test]
    fn nan_is_ignored() {
        let mut s = QuantileSketch::default();
        s.push(f64::NAN);
        s.push(2.0);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn merge_equals_sketch_of_concatenation_exactly() {
        let a: Vec<f64> = (0..500).map(|i| (i % 37) as f64).collect();
        let b: Vec<f64> = (0..700).map(|i| (i * i % 113) as f64).collect();
        let mut whole = QuantileSketch::default();
        for &v in a.iter().chain(&b) {
            whole.push(v);
        }
        let mut left = QuantileSketch::default();
        a.iter().for_each(|&v| left.push(v));
        let mut right = QuantileSketch::default();
        b.iter().for_each(|&v| right.push(v));
        left.merge(&right);
        // PartialEq over the full bucket state: merge is exact, not
        // approximate.
        assert_eq!(left, whole);
    }

    #[test]
    fn push_weighted_equals_repeated_push() {
        let mut bulk = QuantileSketch::default();
        bulk.push_weighted(42.0, 100);
        bulk.push_weighted(0.0, 7);
        bulk.push_weighted(f64::NAN, 3);
        bulk.push_weighted(9.0, 0);
        let mut loop_pushed = QuantileSketch::default();
        for _ in 0..100 {
            loop_pushed.push(42.0);
        }
        for _ in 0..7 {
            loop_pushed.push(0.0);
        }
        assert_eq!(bulk, loop_pushed);
        assert_eq!(bulk.count(), 107);
    }

    #[test]
    fn median_of_skewed_data() {
        let mut s = QuantileSketch::new(0.01);
        // Log-uniform spread over six decades — the regime log buckets
        // are built for.
        for i in 0..6_000u32 {
            s.push(10f64.powf(i as f64 / 1_000.0));
        }
        let m = s.median().unwrap();
        assert_close(m, 10f64.powf(3.0), 0.03);
    }
}
