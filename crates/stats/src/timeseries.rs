//! Time-indexed series of scalar observations.
//!
//! Figures 10, 15, and 16 plot weekly snapshot aggregates over the 500-day
//! observation window (extension shares, file/dir counts, mean file age).
//! `TimeSeries` carries `(day, value)` points, provides trend fitting, and
//! answers the paper's threshold questions ("the average file age exceeded
//! 90 days in 86% of the snapshot periods").

use crate::linreg::LinearFit;
use serde::{Deserialize, Serialize};

/// An ordered series of `(day, value)` observations. Days are simulation
/// days since epoch (the paper's x-axes are calendar dates; ours are day
/// offsets into the observation window).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    points: Vec<(u32, f64)>,
}

impl TimeSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a series from points, sorting by day and keeping the last
    /// value for duplicate days.
    pub fn from_points(mut points: Vec<(u32, f64)>) -> Self {
        points.sort_by_key(|p| p.0);
        // Keep the *last* value for each duplicated day (later pushes win).
        let mut deduped: Vec<(u32, f64)> = Vec::with_capacity(points.len());
        for p in points {
            match deduped.last_mut() {
                Some(last) if last.0 == p.0 => *last = p,
                _ => deduped.push(p),
            }
        }
        TimeSeries { points: deduped }
    }

    /// Appends an observation. Days must be pushed in non-decreasing order.
    ///
    /// # Panics
    /// Panics if `day` precedes the last pushed day.
    pub fn push(&mut self, day: u32, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            assert!(day >= last, "time series days must be non-decreasing");
            if day == last {
                self.points.pop();
            }
        }
        self.points.push((day, value));
    }

    /// The observation points.
    pub fn points(&self) -> &[(u32, f64)] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if the series has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean of the values, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        if self.points.is_empty() {
            return None;
        }
        Some(self.points.iter().map(|p| p.1).sum::<f64>() / self.points.len() as f64)
    }

    /// First value, or `None` if empty.
    pub fn first(&self) -> Option<(u32, f64)> {
        self.points.first().copied()
    }

    /// Last value, or `None` if empty.
    pub fn last(&self) -> Option<(u32, f64)> {
        self.points.last().copied()
    }

    /// Linear trend over the series.
    pub fn trend(&self) -> Option<LinearFit> {
        let pts: Vec<(f64, f64)> = self.points.iter().map(|&(d, v)| (d as f64, v)).collect();
        LinearFit::fit(&pts)
    }

    /// Multiplicative growth `last/first`, or `None` when empty or the first
    /// value is zero. Used for "files grew from 200 M to 1 B" (Obs. 7).
    pub fn growth_factor(&self) -> Option<f64> {
        let (_, first) = self.first()?;
        let (_, last) = self.last()?;
        if first == 0.0 {
            return None;
        }
        Some(last / first)
    }

    /// Fraction of points whose value exceeds `threshold` ("the average file
    /// age exceeded 90 days in 64 of 72 snapshot dates", Fig. 16).
    pub fn fraction_exceeding(&self, threshold: f64) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        let n = self.points.iter().filter(|p| p.1 > threshold).count();
        n as f64 / self.points.len() as f64
    }

    /// Maximum value point, or `None` if empty.
    pub fn max(&self) -> Option<(u32, f64)> {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN in series"))
    }

    /// Median of the values, or `None` if empty.
    pub fn median(&self) -> Option<f64> {
        crate::quantile::Quantiles::new(self.points.iter().map(|p| p.1).collect()).median()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_series() {
        let s = TimeSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), None);
        assert_eq!(s.growth_factor(), None);
        assert_eq!(s.fraction_exceeding(0.0), 0.0);
        assert!(s.trend().is_none());
    }

    #[test]
    fn push_ordering_enforced() {
        let mut s = TimeSeries::new();
        s.push(0, 1.0);
        s.push(7, 2.0);
        let result = std::panic::catch_unwind(move || s.push(3, 9.0));
        assert!(result.is_err());
    }

    #[test]
    fn duplicate_day_keeps_last() {
        let mut s = TimeSeries::new();
        s.push(0, 1.0);
        s.push(0, 5.0);
        assert_eq!(s.points(), &[(0, 5.0)]);

        let s2 = TimeSeries::from_points(vec![(7, 2.0), (0, 1.0), (7, 3.0)]);
        assert_eq!(s2.points(), &[(0, 1.0), (7, 3.0)]);
    }

    #[test]
    fn growth_factor_matches_paper_style_growth() {
        // 200M -> 1B over the window: factor 5.
        let s = TimeSeries::from_points(vec![(0, 200e6), (250, 500e6), (500, 1000e6)]);
        assert!((s.growth_factor().unwrap() - 5.0).abs() < 1e-12);
        assert!(s.trend().unwrap().slope > 0.0);
    }

    #[test]
    fn fraction_exceeding_threshold() {
        // 6 of 8 weeks above 90 days.
        let s = TimeSeries::from_points(
            (0..8)
                .map(|i| (i * 7, if i < 6 { 120.0 } else { 80.0 }))
                .collect(),
        );
        assert!((s.fraction_exceeding(90.0) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn summary_stats() {
        let s = TimeSeries::from_points(vec![(0, 1.0), (1, 3.0), (2, 2.0)]);
        assert_eq!(s.mean(), Some(2.0));
        assert_eq!(s.median(), Some(2.0));
        assert_eq!(s.max(), Some((1, 3.0)));
        assert_eq!(s.first(), Some((0, 1.0)));
        assert_eq!(s.last(), Some((2, 2.0)));
    }
}
