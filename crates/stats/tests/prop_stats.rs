//! Property-based tests for the statistics primitives.

use proptest::prelude::*;
use spider_stats::{EmpiricalCdf, LinearFit, Quantiles, StreamingMoments, TimeSeries};

fn finite_vec(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e9..1.0e9f64, 0..max_len)
}

proptest! {
    /// Merging split accumulators matches the single-pass result.
    #[test]
    fn moments_merge_equals_single_pass(data in finite_vec(200), split in 0usize..200) {
        let split = split.min(data.len());
        let whole = StreamingMoments::from_slice(&data);
        let mut left = StreamingMoments::from_slice(&data[..split]);
        let right = StreamingMoments::from_slice(&data[split..]);
        left.merge(&right);
        prop_assert_eq!(left.count(), whole.count());
        if let (Some(a), Some(b)) = (left.mean(), whole.mean()) {
            prop_assert!((a - b).abs() <= 1e-6 * b.abs().max(1.0));
        }
        if let (Some(a), Some(b)) = (left.variance(), whole.variance()) {
            prop_assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0));
        }
    }

    /// Quantiles are monotone in q and bounded by min/max.
    #[test]
    fn quantiles_are_monotone(data in finite_vec(100)) {
        let q = Quantiles::new(data.clone());
        if q.is_empty() {
            prop_assert_eq!(q.median(), None);
            return Ok(());
        }
        let mut last = q.quantile(0.0).unwrap();
        for step in 1..=20 {
            let cur = q.quantile(step as f64 / 20.0).unwrap();
            prop_assert!(cur >= last, "q not monotone: {cur} < {last}");
            last = cur;
        }
        let five = q.five_number().unwrap();
        prop_assert!(five.min <= five.q1 && five.q1 <= five.median);
        prop_assert!(five.median <= five.q3 && five.q3 <= five.max);
    }

    /// The ECDF is a valid distribution function: within [0,1], monotone,
    /// 0 below the min and 1 at/above the max.
    #[test]
    fn cdf_is_a_distribution(data in finite_vec(100), probe in -1.0e9..1.0e9f64) {
        let cdf = EmpiricalCdf::new(data.clone());
        let v = cdf.eval(probe);
        prop_assert!((0.0..=1.0).contains(&v));
        prop_assert!((cdf.eval(probe) + cdf.ccdf(probe) - 1.0).abs() < 1e-12 || cdf.is_empty());
        if !cdf.is_empty() {
            let steps = cdf.steps();
            prop_assert!((steps.last().unwrap().1 - 1.0).abs() < 1e-12);
            for w in steps.windows(2) {
                prop_assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1);
            }
        }
    }

    /// The inverse CDF is a right-inverse: F(F^-1(p)) >= p.
    #[test]
    fn cdf_inverse_is_consistent(data in finite_vec(100), p in 0.01..1.0f64) {
        let cdf = EmpiricalCdf::new(data);
        if let Some(x) = cdf.inverse(p) {
            prop_assert!(cdf.eval(x) >= p - 1e-12);
        }
    }

    /// A linear fit on exactly linear data recovers slope and intercept.
    #[test]
    fn linear_fit_recovers_lines(
        slope in -1.0e3..1.0e3f64,
        intercept in -1.0e3..1.0e3f64,
        n in 2usize..50,
    ) {
        let pts: Vec<(f64, f64)> = (0..n)
            .map(|i| (i as f64, slope * i as f64 + intercept))
            .collect();
        let fit = LinearFit::fit(&pts).unwrap();
        prop_assert!((fit.slope - slope).abs() < 1e-6 * slope.abs().max(1.0));
        prop_assert!((fit.intercept - intercept).abs() < 1e-5 * intercept.abs().max(1.0));
        prop_assert!(fit.r2 > 1.0 - 1e-9);
    }

    /// TimeSeries::from_points sorts, dedups, and preserves the value set.
    #[test]
    fn timeseries_from_points_invariants(
        points in prop::collection::vec((0u32..1000, -1.0e6..1.0e6f64), 0..50)
    ) {
        let series = TimeSeries::from_points(points.clone());
        for w in series.points().windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        // Every day in the series appeared in the input.
        for (day, _) in series.points() {
            prop_assert!(points.iter().any(|(d, _)| d == day));
        }
        // fraction_exceeding is a fraction.
        let f = series.fraction_exceeding(0.0);
        prop_assert!((0.0..=1.0).contains(&f));
    }
}
