//! The clock seam.
//!
//! All span timing and latency measurement goes through [`Clock`], so
//! tests can swap the process-wide monotonic clock for a [`MockClock`]
//! they advance by hand — span durations in tests are then exact
//! constants, not wall-clock noise.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond clock.
///
/// Implementations must be monotone non-decreasing; the registry
/// subtracts readings to obtain durations and never interprets the
/// absolute origin.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's (arbitrary) origin.
    fn now_ns(&self) -> u64;
}

/// The production clock: `std::time::Instant` anchored at construction.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> MonotonicClock {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// A hand-advanced clock for deterministic tests.
///
/// Shared by `Arc`: the test keeps one handle to advance time while the
/// registry under test reads it.
#[derive(Debug, Default)]
pub struct MockClock {
    now: AtomicU64,
}

impl MockClock {
    /// A mock clock starting at 0 ns.
    pub fn new() -> MockClock {
        MockClock::default()
    }

    /// Advances the clock by `ns` nanoseconds.
    pub fn advance_ns(&self, ns: u64) {
        self.now.fetch_add(ns, Ordering::SeqCst);
    }

    /// Sets the clock to an absolute reading. Panics if that would move
    /// time backwards (mock or not, the clock stays monotonic).
    pub fn set_ns(&self, ns: u64) {
        let prev = self.now.swap(ns, Ordering::SeqCst);
        assert!(prev <= ns, "MockClock moved backwards: {prev} -> {ns}");
    }
}

impl Clock for MockClock {
    fn now_ns(&self) -> u64 {
        self.now.load(Ordering::SeqCst)
    }
}

impl<C: Clock + ?Sized> Clock for std::sync::Arc<C> {
    fn now_ns(&self) -> u64 {
        (**self).now_ns()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn monotonic_clock_is_monotone() {
        let clock = MonotonicClock::new();
        let a = clock.now_ns();
        let b = clock.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn mock_clock_advances_deterministically() {
        let clock = Arc::new(MockClock::new());
        assert_eq!(clock.now_ns(), 0);
        clock.advance_ns(250);
        assert_eq!(clock.now_ns(), 250);
        clock.set_ns(1_000);
        assert_eq!(clock.now_ns(), 1_000);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn mock_clock_rejects_backwards_set() {
        let clock = MockClock::new();
        clock.set_ns(10);
        clock.set_ns(5);
    }
}
