//! The live event seam behind the flight recorder.
//!
//! Aggregation ([`crate::TelemetryRegistry`]) answers "how much, in
//! total"; events answer "what just happened, in order". When a sink is
//! installed ([`crate::TelemetryRegistry::install_sink`]) every closing
//! span, counter increment, and outcome trigger is also emitted as a
//! [`FlightEvent`] — timestamped, sequenced, tagged with the thread and
//! the active trace id — to the sink. With no sink installed the extra
//! cost on an *enabled* registry is one relaxed atomic load per call; on
//! a disabled registry the event path is never reached at all, so the
//! PR-5 discipline (one relaxed load when idle) is preserved.
//!
//! Sinks are deliberately dumb: [`EventSink::record`] must be cheap and
//! lock-light (the flight recorder's ring buffer), and
//! [`EventSink::trigger`] is the rare-path hook where a recorder dumps
//! its ring on an oracle mismatch, fairness violation, quarantine,
//! shed-storm onset, or panic.

use crate::clock::Clock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::ThreadId;

/// What a [`FlightEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A span closed; `ts_ns` is its start, `dur_ns` its length.
    Span,
    /// A counter was incremented by `value`.
    Counter,
    /// A named outcome fired (oracle mismatch, quarantine, ...); the
    /// human-readable context rides in `detail`.
    Outcome,
}

/// One timestamped event handed to the installed [`EventSink`].
#[derive(Debug, Clone)]
pub struct FlightEvent {
    /// Process-wide emission order (gaps legal, order authoritative).
    pub seq: u64,
    /// Event start, in the registry clock's nanoseconds. For spans this
    /// is the open time; for counters and outcomes the emission time.
    pub ts_ns: u64,
    /// Span duration; 0 for counters and outcomes.
    pub dur_ns: u64,
    /// Dense per-registry thread index (0, 1, ... in first-seen order).
    pub tid: u64,
    /// What happened.
    pub kind: EventKind,
    /// Span path joined with `/`, counter name, or outcome kind.
    pub name: String,
    /// Counter increment amount; 0 otherwise.
    pub value: u64,
    /// The trace id active on the emitting thread (0 = none).
    pub trace: u64,
    /// True for spans opened via [`crate::TelemetryRegistry::span_at`]
    /// (cross-thread work; rendered as a flow in chrome traces).
    pub concurrent: bool,
    /// Free-form context for outcomes; empty otherwise.
    pub detail: String,
}

/// Receives live events. Implemented by the flight recorder in
/// `spider-obs`; `record` runs on hot-ish paths and must stay cheap.
pub trait EventSink: Send + Sync {
    /// A span closed / counter bumped / outcome fired.
    fn record(&self, ev: FlightEvent);
    /// A dump-worthy condition fired (the matching [`EventKind::Outcome`]
    /// event was already `record`ed). `kind` is the condition's stable
    /// name, `detail` human context.
    fn trigger(&self, kind: &str, detail: &str);
}

/// Shared emission state, cloned into every [`crate::Counter`] handle so
/// pre-resolved handles can emit without a registry reference.
pub(crate) struct EventsShared {
    /// True iff a sink is installed — the one extra relaxed load on the
    /// enabled hot path.
    on: AtomicBool,
    clock: Arc<dyn Clock>,
    sink: RwLock<Option<Arc<dyn EventSink>>>,
    seq: AtomicU64,
    tids: Mutex<HashMap<ThreadId, u64>>,
}

impl EventsShared {
    pub(crate) fn new(clock: Arc<dyn Clock>) -> EventsShared {
        EventsShared {
            on: AtomicBool::new(false),
            clock,
            sink: RwLock::new(None),
            seq: AtomicU64::new(0),
            tids: Mutex::new(HashMap::new()),
        }
    }

    /// Whether a sink is installed (one relaxed load).
    #[inline]
    pub(crate) fn armed(&self) -> bool {
        self.on.load(Ordering::Relaxed)
    }

    pub(crate) fn install(&self, sink: Arc<dyn EventSink>) {
        *self.sink.write().expect("event sink poisoned") = Some(sink);
        self.on.store(true, Ordering::Relaxed);
    }

    pub(crate) fn clear(&self) {
        self.on.store(false, Ordering::Relaxed);
        *self.sink.write().expect("event sink poisoned") = None;
    }

    pub(crate) fn sink(&self) -> Option<Arc<dyn EventSink>> {
        self.sink.read().expect("event sink poisoned").clone()
    }

    /// This thread's dense index, assigned on first emission.
    fn dense_tid(&self) -> u64 {
        let id = std::thread::current().id();
        let mut tids = self.tids.lock().expect("tid table poisoned");
        let next = tids.len() as u64;
        *tids.entry(id).or_insert(next)
    }

    fn emit(&self, sink: &dyn EventSink, ev: FlightEvent) {
        sink.record(ev);
    }

    pub(crate) fn emit_counter(&self, name: &'static str, n: u64) {
        let Some(sink) = self.sink() else { return };
        let ev = FlightEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            ts_ns: self.clock.now_ns(),
            dur_ns: 0,
            tid: self.dense_tid(),
            kind: EventKind::Counter,
            name: name.to_string(),
            value: n,
            trace: crate::trace::current_trace(),
            concurrent: false,
            detail: String::new(),
        };
        self.emit(&*sink, ev);
    }

    pub(crate) fn emit_span(
        &self,
        name: String,
        start_ns: u64,
        dur_ns: u64,
        concurrent: bool,
        trace: u64,
    ) {
        let Some(sink) = self.sink() else { return };
        let ev = FlightEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            ts_ns: start_ns,
            dur_ns,
            tid: self.dense_tid(),
            kind: EventKind::Span,
            name,
            value: 0,
            trace,
            concurrent,
            detail: String::new(),
        };
        self.emit(&*sink, ev);
    }

    pub(crate) fn emit_outcome(&self, kind: &'static str, detail: &str) {
        let Some(sink) = self.sink() else { return };
        let ev = FlightEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            ts_ns: self.clock.now_ns(),
            dur_ns: 0,
            tid: self.dense_tid(),
            kind: EventKind::Outcome,
            name: kind.to_string(),
            value: 0,
            trace: crate::trace::current_trace(),
            concurrent: false,
            detail: detail.to_string(),
        };
        self.emit(&*sink, ev);
    }
}

impl std::fmt::Debug for EventsShared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventsShared")
            .field("armed", &self.armed())
            .finish_non_exhaustive()
    }
}
