//! spider-telemetry: pipeline-wide spans, counters, and histograms.
//!
//! Every runtime layer of the reproduction — snapshot store, colf
//! decode, frame loader, scan engine, simulation driver, lab — records
//! into one process-wide [`TelemetryRegistry`] (see [`global`]). The
//! registry is **disabled by default** and designed so that leaving the
//! instrumentation compiled in costs one relaxed atomic load per call
//! site; nothing allocates, locks, or reads a clock until the CLI's
//! `--telemetry` flag (or a bench/test harness) enables it.
//!
//! Three primitives:
//!
//! * **Spans** — hierarchical RAII timers ([`TelemetryRegistry::span`])
//!   nesting via a per-thread stack, with [`TelemetryRegistry::span_at`]
//!   for work on helper threads (marked concurrent so the span tree's
//!   "parent covers children" invariant still holds).
//! * **Counters** — named `u64` cells with pre-resolvable handles
//!   ([`Counter`]) for hot paths.
//! * **Histograms** — lock-free log2-bucketed distributions
//!   ([`Histogram`]) whose p50/p95/p99 are read out through
//!   `spider_stats`' quantile sketch.
//!
//! Two live seams ride on top of the aggregates: **events** — when a
//! sink is installed ([`TelemetryRegistry::install_sink`]) every span
//! close, counter bump, and outcome trigger is emitted as a
//! [`FlightEvent`] (the flight recorder and chrome-trace exporter in
//! `spider-obs` consume these) — and **trace ids** ([`TraceScope`],
//! [`current_trace`]), a thread-local request tag stamped onto every
//! event inside a request's extent.
//!
//! [`TelemetrySnapshot`] freezes a registry into a span tree plus
//! counter/histogram tables, renders a human report
//! ([`TelemetrySnapshot::to_table`]) or a stable, hand-rendered JSON
//! document ([`TelemetrySnapshot::to_json`]) for `telemetry.json` and
//! the `BENCH_*.json` embeds.
//!
//! Clocks are a seam ([`Clock`]): production uses [`MonotonicClock`],
//! tests drive a [`MockClock`] for exact, deterministic durations.

#![warn(missing_docs)]

pub mod clock;
pub mod events;
pub mod registry;
pub mod report;
pub mod trace;

pub use clock::{Clock, MockClock, MonotonicClock};
pub use events::{EventKind, EventSink, FlightEvent};
pub use registry::{
    global, Counter, Histogram, HistogramCore, SpanGuard, SpanPath, SpanStat, Stopwatch,
    TelemetryRegistry, HISTOGRAM_BUCKETS,
};
pub use report::{
    fmt_ns, CounterSnapshot, HistogramSnapshot, SpanNode, TelemetrySnapshot, SCHEMA_VERSION,
};
pub use trace::{current_trace, TraceScope};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = TelemetryRegistry::new();
        let c = reg.counter("c");
        let h = reg.histogram("h");
        c.add(10);
        h.record(10);
        reg.incr("by_name", 3);
        reg.record("by_name_h", 3);
        {
            let _s = reg.span("root");
        }
        assert_eq!(c.get(), 0);
        assert_eq!(h.core().totals(), (0, 0, 0));
        let snap = TelemetrySnapshot::capture(&reg);
        assert!(snap.spans.is_empty());
        assert!(snap.counters.iter().all(|c| c.value == 0));
        assert!(snap.histograms.iter().all(|h| h.count == 0));
        assert!(reg.elapsed_ns(reg.stopwatch()).is_none());
    }

    #[test]
    fn handles_merge_across_threads() {
        let reg = Arc::new(TelemetryRegistry::new());
        reg.enable();
        let c = reg.counter("ops");
        let h = reg.histogram("lat");
        std::thread::scope(|scope| {
            for t in 0..4 {
                let c = c.clone();
                let h = h.clone();
                scope.spawn(move || {
                    for i in 0..1000 {
                        c.incr();
                        h.record(t * 1000 + i);
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
        let (count, _sum, max) = h.core().totals();
        assert_eq!(count, 4000);
        assert_eq!(max, 3999);
    }

    #[test]
    fn spans_nest_independently_per_thread() {
        let clock = Arc::new(MockClock::new());
        let reg = Arc::new(TelemetryRegistry::with_clock(clock.clone()));
        reg.enable();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let reg = Arc::clone(&reg);
                let clock = Arc::clone(&clock);
                scope.spawn(move || {
                    let _outer = reg.span("work");
                    let _inner = reg.span("step");
                    clock.advance_ns(5);
                });
            }
        });
        let stats = reg.span_stats();
        // Both threads rooted their own "work" span — no cross-thread
        // nesting under the other thread's stack.
        assert!(stats.contains_key(&vec!["work"]));
        assert!(stats.contains_key(&vec!["work", "step"]));
        assert_eq!(stats[&vec!["work"]].count, 2);
        assert_eq!(stats[&vec!["work", "step"]].count, 2);
    }

    #[test]
    fn reset_zeroes_but_keeps_handles_live() {
        let reg = TelemetryRegistry::new();
        reg.enable();
        let c = reg.counter("n");
        c.add(7);
        reg.reset();
        assert_eq!(c.get(), 0);
        c.add(2);
        assert_eq!(c.get(), 2);
        assert_eq!(reg.counter("n").get(), 2, "same cell after reset");
    }

    #[test]
    fn global_registry_is_a_singleton_and_disabled() {
        let a = global() as *const TelemetryRegistry;
        let b = global() as *const TelemetryRegistry;
        assert_eq!(a, b);
        // Default-off is the whole cost story; nothing in this test
        // enables it, and other tests use local registries.
        assert!(!global().is_enabled());
    }
}
