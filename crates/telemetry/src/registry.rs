//! The aggregation point: counters, histograms, and hierarchical spans.
//!
//! Everything funnels into one [`TelemetryRegistry`]. The registry is
//! **off by default** and cheap while off: every recording operation
//! starts with one relaxed atomic load, and the disabled path performs
//! no allocation, no locking, and no clock read. Hot call sites
//! pre-resolve [`Counter`] / [`Histogram`] handles once (an `Arc` to an
//! atomic cell) so recording is a single `fetch_add` with no name
//! lookup; coarse call sites may use the by-name convenience methods,
//! which take a short mutex on the name table.
//!
//! Spans are deliberately coarse — pipeline phases, not per-row work —
//! so their open/close cost (a mutex'd per-thread stack plus two clock
//! reads) is irrelevant next to what they measure.

use crate::clock::{Clock, MonotonicClock};
use crate::events::{EventSink, EventsShared};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::thread::ThreadId;

/// Number of log2 histogram buckets: bucket 0 holds zeros, bucket `b ≥ 1`
/// holds values in `[2^(b-1), 2^b)`, so 64 value buckets cover all of
/// `u64` plus the zero bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A span's identity: the chain of names from the root.
pub type SpanPath = Vec<&'static str>;

/// Aggregated statistics for one span path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Times a span with this path closed.
    pub count: u64,
    /// Total nanoseconds across all closes.
    pub total_ns: u64,
    /// True when the span ran concurrently with its parent (recorded via
    /// [`TelemetryRegistry::span_at`]), so its time must not be summed
    /// against siblings when checking parent totals.
    pub concurrent: bool,
}

/// A pre-resolved counter handle: one relaxed `fetch_add` per increment,
/// gated on the registry's enabled flag. Clone freely; clones share the
/// same cell.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    value: Arc<AtomicU64>,
    name: &'static str,
    events: Arc<EventsShared>,
}

impl Counter {
    /// Adds `n` when telemetry is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
            if self.events.armed() {
                self.events.emit_counter(self.name, n);
            }
        }
    }

    /// Adds 1 when telemetry is enabled.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// The lock-free core of a log2 histogram.
#[derive(Debug)]
pub struct HistogramCore {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
}

impl HistogramCore {
    fn new() -> HistogramCore {
        HistogramCore {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// The bucket index for a value: 0 for 0, else `log2(v) + 1`.
    #[inline]
    pub fn bucket_index(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    fn record(&self, v: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
    }

    /// `(count, sum, max)` observed so far.
    pub fn totals(&self) -> (u64, u64, u64) {
        (
            self.count.load(Ordering::Relaxed),
            self.sum.load(Ordering::Relaxed),
            self.max.load(Ordering::Relaxed),
        )
    }

    /// A copy of the bucket counts.
    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// A pre-resolved histogram handle. Recording is four relaxed atomic
/// operations, gated on the enabled flag; no allocation, ever.
#[derive(Debug, Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    core: Arc<HistogramCore>,
}

impl Histogram {
    /// Records one observation when telemetry is enabled.
    #[inline]
    pub fn record(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.core.record(v);
        }
    }

    /// The shared core (snapshot/test inspection).
    pub fn core(&self) -> &HistogramCore {
        &self.core
    }
}

/// A started measurement from [`TelemetryRegistry::stopwatch`]:
/// `None` when telemetry was disabled at the start, so the stop side
/// also costs nothing.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Option<u64>);

/// RAII guard for a timed span; records on drop.
pub struct SpanGuard<'a> {
    registry: Option<&'a TelemetryRegistry>,
    path: SpanPath,
    start_ns: u64,
    on_stack: bool,
    concurrent: bool,
    trace: u64,
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(registry) = self.registry else {
            return;
        };
        let elapsed = registry.clock.now_ns().saturating_sub(self.start_ns);
        if self.on_stack {
            let mut stacks = registry.stacks.lock().expect("span stacks poisoned");
            if let Some(stack) = stacks.get_mut(&std::thread::current().id()) {
                if stack.last() == self.path.last() {
                    stack.pop();
                }
            }
        }
        if registry.events.armed() {
            registry.events.emit_span(
                self.path.join("/"),
                self.start_ns,
                elapsed,
                self.concurrent,
                self.trace,
            );
        }
        let mut spans = registry.spans.lock().expect("span table poisoned");
        let stat = spans.entry(std::mem::take(&mut self.path)).or_default();
        stat.count += 1;
        stat.total_ns += elapsed;
        stat.concurrent |= self.concurrent;
    }
}

/// The aggregation registry. See the module docs for the cost model.
pub struct TelemetryRegistry {
    enabled: Arc<AtomicBool>,
    clock: Arc<dyn Clock>,
    events: Arc<EventsShared>,
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<&'static str, Arc<HistogramCore>>>,
    spans: Mutex<BTreeMap<SpanPath, SpanStat>>,
    stacks: Mutex<HashMap<ThreadId, Vec<&'static str>>>,
}

impl std::fmt::Debug for TelemetryRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryRegistry")
            .field("enabled", &self.is_enabled())
            .finish_non_exhaustive()
    }
}

impl Default for TelemetryRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl TelemetryRegistry {
    /// A disabled registry over the production monotonic clock.
    pub fn new() -> TelemetryRegistry {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A disabled registry over the given clock (tests pass a
    /// [`crate::MockClock`] here).
    pub fn with_clock(clock: Arc<dyn Clock>) -> TelemetryRegistry {
        TelemetryRegistry {
            enabled: Arc::new(AtomicBool::new(false)),
            events: Arc::new(EventsShared::new(Arc::clone(&clock))),
            clock,
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            spans: Mutex::new(BTreeMap::new()),
            stacks: Mutex::new(HashMap::new()),
        }
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off (existing data is kept; see
    /// [`TelemetryRegistry::reset`]).
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether recording is on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Zeroes every counter, histogram, and span. Pre-resolved handles
    /// stay valid (they share the zeroed cells).
    pub fn reset(&self) {
        for cell in self.counters.lock().expect("counter table").values() {
            cell.store(0, Ordering::Relaxed);
        }
        for core in self.histograms.lock().expect("histogram table").values() {
            core.reset();
        }
        self.spans.lock().expect("span table").clear();
        self.stacks.lock().expect("span stacks").clear();
    }

    /// Resolves (registering on first use) a counter handle.
    pub fn counter(&self, name: &'static str) -> Counter {
        let cell = Arc::clone(
            self.counters
                .lock()
                .expect("counter table")
                .entry(name)
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        );
        Counter {
            enabled: Arc::clone(&self.enabled),
            value: cell,
            name,
            events: Arc::clone(&self.events),
        }
    }

    /// Installs the live event sink (the flight recorder). Every span
    /// close and counter increment on an *enabled* registry is then also
    /// emitted as a [`crate::FlightEvent`]; outcome triggers fire even
    /// while disabled, so the recorder always sees dump-worthy moments.
    pub fn install_sink(&self, sink: Arc<dyn EventSink>) {
        self.events.install(sink);
    }

    /// Removes the event sink (events stop; aggregation unaffected).
    pub fn clear_sink(&self) {
        self.events.clear();
    }

    /// Whether an event sink is currently installed.
    pub fn sink_installed(&self) -> bool {
        self.events.armed()
    }

    /// Fires a dump-worthy outcome: records an [`crate::FlightEvent`]
    /// of kind `Outcome` (bypassing the enabled gate — the condition is
    /// rare and always worth capturing when a sink is armed), then calls
    /// the sink's [`EventSink::trigger`] so it can dump its ring. A
    /// single relaxed load when no sink is installed.
    pub fn trigger(&self, kind: &'static str, detail: &str) {
        if !self.events.armed() {
            return;
        }
        self.events.emit_outcome(kind, detail);
        if let Some(sink) = self.events.sink() {
            sink.trigger(kind, detail);
        }
    }

    /// Resolves (registering on first use) a histogram handle.
    pub fn histogram(&self, name: &'static str) -> Histogram {
        let core = Arc::clone(
            self.histograms
                .lock()
                .expect("histogram table")
                .entry(name)
                .or_insert_with(|| Arc::new(HistogramCore::new())),
        );
        Histogram {
            enabled: Arc::clone(&self.enabled),
            core,
        }
    }

    /// By-name increment for coarse call sites (one mutex'd lookup).
    /// Disabled cost: a single atomic load.
    pub fn incr(&self, name: &'static str, n: u64) {
        if self.is_enabled() {
            self.counter(name).add(n);
        }
    }

    /// By-name histogram record for coarse call sites.
    pub fn record(&self, name: &'static str, v: u64) {
        if self.is_enabled() {
            self.histogram(name).record(v);
        }
    }

    /// Starts a measurement; pair with [`TelemetryRegistry::elapsed_ns`].
    /// Returns an inert stopwatch (no clock read) when disabled.
    pub fn stopwatch(&self) -> Stopwatch {
        if self.is_enabled() {
            Stopwatch(Some(self.clock.now_ns()))
        } else {
            Stopwatch(None)
        }
    }

    /// Nanoseconds since `sw` was started, or `None` for an inert
    /// stopwatch.
    pub fn elapsed_ns(&self, sw: Stopwatch) -> Option<u64> {
        sw.0.map(|start| self.clock.now_ns().saturating_sub(start))
    }

    /// Opens a timed span nested under this thread's innermost open span
    /// (threads start at the root). Returns an inert guard when disabled.
    pub fn span(&self, name: &'static str) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard {
                registry: None,
                path: Vec::new(),
                start_ns: 0,
                on_stack: false,
                concurrent: false,
                trace: 0,
            };
        }
        let path = {
            let mut stacks = self.stacks.lock().expect("span stacks poisoned");
            let stack = stacks.entry(std::thread::current().id()).or_default();
            stack.push(name);
            stack.clone()
        };
        SpanGuard {
            registry: Some(self),
            path,
            start_ns: self.clock.now_ns(),
            on_stack: true,
            concurrent: false,
            trace: crate::trace::current_trace(),
        }
    }

    /// Opens a span at an explicit parent path, for work that runs on a
    /// *different thread* than its logical parent (e.g. a prefetch
    /// producer). The span is marked concurrent: report consumers must
    /// not add its time to sequential siblings when checking that a
    /// parent's total covers its children.
    pub fn span_at(&self, parent: &[&'static str], name: &'static str) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard {
                registry: None,
                path: Vec::new(),
                start_ns: 0,
                on_stack: false,
                concurrent: false,
                trace: 0,
            };
        }
        let mut path = parent.to_vec();
        path.push(name);
        SpanGuard {
            registry: Some(self),
            path,
            start_ns: self.clock.now_ns(),
            on_stack: false,
            concurrent: true,
            trace: crate::trace::current_trace(),
        }
    }

    /// This thread's current span path (for handing to
    /// [`TelemetryRegistry::span_at`] on a helper thread). Empty when
    /// disabled or outside any span.
    pub fn current_path(&self) -> SpanPath {
        if !self.is_enabled() {
            return Vec::new();
        }
        self.stacks
            .lock()
            .expect("span stacks poisoned")
            .get(&std::thread::current().id())
            .cloned()
            .unwrap_or_default()
    }

    /// A point-in-time copy of every counter value, name-ordered.
    pub fn counter_values(&self) -> Vec<(&'static str, u64)> {
        self.counters
            .lock()
            .expect("counter table")
            .iter()
            .map(|(&name, cell)| (name, cell.load(Ordering::Relaxed)))
            .collect()
    }

    /// A point-in-time copy of every histogram core, name-ordered.
    pub fn histogram_cores(&self) -> Vec<(&'static str, Arc<HistogramCore>)> {
        self.histograms
            .lock()
            .expect("histogram table")
            .iter()
            .map(|(&name, core)| (name, Arc::clone(core)))
            .collect()
    }

    /// A point-in-time copy of the span table.
    pub fn span_stats(&self) -> BTreeMap<SpanPath, SpanStat> {
        self.spans.lock().expect("span table").clone()
    }
}

/// The process-wide registry every pipeline layer records into.
///
/// Disabled until something (the CLI `--telemetry` flag, a bench bin, a
/// test) calls [`TelemetryRegistry::enable`] on it; while disabled, all
/// instrumentation in the pipeline is a relaxed atomic load per call.
pub fn global() -> &'static TelemetryRegistry {
    static GLOBAL: OnceLock<TelemetryRegistry> = OnceLock::new();
    GLOBAL.get_or_init(TelemetryRegistry::new)
}
