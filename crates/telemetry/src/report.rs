//! Snapshots and human/machine readouts.
//!
//! [`TelemetrySnapshot`] is the stable export format: a span tree with
//! self/total time, counters, and histogram summaries whose p50/p95/p99
//! come from [`spider_stats::QuantileSketch`] fed with the log2 bucket
//! counts (weighted at each bucket's geometric midpoint, so the sketch's
//! relative-error bound composes with the bucket width).
//!
//! Two renderers:
//!
//! * [`TelemetrySnapshot::to_json`] — hand-rendered, field-order-stable
//!   JSON (`schema_version` 2). Rendering is deliberately independent of
//!   `serde_json` so the export is byte-stable everywhere the crate
//!   builds, and golden-testable; the types still derive `serde` traits
//!   for embedding in larger documents under cargo builds.
//! * [`TelemetrySnapshot::to_table`] — the `--telemetry=table` CLI
//!   report: the span tree with total/self time and counts, then counter
//!   and histogram tables.

use crate::registry::{SpanPath, SpanStat, TelemetryRegistry, HISTOGRAM_BUCKETS};
use serde::{Deserialize, Serialize};
use spider_stats::QuantileSketch;

/// Version stamp of the JSON export; bump on any field change.
/// History: 1 = initial; 2 = `p999` added to histogram summaries.
pub const SCHEMA_VERSION: u32 = 2;

/// One node of the span tree.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpanNode {
    /// Span name (last path element).
    pub name: String,
    /// Times the span closed.
    pub count: u64,
    /// Total nanoseconds across closes.
    pub total_ns: u64,
    /// Nanoseconds not covered by sequential children:
    /// `total - Σ non-concurrent child totals`, clamped at 0.
    pub self_ns: u64,
    /// True when the span ran concurrently with its parent (its time is
    /// excluded from the parent's `self_ns` accounting).
    pub concurrent: bool,
    /// Child spans, name-ordered.
    pub children: Vec<SpanNode>,
}

/// One counter reading.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Counter name.
    pub name: String,
    /// Value at snapshot time.
    pub value: u64,
}

/// One histogram summary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Histogram name.
    pub name: String,
    /// Observations recorded.
    pub count: u64,
    /// Sum of observed values.
    pub sum: u64,
    /// Largest observed value (exact).
    pub max: u64,
    /// Median, from the quantile sketch (clamped to `max`).
    pub p50: u64,
    /// 95th percentile (clamped to `max`).
    pub p95: u64,
    /// 99th percentile (clamped to `max`).
    pub p99: u64,
    /// 99.9th percentile (clamped to `max`).
    pub p999: u64,
}

/// A stable point-in-time export of a registry.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Export format version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Root spans, name-ordered, children nested.
    pub spans: Vec<SpanNode>,
    /// All counters, name-ordered. Zero-valued counters are included:
    /// a registered-but-never-hit counter is a signal, not noise.
    pub counters: Vec<CounterSnapshot>,
    /// All histograms, name-ordered.
    pub histograms: Vec<HistogramSnapshot>,
}

impl TelemetrySnapshot {
    /// Captures the registry's current state.
    pub fn capture(registry: &TelemetryRegistry) -> TelemetrySnapshot {
        let counters = registry
            .counter_values()
            .into_iter()
            .map(|(name, value)| CounterSnapshot {
                name: name.to_string(),
                value,
            })
            .collect();
        let histograms = registry
            .histogram_cores()
            .into_iter()
            .map(|(name, core)| {
                let (count, sum, max) = core.totals();
                let (p50, p95, p99, p999) = bucket_quantiles(&core.bucket_counts(), max);
                HistogramSnapshot {
                    name: name.to_string(),
                    count,
                    sum,
                    max,
                    p50,
                    p95,
                    p99,
                    p999,
                }
            })
            .collect();
        TelemetrySnapshot {
            schema_version: SCHEMA_VERSION,
            spans: build_tree(&registry.span_stats()),
            counters,
            histograms,
        }
    }

    /// Every span node in depth-first order (the tree, flattened).
    pub fn walk_spans(&self) -> Vec<&SpanNode> {
        fn walk<'a>(nodes: &'a [SpanNode], out: &mut Vec<&'a SpanNode>) {
            for n in nodes {
                out.push(n);
                walk(&n.children, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.spans, &mut out);
        out
    }

    /// Checks the structural invariant the CI smoke asserts: every
    /// span's total covers the sum of its *sequential* children's
    /// totals. Returns the offending span names, empty when consistent.
    pub fn span_sum_violations(&self) -> Vec<String> {
        let mut bad = Vec::new();
        for node in self.walk_spans() {
            let sequential: u64 = node
                .children
                .iter()
                .filter(|c| !c.concurrent)
                .map(|c| c.total_ns)
                .sum();
            if sequential > node.total_ns {
                bad.push(node.name.clone());
            }
        }
        bad
    }

    /// The generic validity check behind `telemetry --check` and the
    /// serve soak: current schema version, span accounting consistent
    /// ([`TelemetrySnapshot::span_sum_violations`] empty), and at least
    /// one counter and one histogram recorded. Callers layer their own
    /// pipeline-shape checks (expected phase spans, unaccounted-time
    /// bounds) on top.
    pub fn validate(&self) -> Result<(), String> {
        if self.schema_version != SCHEMA_VERSION {
            return Err(format!(
                "unexpected schema version {} (want {})",
                self.schema_version, SCHEMA_VERSION
            ));
        }
        let violations = self.span_sum_violations();
        if !violations.is_empty() {
            return Err(format!("span accounting violations: {violations:?}"));
        }
        if self.counters.is_empty() {
            return Err("no counters recorded".into());
        }
        if self.histograms.is_empty() {
            return Err("no histograms recorded".into());
        }
        Ok(())
    }

    /// Renders the stable JSON document. Field order is fixed, keys are
    /// plain ASCII identifiers, every value is an integer, bool, string,
    /// array, or object — byte-identical for equal snapshots on every
    /// platform.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema_version\": {},\n  \"spans\": [",
            self.schema_version
        ));
        render_span_list(&self.spans, 1, &mut out);
        out.push_str("],\n  \"counters\": [");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"value\": {}}}",
                escape(&c.name),
                c.value
            ));
        }
        if !self.counters.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n  \"histograms\": [");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \"max\": {}, \
                 \"p50\": {}, \"p95\": {}, \"p99\": {}, \"p999\": {}}}",
                escape(&h.name),
                h.count,
                h.sum,
                h.max,
                h.p50,
                h.p95,
                h.p99,
                h.p999
            ));
        }
        if !self.histograms.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Renders the same document as [`TelemetrySnapshot::to_json`] on a
    /// single line (no newlines, minimal spacing) — for line-delimited
    /// transports like the serve wire protocol's `metrics` response.
    pub fn to_json_compact(&self) -> String {
        fn spans(nodes: &[SpanNode], out: &mut String) {
            for (i, n) in nodes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{},\"self_ns\":{},\
                     \"concurrent\":{},\"children\":[",
                    escape(&n.name),
                    n.count,
                    n.total_ns,
                    n.self_ns,
                    n.concurrent
                ));
                spans(&n.children, out);
                out.push_str("]}");
            }
        }
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{{\"schema_version\":{},\"spans\":[",
            self.schema_version
        ));
        spans(&self.spans, &mut out);
        out.push_str("],\"counters\":[");
        for (i, c) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"value\":{}}}",
                escape(&c.name),
                c.value
            ));
        }
        out.push_str("],\"histograms\":[");
        for (i, h) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":\"{}\",\"count\":{},\"sum\":{},\"max\":{},\"p50\":{},\
                 \"p95\":{},\"p99\":{},\"p999\":{}}}",
                escape(&h.name),
                h.count,
                h.sum,
                h.max,
                h.p50,
                h.p95,
                h.p99,
                h.p999
            ));
        }
        out.push_str("]}");
        out
    }

    /// Renders the human-readable `--telemetry=table` report.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str("spans (total / self / count; ∥ = concurrent with parent):\n");
        if self.spans.is_empty() {
            out.push_str("  (none)\n");
        }
        for root in &self.spans {
            render_span_table(root, 0, &mut out);
        }
        out.push_str("\ncounters:\n");
        if self.counters.is_empty() {
            out.push_str("  (none)\n");
        }
        let width = self
            .counters
            .iter()
            .map(|c| c.name.len())
            .max()
            .unwrap_or(0);
        for c in &self.counters {
            out.push_str(&format!("  {:<width$}  {}\n", c.name, c.value));
        }
        out.push_str("\nhistograms (count / p50 / p95 / p99 / p999 / max):\n");
        if self.histograms.is_empty() {
            out.push_str("  (none)\n");
        }
        let width = self
            .histograms
            .iter()
            .map(|h| h.name.len())
            .max()
            .unwrap_or(0);
        for h in &self.histograms {
            // Only histograms recording nanoseconds (the `_ns` naming
            // convention) get time units; the rest are plain quantities
            // (bytes, occupancy, ...).
            let fmt = |v: u64| {
                if h.name.ends_with("_ns") {
                    fmt_ns(v)
                } else {
                    v.to_string()
                }
            };
            out.push_str(&format!(
                "  {:<width$}  {:>8}  {:>9}  {:>9}  {:>9}  {:>9}  {:>9}\n",
                h.name,
                h.count,
                fmt(h.p50),
                fmt(h.p95),
                fmt(h.p99),
                fmt(h.p999),
                fmt(h.max),
            ));
        }
        out
    }
}

/// p50/p95/p99/p999 from log2 bucket counts via the shared quantile
/// sketch. Each bucket contributes its count at the bucket's geometric
/// midpoint; results are clamped to the exact observed max.
fn bucket_quantiles(buckets: &[u64; HISTOGRAM_BUCKETS], max: u64) -> (u64, u64, u64, u64) {
    let mut sketch = QuantileSketch::default();
    for (idx, &count) in buckets.iter().enumerate() {
        if count == 0 {
            continue;
        }
        let rep = if idx == 0 {
            0.0
        } else {
            // Bucket idx covers [2^(idx-1), 2^idx); geometric midpoint.
            2f64.powi(idx as i32 - 1) * std::f64::consts::SQRT_2
        };
        sketch.push_weighted(rep, count);
    }
    let q = |p: f64| {
        sketch
            .quantile(p)
            .map(|v| (v.round() as u64).min(max))
            .unwrap_or(0)
    };
    (q(0.50), q(0.95), q(0.99), q(0.999))
}

/// Assembles the nested tree from the flat path-keyed span table.
fn build_tree(stats: &std::collections::BTreeMap<SpanPath, SpanStat>) -> Vec<SpanNode> {
    let mut roots: Vec<SpanNode> = Vec::new();
    // BTreeMap iterates paths lexicographically, so parents always
    // precede their children; missing intermediate nodes (a child span
    // recorded without its parent ever closing) are synthesized with
    // zero counts.
    for (path, stat) in stats {
        let mut level = &mut roots;
        for (depth, &name) in path.iter().enumerate() {
            let pos = match level.iter().position(|n| n.name == name) {
                Some(pos) => pos,
                None => {
                    let insert_at = level.partition_point(|n| n.name.as_str() < name);
                    level.insert(
                        insert_at,
                        SpanNode {
                            name: name.to_string(),
                            count: 0,
                            total_ns: 0,
                            self_ns: 0,
                            concurrent: false,
                            children: Vec::new(),
                        },
                    );
                    insert_at
                }
            };
            let node = &mut level[pos];
            if depth + 1 == path.len() {
                node.count += stat.count;
                node.total_ns += stat.total_ns;
                node.concurrent |= stat.concurrent;
            }
            level = &mut level[pos].children;
        }
    }
    fn fill_self(nodes: &mut [SpanNode]) {
        for n in nodes {
            fill_self(&mut n.children);
            let sequential: u64 = n
                .children
                .iter()
                .filter(|c| !c.concurrent)
                .map(|c| c.total_ns)
                .sum();
            n.self_ns = n.total_ns.saturating_sub(sequential);
        }
    }
    fill_self(&mut roots);
    roots
}

fn render_span_list(nodes: &[SpanNode], depth: usize, out: &mut String) {
    let pad = "  ".repeat(depth + 1);
    for (i, n) in nodes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{pad}  {{\"name\": \"{}\", \"count\": {}, \"total_ns\": {}, \
             \"self_ns\": {}, \"concurrent\": {}, \"children\": [",
            escape(&n.name),
            n.count,
            n.total_ns,
            n.self_ns,
            n.concurrent
        ));
        render_span_list(&n.children, depth + 2, out);
        out.push_str("]}");
    }
    if !nodes.is_empty() {
        out.push('\n');
        out.push_str(&pad);
    }
}

fn render_span_table(node: &SpanNode, depth: usize, out: &mut String) {
    let label = format!(
        "{}{}{}",
        "  ".repeat(depth + 1),
        node.name,
        if node.concurrent { " ∥" } else { "" }
    );
    out.push_str(&format!(
        "{label:<36} {:>10}  {:>10}  {:>6}\n",
        fmt_ns(node.total_ns),
        fmt_ns(node.self_ns),
        node.count
    ));
    for child in &node.children {
        render_span_table(child, depth + 1, out);
    }
}

/// Human-scales a nanosecond figure.
pub fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

fn escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => "\\\"".chars().collect::<Vec<_>>(),
            '\\' => "\\\\".chars().collect(),
            '\n' => "\\n".chars().collect(),
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::MockClock;
    use std::sync::Arc;

    fn mock_registry() -> (TelemetryRegistry, Arc<MockClock>) {
        let clock = Arc::new(MockClock::new());
        let reg = TelemetryRegistry::with_clock(clock.clone());
        reg.enable();
        (reg, clock)
    }

    #[test]
    fn tree_assembles_nested_paths() {
        let (reg, clock) = mock_registry();
        {
            let _root = reg.span("pipeline");
            clock.advance_ns(10);
            {
                let _child = reg.span("simulate");
                clock.advance_ns(30);
            }
            {
                let _child = reg.span("analyze");
                clock.advance_ns(50);
            }
            clock.advance_ns(10);
        }
        let snap = TelemetrySnapshot::capture(&reg);
        assert_eq!(snap.spans.len(), 1);
        let root = &snap.spans[0];
        assert_eq!(root.name, "pipeline");
        assert_eq!(root.total_ns, 100);
        assert_eq!(root.self_ns, 20);
        assert_eq!(root.count, 1);
        // Children are name-ordered: analyze before simulate.
        let names: Vec<&str> = root.children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(names, ["analyze", "simulate"]);
        assert_eq!(root.children[0].total_ns, 50);
        assert_eq!(root.children[1].total_ns, 30);
        assert!(snap.span_sum_violations().is_empty());
    }

    #[test]
    fn repeated_spans_aggregate() {
        let (reg, clock) = mock_registry();
        for _ in 0..3 {
            let _s = reg.span("week");
            clock.advance_ns(7);
        }
        let snap = TelemetrySnapshot::capture(&reg);
        assert_eq!(snap.spans[0].count, 3);
        assert_eq!(snap.spans[0].total_ns, 21);
    }

    #[test]
    fn concurrent_spans_do_not_break_parent_sums() {
        let (reg, clock) = mock_registry();
        let parent_path = {
            let _p = reg.span("analyze");
            let path = reg.current_path();
            // A "producer" records more time under the parent than the
            // parent itself spans — legal for concurrent children.
            {
                let _load = reg.span_at(&path, "load");
                clock.advance_ns(500);
            }
            path
        };
        assert_eq!(parent_path, vec!["analyze"]);
        let snap = TelemetrySnapshot::capture(&reg);
        let root = &snap.spans[0];
        assert_eq!(root.total_ns, 500); // parent closed after the child here
        assert!(root.children[0].concurrent);
        assert_eq!(root.self_ns, root.total_ns, "concurrent child excluded");
        assert!(snap.span_sum_violations().is_empty());
    }

    #[test]
    fn sum_violation_is_detected_for_sequential_children() {
        let snap = TelemetrySnapshot {
            schema_version: SCHEMA_VERSION,
            spans: vec![SpanNode {
                name: "root".into(),
                count: 1,
                total_ns: 10,
                self_ns: 0,
                concurrent: false,
                children: vec![SpanNode {
                    name: "child".into(),
                    count: 1,
                    total_ns: 25,
                    self_ns: 25,
                    concurrent: false,
                    children: vec![],
                }],
            }],
            counters: vec![],
            histograms: vec![],
        };
        assert_eq!(snap.span_sum_violations(), vec!["root".to_string()]);
    }

    #[test]
    fn histogram_quantiles_track_buckets() {
        let (reg, _clock) = mock_registry();
        let h = reg.histogram("lat");
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let snap = TelemetrySnapshot::capture(&reg);
        let hist = &snap.histograms[0];
        assert_eq!(hist.count, 100);
        assert_eq!(hist.max, 100_000);
        // p50 lands in 100's bucket [64, 128), p99 in 100k's bucket.
        assert!((64..128).contains(&hist.p50), "p50 = {}", hist.p50);
        assert!(hist.p99 > 60_000, "p99 = {}", hist.p99);
        assert!(hist.p99 <= 100_000);
    }

    #[test]
    fn json_is_stable_and_schema_shaped() {
        let (reg, clock) = mock_registry();
        reg.counter("c.one").add(5);
        reg.histogram("h.one").record(3);
        {
            let _s = reg.span("root");
            clock.advance_ns(40);
        }
        let a = TelemetrySnapshot::capture(&reg).to_json();
        let b = TelemetrySnapshot::capture(&reg).to_json();
        assert_eq!(a, b, "same state must render identically");
        for needle in [
            "\"schema_version\": 2",
            "\"spans\": [",
            "\"counters\": [",
            "\"histograms\": [",
            "\"total_ns\": 40",
            "\"name\": \"c.one\", \"value\": 5",
        ] {
            assert!(a.contains(needle), "missing {needle} in:\n{a}");
        }
    }

    /// The golden document: any change to field names, ordering,
    /// indentation, or number rendering is a schema change and must bump
    /// [`SCHEMA_VERSION`] — this test is the tripwire.
    #[test]
    fn json_golden_document() {
        let (reg, clock) = mock_registry();
        reg.counter("cache.hits").add(3);
        reg.histogram("store.read_ns").record(1024);
        {
            let _pipeline = reg.span("pipeline");
            {
                let _scrub = reg.span("scrub");
                clock.advance_ns(10);
            }
            clock.advance_ns(5);
        }
        let expected = r#"{
  "schema_version": 2,
  "spans": [
      {"name": "pipeline", "count": 1, "total_ns": 15, "self_ns": 5, "concurrent": false, "children": [
          {"name": "scrub", "count": 1, "total_ns": 10, "self_ns": 10, "concurrent": false, "children": []}
        ]}
    ],
  "counters": [
    {"name": "cache.hits", "value": 3}
  ],
  "histograms": [
    {"name": "store.read_ns", "count": 1, "sum": 1024, "max": 1024, "p50": 1024, "p95": 1024, "p99": 1024, "p999": 1024}
  ]
}
"#;
        assert_eq!(TelemetrySnapshot::capture(&reg).to_json(), expected);
    }

    /// The compact renderer is the wire form of the same document: one
    /// line, no interior newlines, same field order, round-trippable by
    /// any JSON parser.
    #[test]
    fn json_compact_is_single_line_and_field_identical() {
        let (reg, clock) = mock_registry();
        reg.counter("cache.hits").add(3);
        reg.histogram("store.read_ns").record(1024);
        {
            let _pipeline = reg.span("pipeline");
            clock.advance_ns(15);
        }
        let compact = TelemetrySnapshot::capture(&reg).to_json_compact();
        assert!(!compact.contains('\n'), "compact must be one line");
        assert_eq!(
            compact,
            "{\"schema_version\":2,\"spans\":[{\"name\":\"pipeline\",\"count\":1,\
             \"total_ns\":15,\"self_ns\":15,\"concurrent\":false,\"children\":[]}],\
             \"counters\":[{\"name\":\"cache.hits\",\"value\":3}],\"histograms\":\
             [{\"name\":\"store.read_ns\",\"count\":1,\"sum\":1024,\"max\":1024,\
             \"p50\":1024,\"p95\":1024,\"p99\":1024,\"p999\":1024}]}"
        );
    }

    /// Satellite guarantee: report ordering is by name, independent of
    /// registration or recording order (BTreeMap-backed tables), so
    /// goldens and diffs are stable across thread interleavings.
    #[test]
    fn report_orders_by_name_not_registration_order() {
        let (reg, _clock) = mock_registry();
        reg.counter("z.late").add(1);
        reg.counter("a.early").add(2);
        reg.histogram("z.h").record(1);
        reg.histogram("a.h").record(2);
        let snap = TelemetrySnapshot::capture(&reg);
        let counters: Vec<&str> = snap.counters.iter().map(|c| c.name.as_str()).collect();
        let histograms: Vec<&str> = snap.histograms.iter().map(|h| h.name.as_str()).collect();
        assert_eq!(counters, ["a.early", "z.late"]);
        assert_eq!(histograms, ["a.h", "z.h"]);
        let json = snap.to_json();
        assert!(
            json.find("a.early").unwrap() < json.find("z.late").unwrap(),
            "JSON must render in name order"
        );
    }

    #[test]
    fn table_renders_all_sections() {
        let (reg, clock) = mock_registry();
        reg.counter("hits").add(2);
        reg.histogram("ns").record(1500);
        {
            let _s = reg.span("phase");
            clock.advance_ns(2_000_000);
        }
        let table = TelemetrySnapshot::capture(&reg).to_table();
        assert!(table.contains("phase"));
        assert!(table.contains("2.0ms"));
        assert!(table.contains("hits"));
        assert!(table.contains("ns"));
    }

    #[test]
    fn fmt_ns_scales() {
        assert_eq!(fmt_ns(12), "12ns");
        assert_eq!(fmt_ns(1_500), "1.5µs");
        assert_eq!(fmt_ns(2_500_000), "2.5ms");
        assert_eq!(fmt_ns(3_210_000_000), "3.21s");
    }
}
