//! Per-request trace-id propagation.
//!
//! A trace id is an opaque nonzero `u64` minted at a request boundary
//! (the serve front-end) and carried down the call stack via a
//! thread-local, so every span close and counter increment inside the
//! request's extent is tagged with it — including synchronous dips into
//! other crates (loader, cache, raft peer heal) that know nothing about
//! the wire protocol. Zero means "no trace"; the thread-local starts
//! there and [`TraceScope`] restores the previous value on drop, so
//! scopes nest.

use std::cell::Cell;

thread_local! {
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// The trace id active on this thread (0 = none).
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(|c| c.get())
}

/// RAII scope installing a trace id on this thread; the previous id is
/// restored on drop, so nested scopes (a traced request issuing a traced
/// sub-request) unwind correctly.
#[derive(Debug)]
pub struct TraceScope {
    prev: u64,
}

impl TraceScope {
    /// Makes `trace` this thread's active trace id until the scope drops.
    pub fn enter(trace: u64) -> TraceScope {
        TraceScope {
            prev: CURRENT_TRACE.with(|c| c.replace(trace)),
        }
    }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| c.set(self.prev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_nest_and_restore() {
        assert_eq!(current_trace(), 0);
        {
            let _outer = TraceScope::enter(7);
            assert_eq!(current_trace(), 7);
            {
                let _inner = TraceScope::enter(9);
                assert_eq!(current_trace(), 9);
            }
            assert_eq!(current_trace(), 7);
        }
        assert_eq!(current_trace(), 0);
    }

    #[test]
    fn traces_are_thread_local() {
        let _mine = TraceScope::enter(42);
        std::thread::spawn(|| assert_eq!(current_trace(), 0))
            .join()
            .expect("spawned thread");
        assert_eq!(current_trace(), 42);
    }
}
