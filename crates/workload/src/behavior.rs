//! Per-project behavioral parameters.
//!
//! [`ProjectBehavior`] translates a domain's calibration profile plus a
//! project's volume share into the knobs the simulation driver executes
//! every week: creation rates, burstiness targets, read/update/delete
//! churn, purge-dodging touch scripts, stripe tuning, directory shapes,
//! and file-name (extension) generation.
//!
//! The translation encodes the paper's §4.2 findings *generatively*:
//!
//! * **write burstiness** — new-file `mtime` offsets within a week are
//!   drawn from a clamped normal whose relative dispersion equals the
//!   domain's Table 1 write `c_v`;
//! * **read burstiness** — read passes cluster `atime` offsets with the
//!   (~100× smaller) read `c_v`;
//! * **file age** (Fig. 16) — a *reference-dataset* fraction of files is
//!   re-read for months after its last write, pushing median age past the
//!   90-day purge window;
//! * **churn** (Fig. 13) — weekly delete/update fractions produce the
//!   new/deleted/updated/readonly/untouched mix;
//! * **growth** (Fig. 15) — a linear activity ramp multiplies creation
//!   rates ~5× across the window (200 M → 1 B live entries in the paper);
//! * **extension surges** (Fig. 10) — nph's `.bb` burst in mid-2015 and
//!   chp's `.xyz` burst in early 2016 are volume multipliers on those
//!   domains' dominant allocations.

use crate::population::Project;
use crate::profiles::DomainProfile;
use crate::rng::{clamped_normal, log_normal};
use rand::{Rng, RngExt};
use serde::{Deserialize, Serialize};

/// Days in the paper's observation window.
pub const OBSERVATION_DAYS: u32 = 500;

/// Activity ramp over the window: the live file count grows ~5× (Fig. 15),
/// which a linear creation-rate ramp from 1× to ~5× reproduces under a
/// fixed retention window.
pub fn growth_multiplier(day: u32) -> f64 {
    1.0 + 4.0 * (day.min(OBSERVATION_DAYS) as f64 / OBSERVATION_DAYS as f64)
}

/// The `.bb` surge window (Nuclear Physics, around July 2015 — paper
/// Fig. 10), as simulation days.
pub const BB_SURGE: (u32, u32) = (170, 230);
/// The `.xyz` surge window (Physical Chemistry, February 2016).
pub const XYZ_SURGE: (u32, u32) = (390, 440);

/// What kind of name a generated file gets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NameKind {
    /// A known extension from the domain mix (`out.xyz`); the payload
    /// indexes into [`ExtensionMix::entries`].
    Known(usize),
    /// No extension at all (`RESTART`); ~16% of files in Fig. 10.
    Bare,
    /// Numeric checkpoint suffix (`result.0001`), which the paper notes
    /// its extension analysis cannot classify.
    Numeric,
    /// A rare junk extension, landing in Fig. 10's "other" bucket.
    Rare,
}

/// Weighted file-name generator for one project.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtensionMix {
    /// `(extension, weight)` entries for known extensions; weights are
    /// percentages and need not reach 100 — the remainder is split among
    /// bare/numeric/rare names.
    entries: Vec<(String, f64)>,
    /// Cumulative weights in `[0, 1]`, parallel to `entries`.
    cumulative: Vec<f64>,
    /// Fraction of bare (extension-less) names.
    bare_fraction: f64,
    /// Fraction of numeric checkpoint suffixes.
    numeric_fraction: f64,
}

/// Fraction of all files with no extension (Fig. 10: ~16%).
const BARE_FRACTION: f64 = 0.16;
/// Fraction of numeric checkpoint names (a slice of Fig. 10's "other").
const NUMERIC_FRACTION: f64 = 0.08;

impl ExtensionMix {
    /// Builds the mix for a domain: Table 2's top extensions, a source-code
    /// share for the domain's top-2 languages plus shell scripts (feeding
    /// Figs. 11/12), and a common tail of generic data extensions.
    pub fn for_profile(prof: &DomainProfile) -> ExtensionMix {
        let mut entries: Vec<(String, f64)> = Vec::new();
        let mut claimed = 0.0;
        for &(ext, pct) in prof.extensions {
            entries.push((ext.to_string(), pct));
            claimed += pct;
        }
        // Source files: ~6% of entries, split 60/40 between the domain's
        // top-2 languages, plus headers for C/C++ and 2% shell scripts.
        let lang_exts: [(&str, f64); 2] = [
            (
                crate::languages::primary_extension(prof.languages[0]).unwrap_or("c"),
                3.6,
            ),
            (
                crate::languages::primary_extension(prof.languages[1]).unwrap_or("c"),
                2.4,
            ),
        ];
        for (ext, pct) in lang_exts {
            merge_entry(&mut entries, ext, pct);
            claimed += pct;
        }
        merge_entry(&mut entries, "sh", 2.0);
        claimed += 2.0;

        // Generic tail shared by every domain (the paper's top-20 list:
        // txt, dat, log, png, gz, h5, o, xml, out, inp ...).
        let tail: [(&str, f64); 10] = [
            ("txt", 2.0),
            ("dat", 2.0),
            ("log", 2.0),
            ("png", 1.5),
            ("gz", 1.5),
            ("h5", 1.0),
            ("o", 1.0),
            ("xml", 0.8),
            ("out", 0.8),
            ("inp", 0.5),
        ];
        for (ext, pct) in tail {
            merge_entry(&mut entries, ext, pct);
            claimed += pct;
        }

        // Normalize so known extensions never exceed the non-bare,
        // non-numeric budget.
        let budget = (1.0 - BARE_FRACTION - NUMERIC_FRACTION) * 100.0;
        if claimed > budget {
            let scale = budget / claimed;
            for e in &mut entries {
                e.1 *= scale;
            }
        }
        let mut cumulative = Vec::with_capacity(entries.len());
        let mut acc = 0.0;
        for e in &entries {
            acc += e.1 / 100.0;
            cumulative.push(acc);
        }
        ExtensionMix {
            entries,
            cumulative,
            bare_fraction: BARE_FRACTION,
            numeric_fraction: NUMERIC_FRACTION,
        }
    }

    /// Draws the name kind for one new file.
    pub fn sample(&self, rng: &mut impl Rng) -> NameKind {
        let u: f64 = rng.random_range(0.0..1.0);
        if let Some(idx) = self.cumulative.iter().position(|&c| u < c) {
            return NameKind::Known(idx);
        }
        let rest = u - self.cumulative.last().copied().unwrap_or(0.0);
        let span = 1.0 - self.cumulative.last().copied().unwrap_or(0.0);
        let frac = if span > 0.0 { rest / span } else { 1.0 };
        let bare_cut = self.bare_fraction
            / (self.bare_fraction + self.numeric_fraction + rare_fraction_of(self));
        let numeric_cut = bare_cut
            + self.numeric_fraction
                / (self.bare_fraction + self.numeric_fraction + rare_fraction_of(self));
        if frac < bare_cut {
            NameKind::Bare
        } else if frac < numeric_cut {
            NameKind::Numeric
        } else {
            NameKind::Rare
        }
    }

    /// Generates a concrete file name for serial number `serial`.
    pub fn sample_name(&self, rng: &mut impl Rng, serial: u64) -> String {
        match self.sample(rng) {
            NameKind::Known(idx) => format!("f{serial:07}.{}", self.entries[idx].0),
            NameKind::Bare => format!("RESTART{serial:07}"),
            NameKind::Numeric => {
                let step = rng.random_range(0..10_000u32);
                format!("result{serial:05}.{step:04}")
            }
            NameKind::Rare => {
                // A long tail of junk extensions, distinct per draw.
                let tag: u32 = rng.random_range(0..500);
                format!("f{serial:07}.x{tag:03}")
            }
        }
    }

    /// The known-extension entries and weights.
    pub fn entries(&self) -> &[(String, f64)] {
        &self.entries
    }
}

fn rare_fraction_of(mix: &ExtensionMix) -> f64 {
    (1.0 - mix.cumulative.last().copied().unwrap_or(0.0) - mix.bare_fraction - mix.numeric_fraction)
        .max(0.0)
}

fn merge_entry(entries: &mut Vec<(String, f64)>, ext: &str, pct: f64) {
    if let Some(e) = entries.iter_mut().find(|e| e.0 == ext) {
        e.1 += pct;
    } else {
        entries.push((ext.to_string(), pct));
    }
}

/// Stripe-tuning behaviour derived from the Table 1 `# OST` level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StripeTuning {
    /// Fraction of files receiving a non-default stripe count.
    pub tuned_fraction: f64,
    /// Low end of the tuned stripe range.
    pub min_stripe: u32,
    /// High end of the tuned stripe range (≤ 1,008).
    pub max_stripe: u32,
}

/// Fully resolved behavioural parameters for one project.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProjectBehavior {
    /// Base files created per day at window start (before the growth ramp
    /// and surge multipliers), already scaled by the simulation's scale
    /// factor.
    pub base_daily_files: f64,
    /// Directory fraction of created entries (Fig. 7b).
    pub dir_fraction: f64,
    /// Target `c_v` of weekly new-file `mtime` offsets.
    pub write_cv: f64,
    /// Target `c_v` of weekly readonly-file `atime` offsets.
    pub read_cv: f64,
    /// Fraction of the project's live files deleted by users each week.
    pub weekly_delete_fraction: f64,
    /// Fraction of recent files rewritten (checkpoint updates) each week.
    pub weekly_update_fraction: f64,
    /// Fraction of newly created files that become long-lived reference
    /// datasets (re-read for months; drives Fig. 16 file ages).
    pub reference_fraction: f64,
    /// Base re-read cycle for reference files, in weeks. Each file's
    /// actual cycle is `base + (ino % 3)`, staggered by inode so read
    /// sessions spread out. Cycles sit just inside the 90-day purge
    /// window: references survive the purge while contributing only a
    /// small weekly read-only share (Fig. 13's 3%) and ever-growing
    /// `atime - mtime` ages (Fig. 16).
    pub reference_cycle_weeks: u8,
    /// True if this project's users run a purge-dodging touch script.
    pub touch_script: bool,
    /// Stripe tuning, or `None` for pure default-4 behaviour.
    pub stripe_tuning: Option<StripeTuning>,
    /// Median directory depth target (paths, in the paper's counting).
    pub depth_median: u16,
    /// Maximum directory depth target.
    pub depth_max: u16,
    /// File-name generator.
    pub extensions: ExtensionMix,
}

impl ProjectBehavior {
    /// Resolves behaviour for `project` under `profile`, at the given
    /// simulation `scale` (fraction of the paper's absolute volume).
    pub fn resolve(
        project: &Project,
        profile: &DomainProfile,
        scale: f64,
        rng: &mut impl Rng,
    ) -> ProjectBehavior {
        // volume_k is the project's unique-entry total (in thousands) over
        // the 500-day window. With the linear 1x->5x ramp, the integral of
        // growth_multiplier over the window is 3x the base rate, so:
        //   total = base_daily * 3 * OBSERVATION_DAYS
        let total_entries = project.volume_k * 1_000.0 * scale;
        let base_daily_files = (total_entries / (3.0 * OBSERVATION_DAYS as f64)).max(0.001);

        let write_cv = profile.write_cv.unwrap_or(0.05);
        let read_cv = profile.read_cv.unwrap_or(0.001).max(1e-4);

        let stripe_tuning = match profile.ost_level {
            4 => None,
            level if level < 4 => Some(StripeTuning {
                tuned_fraction: 0.5,
                min_stripe: 1,
                max_stripe: 2,
            }),
            level => {
                let max_stripe = (level * 8).clamp(8, 1_008);
                // Mean tuned stripe under log-uniform [8, max]:
                let mean_tuned = ((8.0 * max_stripe as f64).sqrt()).max(8.0);
                let fraction = ((level as f64 - 4.0) / (mean_tuned - 4.0)).clamp(0.02, 0.6);
                Some(StripeTuning {
                    tuned_fraction: fraction,
                    min_stripe: 8,
                    max_stripe,
                })
            }
        };

        ProjectBehavior {
            base_daily_files,
            dir_fraction: profile.dir_fraction,
            write_cv,
            read_cv,
            weekly_delete_fraction: rng.random_range(0.12..0.18),
            weekly_update_fraction: rng.random_range(0.06..0.10),
            reference_fraction: 0.22,
            reference_cycle_weeks: 10,
            touch_script: rng.random_range(0.0..1.0) < 0.10,
            stripe_tuning,
            depth_median: profile.depth_median,
            depth_max: profile.depth_max,
            extensions: ExtensionMix::for_profile(profile),
        }
    }

    /// Files to create on `day`, combining the base rate, the growth ramp,
    /// and any extension-surge multiplier, as a Poisson draw.
    pub fn files_for_day(&self, day: u32, surge: f64, rng: &mut impl Rng) -> u64 {
        let lambda = self.base_daily_files * growth_multiplier(day) * surge;
        crate::rng::poisson(rng, lambda)
    }

    /// `mtime` offset (seconds into the week) for a new file, matching the
    /// write-burstiness target: a normal around mid-week with relative
    /// dispersion `write_cv`, clamped into the week.
    pub fn write_offset(&self, rng: &mut impl Rng, week_secs: f64) -> f64 {
        let mu = week_secs / 2.0;
        clamped_normal(rng, mu, self.write_cv * mu, 0.0, week_secs - 1.0)
    }

    /// `atime` offset for a read-pass access: tightly clustered around a
    /// session point (~100× tighter than writes, §4.2.4).
    pub fn read_offset(&self, rng: &mut impl Rng, week_secs: f64, session_center: f64) -> f64 {
        clamped_normal(
            rng,
            session_center,
            self.read_cv * session_center,
            0.0,
            week_secs - 1.0,
        )
    }

    /// Draws the stripe count for a new file: `None` keeps the default.
    pub fn sample_stripe(&self, rng: &mut impl Rng) -> Option<u32> {
        let tuning = self.stripe_tuning?;
        if rng.random_range(0.0..1.0) >= tuning.tuned_fraction {
            return None;
        }
        // Log-uniform between min and max stripes.
        let lo = (tuning.min_stripe as f64).ln();
        let hi = (tuning.max_stripe as f64).ln();
        let v = rng.random_range(lo..=hi).exp().round() as u32;
        Some(v.clamp(tuning.min_stripe, tuning.max_stripe))
    }

    /// Target depth for a new campaign directory chain (a draw between the
    /// user-directory floor of 5 and the domain's observed range).
    pub fn sample_campaign_depth(&self, rng: &mut impl Rng) -> u16 {
        let med = self.depth_median.max(6) as f64;
        // Log-normal around the median keeps most campaigns near it while
        // allowing the long tail Table 1 reports.
        let depth = log_normal(rng, med, 0.25);
        let cap = self.depth_max.min(80); // stress-test chains are separate
        (depth.round() as u16).clamp(6, cap.max(6))
    }

    /// The surge multiplier for a domain on a given day (Fig. 10's `.bb`
    /// and `.xyz` events). Applies to nph and chp respectively.
    pub fn surge_multiplier(domain: crate::domain::ScienceDomain, day: u32) -> f64 {
        use crate::domain::ScienceDomain::{Chp, Nph};
        match domain {
            Nph if (BB_SURGE.0..BB_SURGE.1).contains(&day) => 3.0,
            Chp if (XYZ_SURGE.0..XYZ_SURGE.1).contains(&day) => 4.0,
            _ => 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domain::ScienceDomain;
    use crate::population::{Population, PopulationConfig};
    use crate::profiles::profile;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(1)
    }

    fn behavior_for(domain: ScienceDomain) -> ProjectBehavior {
        let pop = Population::generate(&PopulationConfig {
            project_scale: 1.0,
            ..PopulationConfig::default()
        });
        let project = pop.domain_projects(domain).next().unwrap().clone();
        ProjectBehavior::resolve(&project, profile(domain), 0.001, &mut rng())
    }

    #[test]
    fn growth_ramp_endpoints() {
        assert!((growth_multiplier(0) - 1.0).abs() < 1e-12);
        assert!((growth_multiplier(250) - 3.0).abs() < 0.02);
        assert!((growth_multiplier(500) - 5.0).abs() < 1e-12);
        assert_eq!(growth_multiplier(9999), 5.0); // clamped past the window
    }

    #[test]
    fn volume_to_rate_inversion() {
        // Integrating the ramp recovers the project's total volume.
        let b = behavior_for(ScienceDomain::Bip);
        let total: f64 = (0..OBSERVATION_DAYS)
            .map(|d| b.base_daily_files * growth_multiplier(d))
            .sum();
        let pop = Population::generate(&PopulationConfig::default());
        let expected = pop
            .domain_projects(ScienceDomain::Bip)
            .next()
            .unwrap()
            .volume_k
            * 1_000.0
            * 0.001;
        assert!(
            (total - expected).abs() / expected < 0.02,
            "{total} vs {expected}"
        );
    }

    #[test]
    fn write_offsets_hit_cv_target() {
        let b = behavior_for(ScienceDomain::Cli); // write_cv 0.421
        let week = 7.0 * 86_400.0;
        let mut r = rng();
        let offsets: Vec<f64> = (0..20_000).map(|_| b.write_offset(&mut r, week)).collect();
        let m = spider_stats::StreamingMoments::from_slice(&offsets);
        let cv = m.coefficient_of_variation().unwrap();
        // Clamping to the week shrinks the dispersion slightly.
        assert!((cv - 0.421).abs() < 0.08, "cv {cv}");
    }

    #[test]
    fn read_offsets_are_much_tighter_than_writes() {
        let b = behavior_for(ScienceDomain::Cli);
        let week = 7.0 * 86_400.0;
        let mut r = rng();
        let center = week * 0.6;
        let reads: Vec<f64> = (0..5_000)
            .map(|_| b.read_offset(&mut r, week, center))
            .collect();
        let writes: Vec<f64> = (0..5_000).map(|_| b.write_offset(&mut r, week)).collect();
        let cv_r = spider_stats::StreamingMoments::from_slice(&reads)
            .coefficient_of_variation()
            .unwrap();
        let cv_w = spider_stats::StreamingMoments::from_slice(&writes)
            .coefficient_of_variation()
            .unwrap();
        assert!(cv_w / cv_r > 20.0, "write {cv_w} / read {cv_r}");
    }

    #[test]
    fn default_domains_never_tune_stripes() {
        let b = behavior_for(ScienceDomain::Bio); // ost_level 4
        assert!(b.stripe_tuning.is_none());
        let mut r = rng();
        for _ in 0..100 {
            assert_eq!(b.sample_stripe(&mut r), None);
        }
    }

    #[test]
    fn tuning_domains_produce_wide_stripes() {
        let b = behavior_for(ScienceDomain::Ast); // ost_level 122
        let tuning = b.stripe_tuning.unwrap();
        assert!(tuning.max_stripe <= 1_008);
        assert!(tuning.max_stripe >= 500);
        let mut r = rng();
        let stripes: Vec<u32> = (0..5_000).filter_map(|_| b.sample_stripe(&mut r)).collect();
        assert!(!stripes.is_empty());
        assert!(stripes.iter().all(|&s| (8..=1_008).contains(&s)));
        assert!(stripes.iter().any(|&s| s > 64), "no wide stripes drawn");
    }

    #[test]
    fn understriping_domain() {
        let b = behavior_for(ScienceDomain::Env); // ost_level 2
        let tuning = b.stripe_tuning.unwrap();
        assert_eq!((tuning.min_stripe, tuning.max_stripe), (1, 2));
    }

    #[test]
    fn campaign_depths_respect_domain_range() {
        for domain in [ScienceDomain::Mph, ScienceDomain::Csc, ScienceDomain::Stf] {
            let b = behavior_for(domain);
            let mut r = rng();
            for _ in 0..500 {
                let d = b.sample_campaign_depth(&mut r);
                assert!(d >= 6, "{}: {d}", domain.id());
                assert!(d <= b.depth_max.max(80), "{}: {d}", domain.id());
            }
        }
    }

    #[test]
    fn extension_mix_prefers_table2_top() {
        let b = behavior_for(ScienceDomain::Bio); // pdbqt at 97.6%
        let mut r = rng();
        let mut pdbqt = 0;
        let n = 5_000;
        for i in 0..n {
            if b.extensions.sample_name(&mut r, i).ends_with(".pdbqt") {
                pdbqt += 1;
            }
        }
        let frac = pdbqt as f64 / n as f64;
        // 97.6% claimed, rescaled under the 76% known-extension budget.
        assert!(frac > 0.55, "pdbqt fraction {frac}");
    }

    #[test]
    fn name_kinds_cover_bare_numeric_and_rare() {
        let b = behavior_for(ScienceDomain::Aph); // tiny top-extension share
        let mut r = rng();
        let mut bare = 0;
        let mut numeric = 0;
        let mut rare = 0;
        for _ in 0..10_000 {
            match b.extensions.sample(&mut r) {
                NameKind::Bare => bare += 1,
                NameKind::Numeric => numeric += 1,
                NameKind::Rare => rare += 1,
                NameKind::Known(_) => {}
            }
        }
        assert!(bare > 800, "bare {bare}"); // ~16%
        assert!(numeric > 300, "numeric {numeric}"); // ~8%
        assert!(rare > 100, "rare {rare}");
    }

    #[test]
    fn surge_multipliers() {
        use crate::domain::ScienceDomain::{Chp, Cli, Nph};
        assert_eq!(ProjectBehavior::surge_multiplier(Nph, 200), 3.0);
        assert_eq!(ProjectBehavior::surge_multiplier(Nph, 100), 1.0);
        assert_eq!(ProjectBehavior::surge_multiplier(Chp, 400), 4.0);
        assert_eq!(ProjectBehavior::surge_multiplier(Chp, 200), 1.0);
        assert_eq!(ProjectBehavior::surge_multiplier(Cli, 200), 1.0);
    }

    #[test]
    fn files_for_day_scales_with_ramp() {
        let b = behavior_for(ScienceDomain::Bip);
        let mut r = rng();
        let early: u64 = (0..200).map(|_| b.files_for_day(10, 1.0, &mut r)).sum();
        let late: u64 = (0..200).map(|_| b.files_for_day(490, 1.0, &mut r)).sum();
        assert!(
            late as f64 > early as f64 * 3.0,
            "late {late} vs early {early}"
        );
    }
}
