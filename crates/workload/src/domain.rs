//! The 35 science domains of the study (Table 1).

use serde::{Deserialize, Serialize};

/// A science domain, identified by the paper's three-letter prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // variants are the paper's own domain ids
pub enum ScienceDomain {
    Aph,
    Ard,
    Ast,
    Atm,
    Bif,
    Bio,
    Bip,
    Chm,
    Chp,
    Cli,
    Cmb,
    Cph,
    Csc,
    Env,
    Fus,
    Gen,
    Geo,
    Hep,
    Lgt,
    Lsc,
    Mat,
    Med,
    Mph,
    Nel,
    Nfi,
    Nfu,
    Nph,
    Nro,
    Nti,
    Phy,
    Pss,
    Stf,
    Syb,
    Tur,
    Ven,
}

/// All 35 domains in Table 1 order.
pub const ALL_DOMAINS: [ScienceDomain; 35] = [
    ScienceDomain::Aph,
    ScienceDomain::Ard,
    ScienceDomain::Ast,
    ScienceDomain::Atm,
    ScienceDomain::Bif,
    ScienceDomain::Bio,
    ScienceDomain::Bip,
    ScienceDomain::Chm,
    ScienceDomain::Chp,
    ScienceDomain::Cli,
    ScienceDomain::Cmb,
    ScienceDomain::Cph,
    ScienceDomain::Csc,
    ScienceDomain::Env,
    ScienceDomain::Fus,
    ScienceDomain::Gen,
    ScienceDomain::Geo,
    ScienceDomain::Hep,
    ScienceDomain::Lgt,
    ScienceDomain::Lsc,
    ScienceDomain::Mat,
    ScienceDomain::Med,
    ScienceDomain::Mph,
    ScienceDomain::Nel,
    ScienceDomain::Nfi,
    ScienceDomain::Nfu,
    ScienceDomain::Nph,
    ScienceDomain::Nro,
    ScienceDomain::Nti,
    ScienceDomain::Phy,
    ScienceDomain::Pss,
    ScienceDomain::Stf,
    ScienceDomain::Syb,
    ScienceDomain::Tur,
    ScienceDomain::Ven,
];

impl ScienceDomain {
    /// The paper's three-letter domain id (`aph`, `cli`, ...).
    pub fn id(&self) -> &'static str {
        match self {
            ScienceDomain::Aph => "aph",
            ScienceDomain::Ard => "ard",
            ScienceDomain::Ast => "ast",
            ScienceDomain::Atm => "atm",
            ScienceDomain::Bif => "bif",
            ScienceDomain::Bio => "bio",
            ScienceDomain::Bip => "bip",
            ScienceDomain::Chm => "chm",
            ScienceDomain::Chp => "chp",
            ScienceDomain::Cli => "cli",
            ScienceDomain::Cmb => "cmb",
            ScienceDomain::Cph => "cph",
            ScienceDomain::Csc => "csc",
            ScienceDomain::Env => "env",
            ScienceDomain::Fus => "fus",
            ScienceDomain::Gen => "gen",
            ScienceDomain::Geo => "geo",
            ScienceDomain::Hep => "hep",
            ScienceDomain::Lgt => "lgt",
            ScienceDomain::Lsc => "lsc",
            ScienceDomain::Mat => "mat",
            ScienceDomain::Med => "med",
            ScienceDomain::Mph => "mph",
            ScienceDomain::Nel => "nel",
            ScienceDomain::Nfi => "nfi",
            ScienceDomain::Nfu => "nfu",
            ScienceDomain::Nph => "nph",
            ScienceDomain::Nro => "nro",
            ScienceDomain::Nti => "nti",
            ScienceDomain::Phy => "phy",
            ScienceDomain::Pss => "pss",
            ScienceDomain::Stf => "stf",
            ScienceDomain::Syb => "syb",
            ScienceDomain::Tur => "tur",
            ScienceDomain::Ven => "ven",
        }
    }

    /// Full domain name as listed in Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            ScienceDomain::Aph => "Accelerator Physics",
            ScienceDomain::Ard => "Aerodynamics",
            ScienceDomain::Ast => "Astrophysics",
            ScienceDomain::Atm => "Atmospheric Science",
            ScienceDomain::Bif => "Bioinformatics",
            ScienceDomain::Bio => "Biology",
            ScienceDomain::Bip => "Biophysics",
            ScienceDomain::Chm => "Chemistry",
            ScienceDomain::Chp => "Physical Chemistry",
            ScienceDomain::Cli => "Climate Science",
            ScienceDomain::Cmb => "Combustion",
            ScienceDomain::Cph => "Condensed Matter Physics",
            ScienceDomain::Csc => "Computer Science",
            ScienceDomain::Env => "Plasma Physics",
            ScienceDomain::Fus => "Fusion Energy",
            ScienceDomain::Gen => "General",
            ScienceDomain::Geo => "Geosciences",
            ScienceDomain::Hep => "High Energy Physics",
            ScienceDomain::Lgt => "Lattice Gauge Theory",
            ScienceDomain::Lsc => "Life Sciences",
            ScienceDomain::Mat => "Materials Science",
            ScienceDomain::Med => "Medical Science",
            ScienceDomain::Mph => "Molecular Physics",
            ScienceDomain::Nel => "Nanoelectronics",
            ScienceDomain::Nfi => "Nuclear Fission",
            ScienceDomain::Nfu => "Nuclear Fusion",
            ScienceDomain::Nph => "Nuclear Physics",
            ScienceDomain::Nro => "Neuroscience",
            ScienceDomain::Nti => "Nanoscience",
            ScienceDomain::Phy => "Physics",
            ScienceDomain::Pss => "Solar/Space Physics",
            ScienceDomain::Stf => "Staff",
            ScienceDomain::Syb => "Systems Biology",
            ScienceDomain::Tur => "Turbulence",
            ScienceDomain::Ven => "Vendor",
        }
    }

    /// Parses a three-letter id.
    pub fn from_id(id: &str) -> Option<ScienceDomain> {
        ALL_DOMAINS.iter().copied().find(|d| d.id() == id)
    }

    /// Dense index of this domain in [`ALL_DOMAINS`].
    pub fn index(&self) -> usize {
        ALL_DOMAINS
            .iter()
            .position(|d| d == self)
            .expect("every domain is in ALL_DOMAINS")
    }

    /// True for the non-science operational categories the paper sometimes
    /// excludes: Staff, General, and Vendor (§3 and §4.3.3).
    pub fn is_operational(&self) -> bool {
        matches!(
            self,
            ScienceDomain::Stf | ScienceDomain::Gen | ScienceDomain::Ven
        )
    }

    /// True if this domain counts as "computer science" in the Fig. 5(b)
    /// expert-vs-CS split (csc plus the operational categories, which are
    /// staffed by systems people).
    pub fn is_computing(&self) -> bool {
        matches!(self, ScienceDomain::Csc) || self.is_operational()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_35_domains() {
        assert_eq!(ALL_DOMAINS.len(), 35);
    }

    #[test]
    fn ids_are_unique_and_roundtrip() {
        let mut seen = std::collections::HashSet::new();
        for d in ALL_DOMAINS {
            assert!(seen.insert(d.id()), "duplicate id {}", d.id());
            assert_eq!(ScienceDomain::from_id(d.id()), Some(d));
            assert_eq!(d.id().len(), 3);
            assert_eq!(ALL_DOMAINS[d.index()], d);
        }
        assert_eq!(ScienceDomain::from_id("xyz"), None);
    }

    #[test]
    fn operational_categories() {
        let ops: Vec<&str> = ALL_DOMAINS
            .iter()
            .filter(|d| d.is_operational())
            .map(|d| d.id())
            .collect();
        assert_eq!(ops, vec!["gen", "stf", "ven"]);
        assert!(ScienceDomain::Csc.is_computing());
        assert!(!ScienceDomain::Cli.is_computing());
    }

    #[test]
    fn names_are_nonempty() {
        for d in ALL_DOMAINS {
            assert!(!d.name().is_empty());
        }
        assert_eq!(ScienceDomain::Env.name(), "Plasma Physics");
    }
}
