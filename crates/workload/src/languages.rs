//! Programming-language classification by file extension (§4.1.4).
//!
//! The paper counts files whose extensions belong to known programming
//! languages and compares the resulting popularity ranking against the
//! IEEE Spectrum list, highlighting that Fortran (IEEE rank 28) is 6th at
//! OLCF, and that Prolog/COBOL/Ada rank far higher than in industry. It
//! also notes the classification is extension-based and inherits that
//! method's quirks (e.g. `.m` counted as Matlab, `.pl` as Prolog) — we
//! reproduce the method, quirks included.

use serde::{Deserialize, Serialize};

/// A programming language with its IEEE Spectrum rank (Fig. 11's
/// parenthesized numbers; `None` for languages outside that list).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Language {
    /// Display name.
    pub name: &'static str,
    /// Rank in the IEEE Spectrum list referenced by the paper.
    pub ieee_rank: Option<u32>,
}

/// `(extension, language)` classification table.
///
/// Shell script is classified but typically *excluded* from rankings, as
/// in Table 1's "Prog. Lang." column ("we excluded shell scripts").
pub static LANGUAGE_EXTENSIONS: &[(&str, &str)] = &[
    ("c", "C"),
    ("h", "C"),
    ("java", "JAVA"),
    ("py", "Python"),
    ("cpp", "C++"),
    ("cc", "C++"),
    ("cxx", "C++"),
    ("hpp", "C++"),
    ("hh", "C++"),
    ("r", "R"),
    ("f", "Fortran"),
    ("f90", "Fortran"),
    ("f77", "Fortran"),
    ("for", "Fortran"),
    ("sh", "Shell"),
    ("bash", "Shell"),
    ("csh", "Shell"),
    ("pl", "Prolog"), // the paper's extension-method artifact, kept faithfully
    ("pro", "Prolog"),
    ("m", "Matlab"), // likewise ambiguous with Objective-C; Matlab at OLCF
    ("js", "Javascript"),
    ("php", "PHP"),
    ("rb", "Ruby"),
    ("go", "Go"),
    ("scala", "Scala"),
    ("swift", "Swift"),
    ("cbl", "COBOL"),
    ("cob", "COBOL"),
    ("adb", "Ada"),
    ("ads", "Ada"),
    ("jl", "Julia"),
    ("lua", "Lua"),
    ("pas", "Pascal"),
    ("lisp", "Lisp"),
    ("hs", "Haskell"),
    ("erl", "Erlang"),
    ("cu", "CUDA"),
    ("tcl", "Tcl"),
    ("cs", "C#"),
    ("d", "D"),
];

/// IEEE Spectrum ranks shown in Fig. 11's parentheses.
pub static IEEE_RANKS: &[(&str, u32)] = &[
    ("C", 1),
    ("JAVA", 2),
    ("Python", 3),
    ("C++", 4),
    ("R", 5),
    ("C#", 6),
    ("PHP", 7),
    ("Javascript", 8),
    ("Ruby", 9),
    ("Go", 10),
    ("Swift", 11),
    ("Matlab", 13),
    ("Scala", 15),
    ("Lua", 17),
    ("Fortran", 28),
    ("D", 22),
    ("Haskell", 26),
    ("Pascal", 30),
    ("Lisp", 32),
    ("Erlang", 34),
    ("Julia", 35),
    ("Prolog", 37),
    ("Ada", 40),
    ("COBOL", 41),
    ("Tcl", 43),
];

/// Classifies a file extension as a programming language; `None` for data
/// and unknown extensions.
pub fn language_of_extension(ext: &str) -> Option<&'static str> {
    // Case-sensitive lowercase match except Fortran's traditional
    // upper-case fixed-form extensions (.F, .F90).
    if ext == "F" || ext == "F90" || ext == "F77" {
        return Some("Fortran");
    }
    LANGUAGE_EXTENSIONS
        .iter()
        .find(|(e, _)| *e == ext)
        .map(|(_, l)| *l)
}

/// True for shell scripts, which Table 1's per-domain language column
/// excludes.
pub fn is_shell(language: &str) -> bool {
    language == "Shell"
}

/// The IEEE Spectrum rank for a language, if it is in the referenced list.
pub fn ieee_rank(language: &str) -> Option<u32> {
    IEEE_RANKS
        .iter()
        .find(|(l, _)| *l == language)
        .map(|(_, r)| *r)
}

/// The canonical extension the generator uses when emitting a source file
/// in `language`.
pub fn primary_extension(language: &str) -> Option<&'static str> {
    LANGUAGE_EXTENSIONS
        .iter()
        .find(|(_, l)| *l == language)
        .map(|(e, _)| *e)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_basics() {
        assert_eq!(language_of_extension("c"), Some("C"));
        assert_eq!(language_of_extension("h"), Some("C"));
        assert_eq!(language_of_extension("py"), Some("Python"));
        assert_eq!(language_of_extension("hpp"), Some("C++"));
        assert_eq!(language_of_extension("f90"), Some("Fortran"));
        assert_eq!(language_of_extension("F"), Some("Fortran"));
        assert_eq!(language_of_extension("m"), Some("Matlab"));
        assert_eq!(language_of_extension("pl"), Some("Prolog"));
        assert_eq!(language_of_extension("nc"), None);
        assert_eq!(language_of_extension("dat"), None);
        assert_eq!(language_of_extension(""), None);
    }

    #[test]
    fn shell_is_classified_but_flagged() {
        assert_eq!(language_of_extension("sh"), Some("Shell"));
        assert!(is_shell("Shell"));
        assert!(!is_shell("C"));
    }

    #[test]
    fn ieee_ranks_match_figure() {
        assert_eq!(ieee_rank("C"), Some(1));
        assert_eq!(ieee_rank("Fortran"), Some(28));
        assert_eq!(ieee_rank("Prolog"), Some(37));
        assert_eq!(ieee_rank("COBOL"), Some(41));
        assert_eq!(ieee_rank("Ada"), Some(40));
        assert_eq!(ieee_rank("Shell"), None);
    }

    #[test]
    fn every_profile_language_is_classifiable() {
        // Every language named in Table 1's Prog. Lang. column must be
        // producible by some extension, or the generator could never emit
        // the files that make that column true.
        for p in &crate::profiles::PROFILES {
            for lang in p.languages {
                assert!(
                    LANGUAGE_EXTENSIONS.iter().any(|(_, l)| *l == lang),
                    "no extension maps to {lang}"
                );
            }
        }
    }

    #[test]
    fn extension_table_has_no_duplicates() {
        let mut seen = std::collections::HashSet::new();
        for (e, _) in LANGUAGE_EXTENSIONS {
            assert!(seen.insert(*e), "duplicate extension {e}");
        }
    }

    /// An extension that maps to a language for each language, used by the
    /// generator to emit source files.
    #[test]
    fn primary_extension_exists_for_each_language() {
        let langs: std::collections::HashSet<&str> =
            LANGUAGE_EXTENSIONS.iter().map(|(_, l)| *l).collect();
        for lang in langs {
            assert!(
                crate::languages::primary_extension(lang).is_some(),
                "{lang}"
            );
        }
    }
}
