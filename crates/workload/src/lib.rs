//! # spider-workload
//!
//! The **behavioral population model** replacing the proprietary side of
//! the SC '17 Spider II study: 1,362 active users across 380 projects in
//! 35 science domains, and the per-domain activity patterns that produced
//! the published file-system trends.
//!
//! The paper's input data cannot be redistributed, so this crate is
//! calibrated to the paper's *published statistics* instead (Tables 1–2,
//! Figs. 5–7): every domain carries its real project count, entry volume,
//! directory-depth range, extension mix, programming languages, stripe
//! tuning level, burstiness targets, and network/collaboration structure,
//! transcribed in [`profiles::PROFILES`]. Generators in [`population`] and
//! [`behavior`] turn those numbers into a concrete user/project population
//! and per-project weekly activity parameters; the `spider-sim` crate
//! executes them against the `spider-fsmeta` substrate.
//!
//! Everything is deterministic under a seed — the same configuration
//! always produces byte-identical snapshots downstream.

#![warn(missing_docs)]

pub mod behavior;
pub mod domain;
pub mod languages;
pub mod orgs;
pub mod population;
pub mod profiles;
pub mod rng;

pub use behavior::{ExtensionMix, NameKind, ProjectBehavior, StripeTuning, OBSERVATION_DAYS};
pub use domain::{ScienceDomain, ALL_DOMAINS};
pub use orgs::Organization;
pub use population::{Population, PopulationConfig, Project, ProjectId, User, UserId};
pub use profiles::{profile, DomainProfile, PROFILES};
