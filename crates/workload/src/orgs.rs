//! User organization types (Fig. 5a).
//!
//! "More than 50% of the users belong to national laboratories and other
//! government research facilities ... academic organizations, about 24%,
//! followed by industry users accounting for about 19%", with the rest
//! mostly international research institutions.

use serde::{Deserialize, Serialize};

/// The organization categories of Fig. 5(a).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Organization {
    /// U.S. national laboratories and government research facilities.
    Government,
    /// Universities and academic institutes.
    Academia,
    /// Industry users.
    Industry,
    /// Mostly international research institutions.
    Other,
}

/// All categories with their Fig. 5(a) population shares (fractions
/// summing to 1).
pub const ORG_MIX: [(Organization, f64); 4] = [
    (Organization::Government, 0.52),
    (Organization::Academia, 0.24),
    (Organization::Industry, 0.19),
    (Organization::Other, 0.05),
];

impl Organization {
    /// Display label.
    pub fn label(&self) -> &'static str {
        match self {
            Organization::Government => "Government",
            Organization::Academia => "Academia",
            Organization::Industry => "Industry",
            Organization::Other => "Other",
        }
    }

    /// Samples an organization from the Fig. 5(a) mix given a uniform
    /// `[0, 1)` draw.
    pub fn sample(u: f64) -> Organization {
        let mut acc = 0.0;
        for &(org, share) in &ORG_MIX {
            acc += share;
            if u < acc {
                return org;
            }
        }
        Organization::Other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix_sums_to_one() {
        let total: f64 = ORG_MIX.iter().map(|m| m.1).sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_boundaries() {
        assert_eq!(Organization::sample(0.0), Organization::Government);
        assert_eq!(Organization::sample(0.519), Organization::Government);
        assert_eq!(Organization::sample(0.53), Organization::Academia);
        assert_eq!(Organization::sample(0.80), Organization::Industry);
        assert_eq!(Organization::sample(0.96), Organization::Other);
        assert_eq!(Organization::sample(1.0), Organization::Other);
    }

    #[test]
    fn sampling_reproduces_mix() {
        let n = 100_000;
        let mut counts = std::collections::HashMap::new();
        for i in 0..n {
            let u = i as f64 / n as f64;
            *counts.entry(Organization::sample(u)).or_insert(0u32) += 1;
        }
        for &(org, share) in &ORG_MIX {
            let got = counts[&org] as f64 / n as f64;
            assert!((got - share).abs() < 0.01, "{org:?}: {got} vs {share}");
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Organization::Government.label(), "Government");
        assert_eq!(Organization::Other.label(), "Other");
    }
}
