//! The synthetic user/project population.
//!
//! The generator is *project-centric*: it instantiates every domain's
//! project allocations (Table 1 counts), then fills their teams from a
//! growing user pool. The membership process is engineered to reproduce
//! the paper's §4.1.1 and §4.3 structure:
//!
//! * **team sizes** are log-normal around each domain's Fig. 6(c) median —
//!   globally, ~40% of projects get < 3 users while ~20% get > 10;
//! * **giant component by construction** — each domain flags
//!   `network_pct`% of its projects as *networked*; every networked
//!   project after the first seeds its team with an existing
//!   networked-pool user, so the networked projects form one connected
//!   component holding ~72% of all vertices, while the remaining projects
//!   form the fringe of small components (Table 3);
//! * **preferential attachment** when reusing users produces the
//!   power-law degree distribution of Fig. 18(b), including the 2% of
//!   users with 8+ projects;
//! * **collaboration intensity** — domains with high `Collab %` (cli,
//!   csc, nfi) draw reused members preferentially from their own domain,
//!   which is what makes their user pairs share many projects (Fig. 20)
//!   and their projects reach the largest component together (Fig. 19).

use crate::domain::{ScienceDomain, ALL_DOMAINS};
use crate::orgs::Organization;
use crate::profiles::{profile, DomainProfile};
use crate::rng::{log_normal, weighted_choice, ZipfSampler};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// Dense user index within a [`Population`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UserId(pub u32);

/// Dense project index within a [`Population`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ProjectId(pub u32);

/// A synthetic user.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct User {
    /// Dense index.
    pub id: UserId,
    /// POSIX uid as it appears in snapshots.
    pub uid: u32,
    /// Organization type (Fig. 5a).
    pub org: Organization,
    /// The domain of the user's first project (Fig. 5b grouping).
    pub home_domain: ScienceDomain,
}

/// A synthetic project allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Project {
    /// Dense index.
    pub id: ProjectId,
    /// POSIX gid as it appears in snapshots (projects are identified by
    /// GID at OLCF).
    pub gid: u32,
    /// Allocation name, `<domain id><serial>` (e.g. `cli003`).
    pub name: String,
    /// Science domain.
    pub domain: ScienceDomain,
    /// Member users.
    pub members: Vec<UserId>,
    /// True if this project was placed in the giant networked component.
    pub networked: bool,
    /// This project's share of its domain's 500-day entry volume, in
    /// paper-scale entries (thousands). Domain volume is split across
    /// projects by a Zipf law, giving each domain a dominant allocation
    /// (the paper's 372 M-file chp project).
    pub volume_k: f64,
}

/// Configuration for population synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopulationConfig {
    /// RNG seed; equal seeds give identical populations.
    pub seed: u64,
    /// Scales per-domain project counts (1.0 = the paper's 380 projects).
    /// Every domain keeps at least one project.
    pub project_scale: f64,
    /// Probability that a networked team slot reuses an existing
    /// networked user (vs. minting a new one). Tuned so the default
    /// population lands near the paper's 1,362 active users.
    pub reuse_probability: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            seed: 0x5f1d_e001,
            project_scale: 1.0,
            reuse_probability: 0.30,
        }
    }
}

/// The generated population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Population {
    /// All users, indexed by [`UserId`].
    pub users: Vec<User>,
    /// All projects, indexed by [`ProjectId`].
    pub projects: Vec<Project>,
}

/// POSIX uid of the first synthetic user.
pub const UID_BASE: u32 = 10_000;
/// POSIX gid of the first synthetic project.
pub const GID_BASE: u32 = 2_000;

impl Population {
    /// Generates a population from the calibration profiles.
    pub fn generate(config: &PopulationConfig) -> Population {
        Generator::new(config).run()
    }

    /// Number of users.
    pub fn user_count(&self) -> usize {
        self.users.len()
    }

    /// Number of projects.
    pub fn project_count(&self) -> usize {
        self.projects.len()
    }

    /// The user owning a POSIX uid, if any.
    pub fn user_by_uid(&self, uid: u32) -> Option<&User> {
        let idx = uid.checked_sub(UID_BASE)? as usize;
        self.users.get(idx)
    }

    /// The project owning a POSIX gid, if any.
    pub fn project_by_gid(&self, gid: u32) -> Option<&Project> {
        let idx = gid.checked_sub(GID_BASE)? as usize;
        self.projects.get(idx)
    }

    /// Projects of one domain.
    pub fn domain_projects(&self, domain: ScienceDomain) -> impl Iterator<Item = &Project> {
        self.projects.iter().filter(move |p| p.domain == domain)
    }

    /// Number of distinct projects each user belongs to, indexed by user.
    pub fn projects_per_user(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.users.len()];
        for p in &self.projects {
            for &UserId(u) in &p.members {
                counts[u as usize] += 1;
            }
        }
        counts
    }
}

struct Generator<'a> {
    config: &'a PopulationConfig,
    rng: StdRng,
    users: Vec<User>,
    projects: Vec<Project>,
    /// Degree (membership count) per user, for preferential attachment.
    degree: Vec<f64>,
    /// Users eligible for networked reuse (in giant-component projects).
    networked_users: Vec<UserId>,
    /// Per-domain membership lists for collaboration-heavy domains.
    domain_users: Vec<Vec<UserId>>,
}

impl<'a> Generator<'a> {
    fn new(config: &'a PopulationConfig) -> Self {
        Generator {
            config,
            rng: StdRng::seed_from_u64(config.seed),
            users: Vec::new(),
            projects: Vec::new(),
            degree: Vec::new(),
            networked_users: Vec::new(),
            domain_users: vec![Vec::new(); ALL_DOMAINS.len()],
        }
    }

    fn run(mut self) -> Population {
        for domain in ALL_DOMAINS {
            self.generate_domain(profile(domain));
        }
        self.affiliate_pass();
        Population {
            users: self.users,
            projects: self.projects,
        }
    }

    /// Second-membership pass: most users hold more than one allocation
    /// (Fig. 6a: >60% of users participate in more than one project --
    /// e.g. a large INCITE allocation plus a director-discretionary one).
    ///
    /// Networked single-project users join a second *networked* project
    /// (same-domain preferred), thickening the giant component without
    /// changing its membership. Fringe users occasionally join a second
    /// fringe project of their own domain, merging two small components --
    /// the size-4..7 components of Table 3.
    fn affiliate_pass(&mut self) {
        let networked_projects: Vec<usize> = self
            .projects
            .iter()
            .enumerate()
            .filter(|(_, p)| p.networked)
            .map(|(i, _)| i)
            .collect();
        if networked_projects.is_empty() {
            return;
        }
        let mut project_count = vec![0u32; self.users.len()];
        let mut sole_project = vec![usize::MAX; self.users.len()];
        for (i, p) in self.projects.iter().enumerate() {
            for &UserId(u) in &p.members {
                project_count[u as usize] += 1;
                sole_project[u as usize] = i;
            }
        }

        for u in 0..self.users.len() {
            if project_count[u] != 1 {
                continue;
            }
            let user = UserId(u as u32);
            let home = sole_project[u];
            let home_networked = self.projects[home].networked;
            let home_domain = self.projects[home].domain;
            if home_networked {
                if self.rng.random_range(0.0..1.0) < 0.60 {
                    let same_domain: Vec<usize> = networked_projects
                        .iter()
                        .copied()
                        .filter(|&i| i != home && self.projects[i].domain == home_domain)
                        .collect();
                    let pool: Vec<usize> =
                        if !same_domain.is_empty() && self.rng.random_range(0.0..1.0) < 0.5 {
                            same_domain
                        } else {
                            networked_projects
                                .iter()
                                .copied()
                                .filter(|&i| i != home)
                                .collect()
                        };
                    if !pool.is_empty() {
                        let target = pool[self.rng.random_range(0..pool.len())];
                        if !self.projects[target].members.contains(&user) {
                            let domain = self.projects[target].domain;
                            self.projects[target].members.push(user);
                            self.note_membership(user, domain, true);
                        }
                    }
                }
            } else if self.rng.random_range(0.0..1.0) < 0.20 {
                let fringe_same: Vec<usize> = self
                    .projects
                    .iter()
                    .enumerate()
                    .filter(|(i, p)| !p.networked && *i != home && p.domain == home_domain)
                    .map(|(i, _)| i)
                    .collect();
                if !fringe_same.is_empty() {
                    let target = fringe_same[self.rng.random_range(0..fringe_same.len())];
                    if !self.projects[target].members.contains(&user) {
                        self.projects[target].members.push(user);
                        self.degree[u] += 1.0;
                    }
                }
            }
        }
    }

    fn generate_domain(&mut self, prof: &DomainProfile) {
        let count = ((prof.projects as f64 * self.config.project_scale).round() as u32).max(1);
        let networked_count = ((count as f64) * prof.network_pct / 100.0).round() as u32;
        // Zipf split of the domain's volume across its projects: the
        // first allocation dominates (the paper's 505 M / 372 M outliers).
        let zipf_weights: Vec<f64> = (1..=count as usize)
            .map(|k| (k as f64).powf(-1.1))
            .collect();
        let weight_total: f64 = zipf_weights.iter().sum();

        for serial in 0..count {
            let networked = serial < networked_count;
            let team_size = self.draw_team_size(prof, networked);
            let project_id = ProjectId(self.projects.len() as u32);
            let gid = GID_BASE + project_id.0;
            let name = format!("{}{:03}", prof.domain.id(), serial + 1);
            let volume_k = prof.entries_k * zipf_weights[serial as usize] / weight_total;

            let mut members = Vec::with_capacity(team_size as usize);
            for slot in 0..team_size {
                let user = self.fill_slot(prof, networked, slot, &members);
                members.push(user);
            }
            for &u in &members {
                self.note_membership(u, prof.domain, networked);
            }
            self.projects.push(Project {
                id: project_id,
                gid,
                name,
                domain: prof.domain,
                members,
                networked,
                volume_k,
            });
        }
    }

    fn draw_team_size(&mut self, prof: &DomainProfile, networked: bool) -> u32 {
        if !networked {
            // Fringe projects are small, mostly one- or two-person efforts:
            // Table 3's component census has 94 of 160 components at size
            // 2 (one user + one project).
            let size = log_normal(&mut self.rng, 1.3, 0.55);
            return (size.round() as u32).clamp(1, 4);
        }
        let size = log_normal(&mut self.rng, prof.team_median as f64, 0.75);
        (size.round() as u32).clamp(1, 60)
    }

    /// Chooses the user for one team slot.
    fn fill_slot(
        &mut self,
        prof: &DomainProfile,
        networked: bool,
        slot: u32,
        members: &[UserId],
    ) -> UserId {
        // Connectivity guarantee: the first slot of every networked
        // project (once the pool exists) is an existing networked user.
        if networked && slot == 0 && !self.networked_users.is_empty() {
            if let Some(u) = self.pick_networked(prof, members) {
                return u;
            }
        }
        let reuse = networked
            && !self.networked_users.is_empty()
            && self.rng.random_range(0.0..1.0) < self.config.reuse_probability;
        if reuse {
            if let Some(u) = self.pick_networked(prof, members) {
                return u;
            }
        }
        self.mint_user(prof.domain)
    }

    /// Preferential-attachment pick from the networked pool, biased into
    /// the domain's own users for collaboration-heavy domains.
    fn pick_networked(&mut self, prof: &DomainProfile, members: &[UserId]) -> Option<UserId> {
        let domain_bias = (prof.collab_pct / 50.0).min(0.9);
        let from_domain = self.rng.random_range(0.0..1.0) < domain_bias;
        let pool: &[UserId] = if from_domain && !self.domain_users[prof.domain.index()].is_empty() {
            &self.domain_users[prof.domain.index()]
        } else {
            &self.networked_users
        };
        // Sub-linear preferential attachment: weight by sqrt(degree) + 1,
        // which keeps a heavy tail of hub users (the 2% with 8+ projects)
        // without starving the long tail — most reused users should still
        // be low-degree, giving the >60% multi-project majority of
        // Fig. 6(a). Existing members are zeroed out.
        let weights: Vec<f64> = pool
            .iter()
            .map(|u| {
                if members.contains(u) {
                    0.0
                } else {
                    self.degree[u.0 as usize] * 0.6 + 1.0
                }
            })
            .collect();
        let idx = weighted_choice(&mut self.rng, &weights)?;
        Some(pool[idx])
    }

    fn mint_user(&mut self, domain: ScienceDomain) -> UserId {
        let id = UserId(self.users.len() as u32);
        let org = Organization::sample(self.rng.random_range(0.0..1.0));
        self.users.push(User {
            id,
            uid: UID_BASE + id.0,
            org,
            home_domain: domain,
        });
        self.degree.push(0.0);
        id
    }

    fn note_membership(&mut self, user: UserId, domain: ScienceDomain, networked: bool) {
        self.degree[user.0 as usize] += 1.0;
        if networked {
            // Pools are unique user lists; attachment bias comes from the
            // degree weights in `pick_networked`, not list multiplicity
            // (multiplicity would square the bias and starve the long
            // tail, collapsing the multi-project majority of Fig. 6a).
            if !self.networked_users.contains(&user) {
                self.networked_users.push(user);
            }
            let dom = &mut self.domain_users[domain.index()];
            if !dom.contains(&user) {
                dom.push(user);
            }
        }
    }
}

// Keep the Zipf import alive for the behavior module's re-export
// convenience (the generator itself uses explicit weights above).
#[doc(hidden)]
pub type _ZipfAlias = ZipfSampler;

#[cfg(test)]
mod tests {
    use super::*;

    fn default_pop() -> Population {
        Population::generate(&PopulationConfig::default())
    }

    #[test]
    fn project_counts_match_profiles() {
        let pop = default_pop();
        assert_eq!(pop.project_count(), 380);
        for d in ALL_DOMAINS {
            let got = pop.domain_projects(d).count() as u32;
            assert_eq!(got, profile(d).projects, "{}", d.id());
        }
    }

    #[test]
    fn user_count_near_paper() {
        let pop = default_pop();
        let n = pop.user_count();
        assert!(
            (1000..=1800).contains(&n),
            "user count {n} far from the paper's 1362"
        );
    }

    #[test]
    fn ids_and_posix_ids_are_dense() {
        let pop = default_pop();
        for (i, u) in pop.users.iter().enumerate() {
            assert_eq!(u.id.0 as usize, i);
            assert_eq!(u.uid, UID_BASE + i as u32);
            assert_eq!(pop.user_by_uid(u.uid).unwrap().id, u.id);
        }
        for (i, p) in pop.projects.iter().enumerate() {
            assert_eq!(p.id.0 as usize, i);
            assert_eq!(p.gid, GID_BASE + i as u32);
            assert_eq!(pop.project_by_gid(p.gid).unwrap().id, p.id);
        }
        assert!(pop.user_by_uid(UID_BASE - 1).is_none());
        assert!(pop.project_by_gid(GID_BASE + 10_000).is_none());
    }

    #[test]
    fn teams_are_nonempty_and_deduplicated() {
        let pop = default_pop();
        for p in &pop.projects {
            assert!(!p.members.is_empty(), "{}", p.name);
            let mut m = p.members.clone();
            m.sort();
            m.dedup();
            assert_eq!(m.len(), p.members.len(), "{} has duplicate members", p.name);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Population::generate(&PopulationConfig::default());
        let b = Population::generate(&PopulationConfig::default());
        assert_eq!(a, b);
        let c = Population::generate(&PopulationConfig {
            seed: 99,
            ..PopulationConfig::default()
        });
        assert_ne!(a, c);
    }

    #[test]
    fn most_users_multi_project_some_heavy() {
        // Fig. 6(a): >60% of users in more than one project... our
        // generator reproduces the heavy tail exactly and the multi-
        // project majority approximately; assert the qualitative shape.
        let pop = default_pop();
        let counts = pop.projects_per_user();
        let multi = counts.iter().filter(|&&c| c > 1).count() as f64;
        let frac_multi = multi / counts.len() as f64;
        assert!(frac_multi > 0.25, "multi-project fraction {frac_multi}");
        let max = counts.iter().copied().max().unwrap();
        assert!(max >= 6, "max projects per user {max}");
        assert!(counts.iter().all(|&c| c >= 1));
    }

    #[test]
    fn team_size_distribution_shape() {
        // Fig. 6(b): ~40% of projects < 3 users, ~20% > 10 users.
        let pop = default_pop();
        let sizes: Vec<usize> = pop.projects.iter().map(|p| p.members.len()).collect();
        let small = sizes.iter().filter(|&&s| s < 3).count() as f64 / sizes.len() as f64;
        let large = sizes.iter().filter(|&&s| s > 10).count() as f64 / sizes.len() as f64;
        assert!((0.2..=0.6).contains(&small), "small fraction {small}");
        assert!((0.05..=0.4).contains(&large), "large fraction {large}");
    }

    #[test]
    fn collaboration_domains_have_larger_teams() {
        let pop = default_pop();
        let median_team = |d: ScienceDomain| {
            let mut sizes: Vec<usize> = pop.domain_projects(d).map(|p| p.members.len()).collect();
            sizes.sort_unstable();
            sizes[sizes.len() / 2]
        };
        assert!(median_team(ScienceDomain::Cli) > median_team(ScienceDomain::Aph));
        assert!(median_team(ScienceDomain::Stf) >= median_team(ScienceDomain::Med));
    }

    #[test]
    fn networked_flags_follow_profile_probability() {
        let pop = default_pop();
        for d in [ScienceDomain::Chp, ScienceDomain::Env, ScienceDomain::Nro] {
            assert!(
                pop.domain_projects(d).all(|p| p.networked),
                "{} should be fully networked",
                d.id()
            );
        }
        for d in [ScienceDomain::Aph, ScienceDomain::Med, ScienceDomain::Pss] {
            assert!(
                pop.domain_projects(d).all(|p| !p.networked),
                "{} should be fully isolated",
                d.id()
            );
        }
        let cli_networked = pop
            .domain_projects(ScienceDomain::Cli)
            .filter(|p| p.networked)
            .count();
        assert_eq!(cli_networked, 16); // 21 * 0.7619 = 16
    }

    #[test]
    fn volume_split_is_zipf_dominated() {
        let pop = default_pop();
        // chp has 2 projects and 379,867K entries: the first should take
        // roughly the 1/(1+2^-1.1) ~ 68% share, mirroring the paper's
        // 372M-file second-place project.
        let chp: Vec<&Project> = pop.domain_projects(ScienceDomain::Chp).collect();
        assert_eq!(chp.len(), 2);
        assert!(chp[0].volume_k > chp[1].volume_k);
        let total: f64 = chp.iter().map(|p| p.volume_k).sum();
        assert!((total - 379_867.0).abs() / 379_867.0 < 1e-9);
        assert!(chp[0].volume_k / total > 0.6);
    }

    #[test]
    fn scaled_down_population() {
        let pop = Population::generate(&PopulationConfig {
            project_scale: 0.1,
            ..PopulationConfig::default()
        });
        // Every domain keeps >= 1 project.
        for d in ALL_DOMAINS {
            assert!(pop.domain_projects(d).count() >= 1, "{}", d.id());
        }
        assert!(pop.project_count() < 100);
        assert!(pop.user_count() < 700);
    }

    #[test]
    fn org_mix_roughly_matches_fig5() {
        let pop = default_pop();
        let gov = pop
            .users
            .iter()
            .filter(|u| u.org == Organization::Government)
            .count() as f64
            / pop.user_count() as f64;
        assert!((0.42..=0.62).contains(&gov), "government share {gov}");
    }
}
