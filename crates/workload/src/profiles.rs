//! Per-domain calibration profiles, transcribed from the paper.
//!
//! Each [`DomainProfile`] carries the published per-domain statistics the
//! generator is calibrated against:
//!
//! * Table 1 — project count, entry volume (in thousands, over 500 days),
//!   directory depth `[median, max]`, top extension, top-2 programming
//!   languages, `# OST` level, write/read `c_v`, largest-component
//!   probability (`Network %`), and pairwise collaboration share
//!   (`Collab %`);
//! * Table 2 — the top-3 file extensions with their popularity;
//! * Fig. 6(c) — approximate median team size per domain;
//! * Fig. 7(b) — approximate directory fraction of entries.
//!
//! Missing `c_v` entries (`-` in Table 1: atm, pss write, syb) are `None`;
//! those domains fall below the paper's ≥ 100-files-per-week analysis
//! threshold, and the generator gives them correspondingly sparse activity.

use crate::domain::ScienceDomain;
#[cfg(test)]
use crate::domain::ALL_DOMAINS;

/// Calibration data for one science domain.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainProfile {
    /// The domain.
    pub domain: ScienceDomain,
    /// Number of project allocations (Table 1).
    pub projects: u32,
    /// Unique entries over 500 days, in thousands (Table 1 `# Entries (K)`).
    pub entries_k: f64,
    /// Median directory depth (Table 1 `Dir. Depth` first element).
    pub depth_median: u16,
    /// Maximum directory depth (Table 1 `Dir. Depth` second element).
    pub depth_max: u16,
    /// Top-3 file extensions with popularity percentages (Table 2).
    pub extensions: &'static [(&'static str, f64)],
    /// Top-2 programming languages (Table 1 `Prog. Lang.`).
    pub languages: [&'static str; 2],
    /// The Table 1 `# OST` level — 4 means the domain leaves striping at
    /// the Lustre default; larger values indicate active tuning.
    pub ost_level: u32,
    /// Target coefficient of variation of new-file `mtime` offsets
    /// (Table 1 `Write (c_v)`); `None` where the paper reports `-`.
    pub write_cv: Option<f64>,
    /// Target `c_v` of readonly-file `atime` offsets (Table 1 `Read (c_v)`).
    pub read_cv: Option<f64>,
    /// Probability (0-100) of a project appearing in the largest connected
    /// component (Table 1 `Network (%)`).
    pub network_pct: f64,
    /// Percentage of collaborating user pairs sharing a project in this
    /// domain (Table 1 `Collab. (%)`, Fig. 20).
    pub collab_pct: f64,
    /// Approximate median users per project (Fig. 6c).
    pub team_median: u32,
    /// Approximate fraction of entries that are directories (Fig. 7b;
    /// ~0.15 on average, 0.90 for atm, 0.67 for hep).
    pub dir_fraction: f64,
}

macro_rules! profile {
    ($dom:ident, $projects:expr, $entries_k:expr, [$dmed:expr, $dmax:expr],
     [$(($ext:expr, $pct:expr)),+], [$l1:expr, $l2:expr], $ost:expr,
     $wcv:expr, $rcv:expr, $net:expr, $collab:expr, $team:expr, $dirs:expr) => {
        DomainProfile {
            domain: ScienceDomain::$dom,
            projects: $projects,
            entries_k: $entries_k,
            depth_median: $dmed,
            depth_max: $dmax,
            extensions: &[$(($ext, $pct)),+],
            languages: [$l1, $l2],
            ost_level: $ost,
            write_cv: $wcv,
            read_cv: $rcv,
            network_pct: $net,
            collab_pct: $collab,
            team_median: $team,
            dir_fraction: $dirs,
        }
    };
}

/// The full calibration table, in Table 1 order.
pub static PROFILES: [DomainProfile; 35] = [
    profile!(
        Aph,
        4,
        3_367.0,
        [10, 22],
        [("h5", 1.3), ("png", 1.1), ("py", 0.7)],
        ["Python", "C"],
        4,
        Some(0.052),
        Some(0.001),
        0.00,
        0.02,
        2,
        0.15
    ),
    profile!(
        Ard,
        16,
        39_443.0,
        [10, 24],
        [("png", 11.0), ("gz", 8.3), ("dat", 4.2)],
        ["Python", "C"],
        4,
        Some(0.209),
        Some(0.002),
        43.75,
        0.60,
        3,
        0.15
    ),
    profile!(
        Ast,
        15,
        75_365.0,
        [9, 24],
        [("bin", 3.5), ("txt", 2.0), ("ascii", 1.8)],
        ["Python", "C"],
        122,
        Some(0.247),
        Some(0.002),
        20.00,
        1.95,
        3,
        0.12
    ),
    profile!(
        Atm,
        4,
        4_959.0,
        [15, 18],
        [("png", 8.4), ("o", 8.3), ("svn-base", 6.4)],
        ["Fortran", "C"],
        4,
        None,
        None,
        50.00,
        0.24,
        2,
        0.90
    ),
    profile!(
        Bif,
        5,
        243_339.0,
        [9, 23],
        [("fasta", 41.3), ("fa", 23.1), ("sif", 9.2)],
        ["Prolog", "Matlab"],
        4,
        Some(0.295),
        Some(0.002),
        40.00,
        0.56,
        3,
        0.08
    ),
    profile!(
        Bio,
        3,
        62_009.0,
        [10, 18],
        [("pdbqt", 97.6), ("coor", 0.2), ("xsc", 0.2)],
        ["C++", "C"],
        4,
        Some(0.104),
        Some(0.001),
        66.67,
        0.10,
        3,
        0.02
    ),
    profile!(
        Bip,
        37,
        595_564.0,
        [11, 67],
        [("bz2", 54.8), ("xyz", 23.3), ("domtab", 5.4)],
        ["Python", "C"],
        4,
        Some(0.415),
        Some(0.003),
        40.54,
        2.24,
        4,
        0.08
    ),
    profile!(
        Chm,
        14,
        37_272.0,
        [8, 17],
        [("xvg", 21.8), ("txt", 5.7), ("label", 5.5)],
        ["C", "Fortran"],
        4,
        Some(0.262),
        Some(0.001),
        50.00,
        0.25,
        3,
        0.15
    ),
    profile!(
        Chp,
        2,
        379_867.0,
        [8, 21],
        [("xyz", 63.4), ("GraphGeod", 16.6), ("Graph", 16.5)],
        ["C", "Python"],
        4,
        Some(0.397),
        Some(0.003),
        100.00,
        2.09,
        11,
        0.05
    ),
    profile!(
        Cli,
        21,
        211_876.0,
        [11, 50],
        [("nc", 40.3), ("mat", 19.3), ("txt", 3.6)],
        ["Matlab", "C"],
        4,
        Some(0.421),
        Some(0.003),
        76.19,
        45.80,
        11,
        0.12
    ),
    profile!(
        Cmb,
        24,
        254_813.0,
        [11, 27],
        [("png", 4.0), ("h5", 2.0), ("gz", 1.6)],
        ["C", "C++"],
        5,
        Some(0.304),
        Some(0.003),
        66.67,
        7.91,
        6,
        0.12
    ),
    profile!(
        Cph,
        13,
        26_488.0,
        [10, 30],
        [("dat", 10.2), ("h5", 4.9), ("gz", 4.0)],
        ["C", "C++"],
        4,
        Some(0.366),
        Some(0.002),
        46.15,
        2.22,
        3,
        0.15
    ),
    profile!(
        Csc,
        62,
        445_189.0,
        [15, 40],
        [("h", 10.3), ("py", 7.8), ("txt", 4.9)],
        ["C", "Python"],
        33,
        Some(0.267),
        Some(0.003),
        61.29,
        38.54,
        4,
        0.30
    ),
    profile!(
        Env,
        1,
        26_389.0,
        [11, 24],
        [("gz", 2.1), ("bp", 0.8), ("def", 0.8)],
        ["Fortran", "C"],
        2,
        Some(0.511),
        Some(0.003),
        100.00,
        1.96,
        12,
        0.15
    ),
    profile!(
        Fus,
        16,
        92_844.0,
        [8, 25],
        [("psc", 13.8), ("gda", 1.0), ("hpp", 0.5)],
        ["C++", "C"],
        13,
        Some(0.346),
        Some(0.003),
        62.50,
        3.70,
        5,
        0.12
    ),
    profile!(
        Gen,
        4,
        833.0,
        [10, 432],
        [("data", 40.4), ("index", 40.2), ("F", 9.5)],
        ["Fortran", "C"],
        4,
        Some(0.262),
        Some(0.004),
        25.00,
        0.06,
        2,
        0.25
    ),
    profile!(
        Geo,
        12,
        308_767.0,
        [9, 21],
        [("sac", 43.0), ("mseed", 14.3), ("xml", 11.9)],
        ["C", "Fortran"],
        29,
        Some(0.342),
        Some(0.002),
        50.00,
        2.44,
        4,
        0.10
    ),
    profile!(
        Hep,
        3,
        2_181.0,
        [14, 22],
        [("0", 3.1), ("svn-base", 1.9), ("py", 1.0)],
        ["Python", "C"],
        4,
        Some(0.343),
        Some(0.003),
        33.33,
        0.45,
        2,
        0.67
    ),
    profile!(
        Lgt,
        3,
        16_710.0,
        [10, 20],
        [("dat", 24.8), ("vml", 11.1), ("actual", 9.4)],
        ["C", "C++"],
        4,
        Some(0.495),
        Some(0.003),
        33.33,
        0.31,
        3,
        0.15
    ),
    profile!(
        Lsc,
        4,
        30_351.0,
        [8, 24],
        [("map", 43.7), ("gpf", 14.8), ("dpf", 8.5)],
        ["C", "C++"],
        4,
        Some(0.196),
        Some(0.001),
        25.00,
        0.30,
        3,
        0.12
    ),
    profile!(
        Mat,
        34,
        202_809.0,
        [16, 29],
        [("dat", 44.2), ("d", 15.9), ("txt", 14.9)],
        ["Fortran", "Prolog"],
        4,
        Some(0.339),
        Some(0.003),
        58.82,
        5.45,
        4,
        0.15
    ),
    profile!(
        Med,
        3,
        538.0,
        [7, 18],
        [("txt", 69.4), ("py", 3.2), ("dat", 2.9)],
        ["Python", "C"],
        4,
        Some(0.004),
        Some(0.000),
        0.00,
        0.00,
        2,
        0.15
    ),
    profile!(
        Mph,
        4,
        2_267.0,
        [5, 15],
        [("out", 17.6), ("vtr", 17.4), ("gen", 13.6)],
        ["Fortran", "C++"],
        4,
        Some(0.404),
        Some(0.002),
        50.00,
        0.22,
        2,
        0.15
    ),
    profile!(
        Nel,
        4,
        808.0,
        [11, 17],
        [("dat", 1.9), ("bin", 1.8), ("o", 1.5)],
        ["Fortran", "C++"],
        4,
        Some(0.462),
        Some(0.003),
        50.00,
        0.18,
        2,
        0.15
    ),
    profile!(
        Nfi,
        9,
        22_158.0,
        [11, 26],
        [("hpp", 8.0), ("cpp", 8.0), ("h", 6.3)],
        ["C++", "C"],
        4,
        Some(0.338),
        Some(0.002),
        77.78,
        14.95,
        11,
        0.20
    ),
    profile!(
        Nfu,
        2,
        301.0,
        [11, 14],
        [("m", 3.9), ("1", 0.7), ("inp", 0.6)],
        ["Matlab", "C"],
        4,
        Some(0.221),
        Some(0.001),
        100.00,
        0.02,
        2,
        0.15
    ),
    profile!(
        Nph,
        14,
        286_523.0,
        [7, 23],
        [("bb", 79.1), ("xml", 1.8), ("vml", 1.6)],
        ["C", "C++"],
        13,
        Some(0.385),
        Some(0.003),
        92.86,
        2.65,
        5,
        0.05
    ),
    profile!(
        Nro,
        1,
        10_935.0,
        [9, 19],
        [("txt", 53.7), ("swc", 19.6), ("log", 15.4)],
        ["Matlab", "C"],
        4,
        Some(0.361),
        Some(0.003),
        100.00,
        0.11,
        3,
        0.15
    ),
    profile!(
        Nti,
        6,
        3_359.0,
        [11, 18],
        [("cif", 3.5), ("POSCAR", 2.3), ("svn-base", 1.9)],
        ["Fortran", "C"],
        4,
        Some(0.335),
        Some(0.002),
        16.67,
        1.09,
        2,
        0.15
    ),
    profile!(
        Phy,
        9,
        8_155.0,
        [8, 20],
        [("rst", 32.6), ("jld", 18.2), ("txt", 13.5)],
        ["C++", "Fortran"],
        5,
        Some(0.333),
        Some(0.002),
        55.56,
        0.53,
        3,
        0.15
    ),
    profile!(
        Pss,
        1,
        0.09,
        [3, 4],
        [("nc", 45.3), ("m", 44.1), ("tar", 6.5)],
        ["Matlab", "Prolog"],
        4,
        None,
        Some(0.000),
        0.00,
        0.00,
        2,
        0.15
    ),
    profile!(
        Stf,
        9,
        631_468.0,
        [12, 2030],
        [("log", 10.3), ("inp", 4.3), ("pn", 3.9)],
        ["Matlab", "C++"],
        7,
        Some(0.249),
        Some(0.002),
        77.78,
        22.61,
        18,
        0.20
    ),
    profile!(
        Syb,
        2,
        451.0,
        [8, 17],
        [("txt", 24.0), ("npy", 10.4), ("c", 5.7)],
        ["C", "Python"],
        4,
        None,
        None,
        50.00,
        0.07,
        2,
        0.15
    ),
    profile!(
        Tur,
        9,
        320_295.0,
        [8, 16],
        [("water", 0.9), ("h5", 0.6), ("vtr", 0.4)],
        ["Python", "C++"],
        44,
        Some(0.340),
        Some(0.002),
        33.33,
        0.30,
        4,
        0.05
    ),
    profile!(
        Ven,
        10,
        1_271.0,
        [12, 26],
        [("hpp", 6.0), ("html", 5.3), ("o", 5.1)],
        ["C++", "C"],
        4,
        Some(0.082),
        Some(0.003),
        30.00,
        1.23,
        2,
        0.30
    ),
];

/// The profile for a domain.
pub fn profile(domain: ScienceDomain) -> &'static DomainProfile {
    &PROFILES[domain.index()]
}

/// Total projects across all domains (380 in the paper).
pub fn total_projects() -> u32 {
    PROFILES.iter().map(|p| p.projects).sum()
}

/// Total entries over the observation window, in thousands (Table 1 sum).
pub fn total_entries_k() -> f64 {
    PROFILES.iter().map(|p| p.entries_k).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_covers_all_domains_in_order() {
        assert_eq!(PROFILES.len(), 35);
        for (i, p) in PROFILES.iter().enumerate() {
            assert_eq!(p.domain, ALL_DOMAINS[i], "row {i} out of order");
            assert_eq!(profile(p.domain), p);
        }
    }

    #[test]
    fn project_total_matches_paper() {
        assert_eq!(total_projects(), 380);
    }

    #[test]
    fn entry_total_matches_paper_scale() {
        // Figure 7 caption: 4,069,223,934 files + 274,797,413 dirs unique
        // over the window, i.e. ~4.34 B entries. Table 1's per-domain
        // column sums to the same order.
        let total = total_entries_k() * 1e3;
        assert!(total > 3.5e9 && total < 4.7e9, "total {total}");
    }

    #[test]
    fn depth_bounds_are_ordered() {
        for p in &PROFILES {
            assert!(
                p.depth_median <= p.depth_max,
                "{}: median {} > max {}",
                p.domain.id(),
                p.depth_median,
                p.depth_max
            );
            assert!(p.depth_median >= 3, "{}", p.domain.id());
        }
        // The staff stress-test project reached depth 2,030.
        assert_eq!(profile(ScienceDomain::Stf).depth_max, 2030);
        assert_eq!(profile(ScienceDomain::Gen).depth_max, 432);
    }

    #[test]
    fn extension_shares_are_sane() {
        for p in &PROFILES {
            assert!(!p.extensions.is_empty(), "{}", p.domain.id());
            let sum: f64 = p.extensions.iter().map(|e| e.1).sum();
            assert!(sum <= 100.0 + 1e-9, "{} sums to {sum}", p.domain.id());
            // Table 2 lists extensions in descending popularity.
            for w in p.extensions.windows(2) {
                assert!(w[0].1 >= w[1].1, "{} not descending", p.domain.id());
            }
        }
        assert_eq!(profile(ScienceDomain::Bio).extensions[0], ("pdbqt", 97.6));
        assert_eq!(profile(ScienceDomain::Cli).extensions[0], ("nc", 40.3));
    }

    #[test]
    fn cv_values_within_published_range() {
        for p in &PROFILES {
            if let Some(w) = p.write_cv {
                assert!((0.0..=1.0).contains(&w), "{}", p.domain.id());
            }
            if let Some(r) = p.read_cv {
                assert!((0.0..=0.01).contains(&r), "{}", p.domain.id());
            }
            // The paper's headline: reads are ~100x burstier than writes.
            if let (Some(w), Some(r)) = (p.write_cv, p.read_cv) {
                if r > 0.0 {
                    assert!(w / r > 10.0, "{}: write {w} read {r}", p.domain.id());
                }
            }
        }
    }

    #[test]
    fn network_and_collab_percentages() {
        for p in &PROFILES {
            assert!((0.0..=100.0).contains(&p.network_pct), "{}", p.domain.id());
            assert!((0.0..=100.0).contains(&p.collab_pct), "{}", p.domain.id());
        }
        // Fully-networked domains per Table 1.
        for d in [
            ScienceDomain::Chp,
            ScienceDomain::Env,
            ScienceDomain::Nfu,
            ScienceDomain::Nro,
        ] {
            assert_eq!(profile(d).network_pct, 100.0, "{}", d.id());
        }
        // Climate science dominates collaboration (Fig. 20).
        let cli = profile(ScienceDomain::Cli).collab_pct;
        for p in &PROFILES {
            assert!(p.collab_pct <= cli, "{} exceeds cli", p.domain.id());
        }
    }

    #[test]
    fn ost_levels() {
        // 11 domains at the pure default is the paper's observation 6
        // context ("in 11 science domains the OST counts remain unchanged
        // from the default value 4"). Table 1 has more domains *listed* at
        // 4 (their average rounds to it); the tuners stand out.
        assert_eq!(profile(ScienceDomain::Ast).ost_level, 122);
        assert_eq!(profile(ScienceDomain::Tur).ost_level, 44);
        assert_eq!(profile(ScienceDomain::Csc).ost_level, 33);
        assert_eq!(profile(ScienceDomain::Env).ost_level, 2);
        let tuned = PROFILES.iter().filter(|p| p.ost_level != 4).count();
        assert!(tuned >= 8, "{tuned} tuning domains");
    }

    #[test]
    fn biggest_volume_domains_match_table() {
        let mut by_volume: Vec<&DomainProfile> = PROFILES.iter().collect();
        by_volume.sort_by(|a, b| b.entries_k.partial_cmp(&a.entries_k).unwrap());
        let top: Vec<&str> = by_volume[..3].iter().map(|p| p.domain.id()).collect();
        assert_eq!(top, vec!["stf", "bip", "csc"]);
    }
}
