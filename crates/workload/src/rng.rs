//! Sampling utilities over [`rand`]'s `StdRng`.
//!
//! The offline crate set carries `rand` but not `rand_distr`, so the
//! handful of distributions the generator needs — truncated normal,
//! log-normal, Poisson, Zipf, and weighted choice — are implemented here.
//! All samplers take `&mut impl Rng`, so every workload is reproducible
//! from a seed (a hard requirement: the determinism integration test
//! simulates twice and diffs snapshots).

use rand::{Rng, RngExt};

/// A standard-normal draw via Box–Muller (one value per call; the second
/// is discarded for simplicity — the generator is not normal-bound).
pub fn standard_normal(rng: &mut impl Rng) -> f64 {
    // Guard u1 away from zero so ln is finite.
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// A normal draw with the given mean and standard deviation.
pub fn normal(rng: &mut impl Rng, mean: f64, std_dev: f64) -> f64 {
    mean + std_dev * standard_normal(rng)
}

/// A normal draw clamped to `[lo, hi]`.
pub fn clamped_normal(rng: &mut impl Rng, mean: f64, std_dev: f64, lo: f64, hi: f64) -> f64 {
    normal(rng, mean, std_dev).clamp(lo, hi)
}

/// A log-normal draw parameterized by the *median* (`exp(mu)`) and the
/// log-space sigma. Heavy-tailed quantities (files per burst, team sizes)
/// use this.
pub fn log_normal(rng: &mut impl Rng, median: f64, sigma: f64) -> f64 {
    median * (sigma * standard_normal(rng)).exp()
}

/// A Poisson draw (Knuth's method; intended for small `lambda` such as
/// events-per-day rates).
pub fn poisson(rng: &mut impl Rng, lambda: f64) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda > 30.0 {
        // Normal approximation for large rates.
        return normal(rng, lambda, lambda.sqrt()).round().max(0.0) as u64;
    }
    let limit = (-lambda).exp();
    let mut product: f64 = rng.random_range(0.0..1.0);
    let mut count = 0u64;
    while product > limit {
        product *= rng.random_range(0.0..1.0f64);
        count += 1;
    }
    count
}

/// A Zipf draw over `1..=n` with exponent `s`, via inverse-CDF on the
/// precomputed weights. O(n) setup is avoided by the caller holding a
/// [`ZipfSampler`] when drawing repeatedly.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler over ranks `1..=n` with exponent `s > 0`.
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf support must be non-empty");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cumulative.push(acc);
        }
        let total = acc;
        for c in &mut cumulative {
            *c /= total;
        }
        ZipfSampler { cumulative }
    }

    /// Draws a rank in `1..=n`.
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cumulative.partition_point(|&c| c < u) + 1
    }
}

/// Weighted index choice: returns `i` with probability `weights[i] /
/// sum(weights)`. Returns `None` for empty or all-zero weights.
pub fn weighted_choice(rng: &mut impl Rng, weights: &[f64]) -> Option<usize> {
    let total: f64 = weights.iter().filter(|w| w.is_finite() && **w > 0.0).sum();
    if total <= 0.0 {
        return None;
    }
    let mut target = rng.random_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if w.is_finite() && w > 0.0 {
            if target < w {
                return Some(i);
            }
            target -= w;
        }
    }
    // Floating-point slack: fall back to the last positive weight.
    weights.iter().rposition(|&w| w.is_finite() && w > 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn rng() -> StdRng {
        StdRng::seed_from_u64(42)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.25, "var {var}");
    }

    #[test]
    fn clamped_normal_respects_bounds() {
        let mut r = rng();
        for _ in 0..1000 {
            let v = clamped_normal(&mut r, 0.0, 100.0, -5.0, 5.0);
            assert!((-5.0..=5.0).contains(&v));
        }
    }

    #[test]
    fn log_normal_median() {
        let mut r = rng();
        let n = 20_000;
        let mut samples: Vec<f64> = (0..n).map(|_| log_normal(&mut r, 50.0, 1.0)).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[n / 2];
        assert!((median - 50.0).abs() / 50.0 < 0.1, "median {median}");
        assert!(samples.iter().all(|&v| v > 0.0));
    }

    #[test]
    fn poisson_mean() {
        let mut r = rng();
        for lambda in [0.5, 3.0, 12.0, 100.0] {
            let n = 10_000;
            let total: u64 = (0..n).map(|_| poisson(&mut r, lambda)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() / lambda < 0.1,
                "lambda {lambda}: mean {mean}"
            );
        }
        assert_eq!(poisson(&mut r, 0.0), 0);
        assert_eq!(poisson(&mut r, -1.0), 0);
    }

    #[test]
    fn zipf_is_rank_frequency_decreasing() {
        let mut r = rng();
        let sampler = ZipfSampler::new(20, 1.2);
        let mut counts = [0u32; 21];
        for _ in 0..50_000 {
            counts[sampler.sample(&mut r)] += 1;
        }
        assert!(counts[1] > counts[2]);
        assert!(counts[2] > counts[5]);
        assert!(counts[5] > counts[15]);
        // Rough exponent recovery on the head ranks.
        let ratio = counts[1] as f64 / counts[2] as f64;
        assert!((ratio - 2.0f64.powf(1.2)).abs() < 0.4, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zipf_empty_support_panics() {
        let _ = ZipfSampler::new(0, 1.0);
    }

    #[test]
    fn weighted_choice_proportions() {
        let mut r = rng();
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0u32; 3];
        for _ in 0..40_000 {
            counts[weighted_choice(&mut r, &weights).unwrap()] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    fn weighted_choice_degenerate() {
        let mut r = rng();
        assert_eq!(weighted_choice(&mut r, &[]), None);
        assert_eq!(weighted_choice(&mut r, &[0.0, 0.0]), None);
        assert_eq!(weighted_choice(&mut r, &[f64::NAN, 1.0]), Some(1));
    }

    #[test]
    fn determinism_from_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(poisson(&mut a, 5.0), poisson(&mut b, 5.0));
        }
    }
}
