//! Property-based tests for the workload generators.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spider_workload::{
    profile, ExtensionMix, Population, PopulationConfig, ProjectBehavior, ALL_DOMAINS,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Generated file names are always valid namespace components: no
    /// separators, no PSV delimiter, non-empty.
    #[test]
    fn generated_names_are_valid_components(
        domain_idx in 0usize..35,
        seed in any::<u64>(),
        serials in prop::collection::vec(0u64..1_000_000, 1..40),
    ) {
        let mix = ExtensionMix::for_profile(profile(ALL_DOMAINS[domain_idx]));
        let mut rng = StdRng::seed_from_u64(seed);
        for serial in serials {
            let name = mix.sample_name(&mut rng, serial);
            prop_assert!(!name.is_empty());
            prop_assert!(!name.contains('/'), "{name}");
            prop_assert!(!name.contains('|'), "{name}");
            prop_assert!(name != "." && name != "..");
        }
    }

    /// Extension mixes keep every weight positive and the cumulative mass
    /// within the known-extension budget.
    #[test]
    fn extension_mix_mass_is_bounded(domain_idx in 0usize..35) {
        let mix = ExtensionMix::for_profile(profile(ALL_DOMAINS[domain_idx]));
        let total: f64 = mix.entries().iter().map(|e| e.1).sum();
        prop_assert!(total > 0.0);
        prop_assert!(total <= 76.0 + 1e-9, "known mass {total}"); // 1 - 16% bare - 8% numeric
        for (ext, weight) in mix.entries() {
            prop_assert!(*weight > 0.0, "{ext} has zero weight");
            prop_assert!(!ext.is_empty());
        }
    }

    /// Behaviour resolution produces sane parameters for every domain at
    /// any scale.
    #[test]
    fn behavior_parameters_are_sane(
        domain_idx in 0usize..35,
        scale in 1e-6..1e-2f64,
        seed in any::<u64>(),
    ) {
        let domain = ALL_DOMAINS[domain_idx];
        let pop = Population::generate(&PopulationConfig::default());
        let project = pop.domain_projects(domain).next().expect("every domain has a project");
        let mut rng = StdRng::seed_from_u64(seed);
        let b = ProjectBehavior::resolve(project, profile(domain), scale, &mut rng);
        prop_assert!(b.base_daily_files > 0.0);
        prop_assert!(b.base_daily_files.is_finite());
        prop_assert!((0.0..1.0).contains(&b.dir_fraction));
        prop_assert!(b.write_cv > 0.0 && b.write_cv <= 1.0);
        prop_assert!(b.read_cv > 0.0 && b.read_cv <= 0.01);
        prop_assert!((0.0..0.5).contains(&b.weekly_delete_fraction));
        prop_assert!((0.0..0.5).contains(&b.weekly_update_fraction));
        prop_assert!(b.depth_median <= b.depth_max);
        if let Some(t) = b.stripe_tuning {
            prop_assert!(t.min_stripe >= 1);
            prop_assert!(t.max_stripe <= 1_008);
            prop_assert!(t.min_stripe <= t.max_stripe);
            prop_assert!((0.0..=1.0).contains(&t.tuned_fraction));
        }
    }

    /// Population generation respects structural invariants at any
    /// project scale and seed.
    #[test]
    fn population_invariants(seed in any::<u64>(), scale in 0.05..1.0f64) {
        let pop = Population::generate(&PopulationConfig {
            seed,
            project_scale: scale,
            ..PopulationConfig::default()
        });
        prop_assert!(pop.project_count() >= 35); // every domain keeps one
        // gids and names are unique.
        let mut gids: Vec<u32> = pop.projects.iter().map(|p| p.gid).collect();
        gids.sort_unstable();
        gids.dedup();
        prop_assert_eq!(gids.len(), pop.project_count());
        // Members reference real users, teams deduplicate.
        for p in &pop.projects {
            prop_assert!(!p.members.is_empty());
            let mut m = p.members.clone();
            m.sort();
            m.dedup();
            prop_assert_eq!(m.len(), p.members.len());
            for u in &p.members {
                prop_assert!((u.0 as usize) < pop.user_count());
            }
            prop_assert!(p.volume_k >= 0.0);
        }
        // Every user belongs to at least one project.
        let counts = pop.projects_per_user();
        prop_assert!(counts.iter().all(|&c| c >= 1));
        // Domain volumes sum back to the profile totals.
        for &domain in &ALL_DOMAINS {
            let total: f64 = pop.domain_projects(domain).map(|p| p.volume_k).sum();
            let expected = profile(domain).entries_k;
            prop_assert!((total - expected).abs() / expected.max(1e-9) < 1e-6,
                "{}: {total} vs {expected}", domain.id());
        }
    }
}
