//! Ad-hoc queries — the interactive, SparkSQL-flavoured side of the
//! pipeline (§3's analysis framework), on a freshly scanned snapshot.
//!
//! Each block below is the Rust equivalent of a SQL statement the study's
//! analysts would have run against the Parquet tables.
//!
//! ```sh
//! cargo run --release --example adhoc_queries
//! ```

use spider_core::{AnalysisContext, Scan, SnapshotFrame};
use spider_sim::{SimConfig, Simulation};

fn main() {
    // Build a populated namespace and scan it.
    let mut sim = Simulation::new(SimConfig::test_small(13).with_scale(0.0003));
    for _ in 0..10 {
        sim.run_week();
    }
    let snapshot = sim.snapshot(0);
    let frame = SnapshotFrame::build(&snapshot);
    let ctx = AnalysisContext::new(sim.population());
    println!(
        "snapshot: {} rows ({} files / {} dirs)\n",
        frame.len(),
        frame.file_count(),
        frame.dir_count()
    );

    // SELECT gid, COUNT(*) FROM snapshot WHERE is_file GROUP BY gid
    // ORDER BY count DESC LIMIT 5;
    println!("-- top 5 projects by live files --");
    for (gid, count) in Scan::over(&frame)
        .files()
        .top_k_groups(|f, i| Some(f.gid[i]), 5)
    {
        println!(
            "  {:<8} {:>8} files",
            ctx.project_name(gid).unwrap_or("?"),
            count
        );
    }

    // SELECT domain, AVG(stripe_count) ... GROUP BY domain (join on the
    // accounts database) — the Fig. 14 question as one query.
    println!("\n-- mean stripe count per domain (top 5) --");
    let mean_stripes = Scan::over(&frame).files().group_mean(
        |f, i| ctx.domain_of_gid(f.gid[i]),
        |f, i| f.stripe_count[i] as f64,
    );
    let mut rows: Vec<_> = mean_stripes.into_iter().collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (domain, mean) in rows.into_iter().take(5) {
        println!("  {:<4} {mean:>6.1}", domain.id());
    }

    // SELECT uid, COUNT(*) WHERE atime > mtime + 90d — who keeps reading
    // old data? (the purge-pressure question).
    println!("\n-- users re-reading data older than 90 days (top 5) --");
    const NINETY_DAYS: u64 = 90 * 86_400;
    let old_readers = Scan::over(&frame)
        .files()
        .filter(|f, i| f.atime[i] > f.mtime[i] + NINETY_DAYS)
        .top_k_groups(|f, i| Some(f.uid[i]), 5);
    if old_readers.is_empty() {
        println!("  (none at this scale)");
    }
    for (uid, count) in old_readers {
        println!("  uid {uid:<8} {count:>8} old-but-read files");
    }

    // SELECT MAX(depth) GROUP BY domain — the Table 1 depth column.
    println!("\n-- max directory depth per domain (top 5) --");
    let depths =
        Scan::over(&frame).group_max(|f, i| ctx.domain_of_gid(f.gid[i]), |f, i| f.depth[i] as u64);
    let mut rows: Vec<_> = depths.into_iter().collect();
    rows.sort_by_key(|&(_, d)| std::cmp::Reverse(d));
    for (domain, depth) in rows.into_iter().take(5) {
        println!("  {:<4} depth {depth}", domain.id());
    }
}
