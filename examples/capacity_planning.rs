//! Capacity planning — the paper's §5 use case: OLCF sized the Spider III
//! metadata system for the Summit era (O(10) billion files, 2018-2023)
//! from exactly this kind of trend extrapolation.
//!
//! ```sh
//! cargo run --release --example capacity_planning
//! ```

use spider_core::behavior::GrowthAnalysis;
use spider_core::stream_store;
use spider_sim::{SimConfig, Simulation};
use spider_snapshot::SnapshotStore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("spider-capacity");
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = SnapshotStore::open(&dir)?;
    let config = SimConfig::test_small(5).with_scale(0.0002);
    let mut sim = Simulation::new(config);
    sim.run(&mut store)?;

    let mut growth = GrowthAnalysis::new();
    stream_store(&store, &mut [&mut growth])?;

    let (first_day, first) = growth.files().first().expect("snapshots exist");
    let (last_day, last) = growth.files().last().expect("snapshots exist");
    println!("observed: {first:.0} files (day {first_day}) -> {last:.0} files (day {last_day})");
    println!(
        "growth factor {:.2}x over {} days",
        growth.file_growth_factor().unwrap_or(0.0),
        last_day - first_day
    );

    let trend = growth.files().trend().expect("at least two snapshots");
    println!(
        "linear trend: {:+.1} files/day (r2 {:.3})",
        trend.slope, trend.r2
    );

    // Extrapolate the way a center architect would: where is the
    // namespace in one, three, and five years if the trend holds?
    println!("\nnamespace projection if the trend holds:");
    for years in [1u32, 3, 5] {
        let day = last_day as f64 + years as f64 * 365.0;
        let projected = trend.predict(day).max(0.0);
        println!(
            "  +{years}y: ~{projected:>12.0} files ({:.1}x today)",
            projected / last
        );
    }
    println!(
        "\nThe paper's version of this estimate sized Spider III for O(10) B files\n\
         in the 2018-2023 timeframe, from a 2015-2016 observation of 0.2 -> 1 B."
    );

    // Directory metadata deserves its own line item (Obs. 2: scalable
    // metadata management is the coming bottleneck).
    let (_, dirs) = growth.dirs().last().expect("snapshots exist");
    println!(
        "\ndirectories today: {dirs:.0} ({:.1}% of entries)",
        100.0 * growth.final_dir_share().unwrap_or(0.0)
    );

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
