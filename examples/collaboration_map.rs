//! Collaboration mapping — the paper's §4.3 use case: find the
//! communities and the liaison entities in the file generation network.
//!
//! ```sh
//! cargo run --release --example collaboration_map
//! ```

use spider_core::sharing::collaboration::CollaborationReport;
use spider_core::sharing::components::ComponentReport;
use spider_core::sharing::FileGenNetwork;
use spider_core::{stream_store, AnalysisContext};
use spider_graph::DistanceStats;
use spider_sim::{SimConfig, Simulation};
use spider_snapshot::SnapshotStore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join("spider-collab-map");
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = SnapshotStore::open(&dir)?;
    let mut sim = Simulation::new(SimConfig::test_small(3).with_scale(0.0002));
    sim.run(&mut store)?;
    let ctx = AnalysisContext::new(sim.population());

    // Build the file generation network from the snapshots alone.
    let mut network = FileGenNetwork::new(ctx.clone());
    let mut collab_network = FileGenNetwork::without_staff(ctx);
    stream_store(&store, &mut [&mut network, &mut collab_network])?;
    let built = network.build();

    println!(
        "file generation network: {} users, {} projects, {} edges",
        built.user_count(),
        built.project_count(),
        built.graph.num_edges()
    );

    // Communities.
    let components = ComponentReport::compute(&built);
    println!(
        "\ncommunities: {} (largest holds {:.0}% of vertices: {} users + {} projects)",
        components.component_count,
        100.0 * components.largest_fraction,
        components.largest_users,
        components.largest_projects
    );
    println!(
        "largest community: diameter {}, radius {}",
        components.diameter, components.radius
    );

    // The center: liaison candidates (at OLCF these turned out to be the
    // application-optimization staff).
    let cs = spider_graph::ComponentSet::compute(&built.graph, spider_graph::Labeling::UnionFind);
    let largest = cs.largest().expect("network non-empty");
    let stats = DistanceStats::compute(&built.graph, &cs.members(largest));
    println!("\nmost central entities (closeness):");
    for (vertex, closeness) in stats.by_closeness().into_iter().take(5) {
        match built.graph.as_project(vertex) {
            Some(p) => {
                let gid = built.gids[p as usize];
                println!(
                    "  project {:<10} (domain {}, closeness {closeness:.3})",
                    sim.population()
                        .project_by_gid(gid)
                        .map(|pr| pr.name.as_str())
                        .unwrap_or("?"),
                    built.domains[p as usize].id()
                );
            }
            None => {
                let uid = built.uids[vertex as usize];
                println!("  user uid={uid:<8} (closeness {closeness:.3})");
            }
        }
    }

    // Collaboration hot spots.
    let collab = CollaborationReport::compute(&collab_network.build());
    println!(
        "\ncollaborating pairs: {} of {} possible ({:.2}%)",
        collab.collaborating_pairs,
        collab.total_pairs,
        100.0 * collab.collaborating_fraction()
    );
    println!("domains where collaborating pairs meet:");
    let mut by_pct = collab.pct_by_domain.clone();
    by_pct.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    for (domain, pct) in by_pct.into_iter().take(5) {
        println!("  {:<4} {pct:>5.1}%  ({})", domain.id(), domain.name());
    }

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
