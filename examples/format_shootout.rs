//! Format shootout — the Fig. 4 conversion step as a standalone tool:
//! PSV text vs the `colf` columnar format on a freshly scanned snapshot.
//!
//! The paper's pipeline converts 119 GB/day of pipe-separated text into
//! ~28 GB of Parquet before analysis. This example measures our analogous
//! conversion: sizes, encode/decode time, and losslessness.
//!
//! ```sh
//! cargo run --release --example format_shootout
//! ```

use spider_sim::{SimConfig, Simulation};
use spider_snapshot::{colf, psv};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a populated namespace and scan it once.
    let mut sim = Simulation::new(SimConfig::test_small(9).with_scale(0.0005));
    for _ in 0..12 {
        sim.run_week();
    }
    let snapshot = sim.snapshot(0);
    println!(
        "scanned snapshot: {} records ({} files, {} dirs)\n",
        snapshot.len(),
        snapshot.file_count(),
        snapshot.dir_count()
    );

    // PSV (the LustreDU wire format).
    let start = Instant::now();
    let mut psv_bytes = Vec::new();
    psv::write_psv(&snapshot, &mut psv_bytes)?;
    let psv_encode = start.elapsed();
    let start = Instant::now();
    let psv_decoded = psv::read_psv(psv_bytes.as_slice())?;
    let psv_decode = start.elapsed();
    assert_eq!(psv_decoded, snapshot);

    // colf (the Parquet stand-in).
    let start = Instant::now();
    let colf_bytes = colf::encode(&snapshot);
    let colf_encode = start.elapsed();
    let start = Instant::now();
    let colf_decoded = colf::decode(&colf_bytes)?;
    let colf_decode = start.elapsed();
    assert_eq!(colf_decoded, snapshot);

    let per_record = |bytes: usize| bytes as f64 / snapshot.len().max(1) as f64;
    println!(
        "{:<8} {:>12} {:>10} {:>12} {:>12}",
        "format", "bytes", "B/record", "encode", "decode"
    );
    println!(
        "{:<8} {:>12} {:>10.1} {:>12.2?} {:>12.2?}",
        "psv",
        psv_bytes.len(),
        per_record(psv_bytes.len()),
        psv_encode,
        psv_decode
    );
    println!(
        "{:<8} {:>12} {:>10.1} {:>12.2?} {:>12.2?}",
        "colf",
        colf_bytes.len(),
        per_record(colf_bytes.len()),
        colf_encode,
        colf_decode
    );
    println!(
        "\ncompression ratio: {:.2}x (the paper's Parquet conversion achieved ~4.25x)",
        psv_bytes.len() as f64 / colf_bytes.len() as f64
    );
    println!("both codecs verified lossless on this snapshot");
    Ok(())
}
