//! Purge-policy design study — the paper's motivating administrative use
//! case (§4.2.3): *is the 90-day purge window right?*
//!
//! We run the same workload under several purge windows and report, for
//! each: files purged, live population at the end, and the file-age
//! profile. The paper's Fig. 16 finding (median file age 138 days > the
//! 90-day window) implies tighter windows destroy data scientists still
//! read — which the sweep makes visible as purged-file counts rising
//! sharply while ages stay pinned at the window.
//!
//! ```sh
//! cargo run --release --example purge_policy
//! ```

use spider_core::behavior::{FileAgeAnalysis, PurgeAdvisor};
use spider_core::stream_store;
use spider_fsmeta::PurgePolicy;
use spider_sim::{SimConfig, Simulation};
use spider_snapshot::SnapshotStore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("purge window sweep (same workload, same seed):\n");
    println!(
        "{:>8}  {:>10}  {:>12}  {:>14}  {:>16}",
        "window", "purged", "live files", "mean age (end)", "median mean age"
    );

    for window_days in [30u32, 60, 90, 120, 180] {
        let mut config = SimConfig::test_small(7).with_scale(0.0002);
        config.purge = PurgePolicy { window_days };

        let dir = std::env::temp_dir().join(format!("spider-purge-{window_days}"));
        let _ = std::fs::remove_dir_all(&dir);
        let mut store = SnapshotStore::open(&dir)?;
        let mut sim = Simulation::new(config);
        let outcome = sim.run(&mut store)?;

        let purged: u64 = outcome.weeks.iter().map(|w| w.purged).sum();
        let live = outcome.weeks.last().map(|w| w.live_files).unwrap_or(0);

        let mut age = FileAgeAnalysis::new();
        let mut advisor = PurgeAdvisor::new();
        stream_store(&store, &mut [&mut age, &mut advisor])?;
        let end_age = age.mean_age_days().last().map(|(_, v)| v).unwrap_or(0.0);
        let median_age = age.median_of_means().unwrap_or(0.0);

        println!(
            "{:>7}d  {:>10}  {:>12}  {:>13.1}d  {:>15.1}d",
            window_days, purged, live, end_age, median_age
        );
        if window_days == 90 {
            if let Some(rec) = advisor.recommend(0.9, window_days) {
                println!(
                    "          -> advisor: keeping 90% of re-reads alive needs a {}-day window; \
                     this policy severs {:.1}% of observed re-reads",
                    rec.window_days,
                    100.0 * rec.baseline_miss_fraction
                );
            }
        }
        std::fs::remove_dir_all(&dir)?;
    }

    println!(
        "\nReading the sweep: shrinking the window purges dramatically more data\n\
         while the age profile shows files are still being read near (and past)\n\
         the 90-day mark — the paper's Observation 8 argument for a longer window."
    );
    Ok(())
}
