//! Quickstart: simulate a small synthetic Spider II, take weekly
//! snapshots, and run a few analyses.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use spider_core::behavior::GrowthAnalysis;
use spider_core::trends::census::UniqueCensus;
use spider_core::{stream_store, AnalysisContext};
use spider_sim::{SimConfig, Simulation};
use spider_snapshot::SnapshotStore;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Configure a deliberately small run: ~20 weeks, 1/5000 of the
    //    paper's volume.
    let config = SimConfig::test_small(1).with_scale(0.0002);
    println!(
        "simulating {} days (+{} warm-up) across {} science domains ...",
        config.days,
        config.warmup_days,
        spider_workload::ALL_DOMAINS.len()
    );

    // 2. Run the simulation, persisting weekly LustreDU-style snapshots.
    let dir = std::env::temp_dir().join("spider-quickstart");
    let _ = std::fs::remove_dir_all(&dir);
    let mut store = SnapshotStore::open(&dir)?;
    let mut sim = Simulation::new(config);
    let outcome = sim.run(&mut store)?;
    println!(
        "created {} files; {} weekly snapshots in {}",
        outcome.total_created,
        store.len(),
        dir.display()
    );

    // 3. Stream the snapshots through two analyses in one pass.
    let ctx = AnalysisContext::new(sim.population());
    let mut census = UniqueCensus::new(ctx);
    let mut growth = GrowthAnalysis::new();
    stream_store(&store, &mut [&mut census, &mut growth])?;

    println!(
        "\nunique entries observed: {} files + {} directories",
        census.unique_files(),
        census.unique_dirs()
    );
    println!(
        "file population grew {:.1}x across the window",
        growth.file_growth_factor().unwrap_or(0.0)
    );
    println!("\ntop-5 extensions across all domains:");
    for (ext, pct) in census.top_extensions_global(5) {
        println!("  .{ext:<10} {pct:>5.1}%");
    }
    println!("\nbusiest domains by unique entries:");
    let mut by_volume: Vec<_> = spider_workload::ALL_DOMAINS
        .iter()
        .map(|&d| (d, census.domain_counts(d).total()))
        .collect();
    by_volume.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    for (domain, count) in by_volume.into_iter().take(5) {
        println!(
            "  {:<4} {:>9} entries  ({})",
            domain.id(),
            count,
            domain.name()
        );
    }

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
