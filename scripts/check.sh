#!/usr/bin/env bash
# Tier-1 gate: build, test, lint, format — in that order, fail-fast.
#
# The full gate needs the crates registry (crates.io or a mirror) to
# fetch third-party dependencies. Environments without registry access
# degrade to the subset that runs without it (rustfmt) and say so
# loudly instead of failing on a DNS error.
set -euo pipefail
cd "$(dirname "$0")/.."

if timeout 90 cargo fetch --quiet 2>/dev/null; then
    echo "== cargo build --release"
    cargo build --release
    echo "== cargo test -q"
    cargo test -q
    # The corruption harness again under three pinned seeds (decimal for
    # 0xA11CE, 0xB0B51ED5, 0xC0FFEE42), so the fault plans CI exercises
    # never drift with the defaults.
    echo "== fault matrix (pinned seeds)"
    for seed in 660942 2964594389 3237998146; do
        echo "   -- SPIDER_FAULT_SEED=$seed"
        SPIDER_FAULT_SEED=$seed cargo test -q -p spider-snapshot --test fault_matrix
    done
    # The columnar fast path must stay bit-identical to the row path,
    # including under corruption; run the dedicated suites explicitly so
    # a failure names them, then smoke the benchmark's cross-checks.
    echo "== frame equivalence (deterministic + property suites)"
    cargo test -q -p spider-core --test frame_equivalence
    cargo test -q -p spider-core --test prop_frame
    # Predicate pushdown must return exactly the rows the closure path
    # keeps, including under injected zone-map corruption; the golden
    # fixtures pin the v1/v2/v3 encoders byte-for-byte.
    echo "== pushdown equivalence (deterministic + property suites)"
    cargo test -q -p spider-core --test pushdown_equivalence
    cargo test -q -p spider-core --test prop_pushdown
    cargo test -q -p spider-snapshot --test golden_fixtures
    echo "== frame_path bench smoke"
    cargo run --release -q -p spider-bench --bin frame_path -- \
        target/BENCH_frame_path_smoke.json --days 2 --rows 2000 --reps 1 >/dev/null
    # Instrumented pipeline run; --check validates the exported snapshot
    # (schema version, span sums cover children, no unaccounted pipeline
    # bucket over 10%).
    echo "== telemetry smoke"
    rm -rf target/telemetry-smoke
    cargo run --release -q -p spider-cli --bin spider-metalab -- \
        telemetry --dir target/telemetry-smoke --quick --scale 0.00005 \
        --days 28 --json --check >/dev/null
    # The replicated write path under the same three pinned seeds:
    # elections, partitions, crash/restart with log rot, at-rest store
    # rot — every committed day must end byte-identical on every
    # replica, with quarantined days healed from peers.
    echo "== raft cluster soak (pinned seeds)"
    for seed in 660942 2964594389 3237998146; do
        echo "   -- SPIDER_FAULT_SEED=$seed"
        SPIDER_FAULT_SEED=$seed cargo test -q -p spider-raft --test cluster_soak
    done
    echo "== raft property suite (random network schedules)"
    cargo test -q -p spider-raft --test prop_raft
    # The query service under the same three pinned seeds: seeded
    # steady + overload soak (zero drops, zero protocol errors, shed
    # answers byte-identical to cached originals), cache fairness under
    # concurrent tenants, and serving from every degraded-store cell
    # class with substitution notes.
    echo "== serve soak + fairness + degraded serve (pinned seeds)"
    for seed in 660942 2964594389 3237998146; do
        echo "   -- SPIDER_SERVE_SEED=$seed"
        SPIDER_SERVE_SEED=$seed cargo test -q -p spider-serve --test serve_soak
        SPIDER_SERVE_SEED=$seed cargo test -q -p spider-core --test cache_fairness
    done
    cargo test -q -p spider-serve --test degraded_serve
    # Incremental aggregation must stay fingerprint-identical to the
    # full-rescan oracle under a random day-lifecycle storm (appends,
    # quarantines, degrades, heals), per pinned seed; the epoch-keyed
    # response cache must never surface answers from a stale day set;
    # the bench smoke additionally asserts the ≥10x append speedup and
    # the fault-cell fallbacks.
    echo "== incremental equivalence (pinned seeds) + epoch cache"
    for seed in 660942 2964594389 3237998146; do
        echo "   -- SPIDER_INCR_SEED=$seed"
        SPIDER_INCR_SEED=$seed cargo test -q -p spider-core --test incremental_equivalence
    done
    cargo test -q -p spider-serve --test epoch_cache
    echo "== incremental bench smoke"
    cargo run --release -q -p spider-bench --bin incremental_bench -- \
        target/BENCH_incremental_smoke.json --days 65 --rows 1500 --reps 2 >/dev/null
    echo "== serve loadgen sweep smoke"
    rm -rf target/serve-smoke
    cargo run --release -q -p spider-cli --bin spider-metalab -- \
        loadgen --dir target/serve-smoke --synth-days 4 --synth-rows 400 \
        --seed 660942 --sweep --analysts 8 --tenants 3 --threads 4 \
        --queries 40 --out target/BENCH_serve_smoke.json >/dev/null
    # A seeded loadgen run under --trace must export a chrome trace that
    # validates (well-formed trace_event JSON, spans, flow starts/
    # finishes paired, child spans inside their parents); flightrec must
    # dump a ring whose trace carries >=1 cross-thread flow pair, with
    # its two metrics scrapes reporting deltas equal to the counters'
    # actual movement.
    echo "== obs smoke (chrome trace + flight recorder + metrics deltas)"
    rm -rf target/obs-smoke target/obs-smoke-trace.json
    cargo run --release -q -p spider-cli --bin spider-metalab -- \
        loadgen --dir target/obs-smoke --synth-days 3 --synth-rows 300 \
        --seed 660942 --analysts 4 --tenants 2 --threads 2 --queries 10 \
        --trace=target/obs-smoke-trace.json >/dev/null
    cargo run --release -q -p spider-cli --bin spider-metalab -- \
        flightrec --check target/obs-smoke-trace.json
    cargo run --release -q -p spider-cli --bin spider-metalab -- \
        flightrec --dir target/obs-smoke --validate >/dev/null
    echo "== cargo clippy --all-targets (deny warnings)"
    cargo clippy --all-targets -- -D warnings
    echo "== cargo fmt --check"
    cargo fmt --all -- --check
    echo "tier-1 gate: PASS"
else
    echo "WARNING: crates registry unreachable; running the offline subset only." >&2
    echo "== cargo fmt --check"
    cargo fmt --all -- --check
    echo "tier-1 gate: OFFLINE (fmt only) — rerun with registry access for the full gate" >&2
fi
