#!/usr/bin/env bash
# Tier-1 gate: build, test, lint, format — in that order, fail-fast.
#
# The full gate needs the crates registry (crates.io or a mirror) to
# fetch third-party dependencies. Environments without registry access
# degrade to the subset that runs without it (rustfmt) and say so
# loudly instead of failing on a DNS error.
set -euo pipefail
cd "$(dirname "$0")/.."

if timeout 90 cargo fetch --quiet 2>/dev/null; then
    echo "== cargo build --release"
    cargo build --release
    echo "== cargo test -q"
    cargo test -q
    echo "== cargo clippy --all-targets (deny warnings)"
    cargo clippy --all-targets -- -D warnings
    echo "== cargo fmt --check"
    cargo fmt --all -- --check
    echo "tier-1 gate: PASS"
else
    echo "WARNING: crates registry unreachable; running the offline subset only." >&2
    echo "== cargo fmt --check"
    cargo fmt --all -- --check
    echo "tier-1 gate: OFFLINE (fmt only) — rerun with registry access for the full gate" >&2
fi
