//! bytes stand-in for the offline harness: `Buf`/`BufMut` over plain
//! `Vec<u8>` plus minimal `Bytes`/`BytesMut` wrappers. Only the surface
//! the workspace actually touches is implemented.

pub trait Buf {
    fn remaining(&self) -> usize;
    fn chunk(&self) -> &[u8];
    fn advance(&mut self, cnt: usize);

    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        self
    }
    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

/// Growable byte buffer (`Vec<u8>` behind the `bytes` API).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }
    pub fn len(&self) -> usize {
        self.0.len()
    }
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
    pub fn clear(&mut self) {
        self.0.clear();
    }
    pub fn to_vec(&self) -> Vec<u8> {
        self.0.clone()
    }
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.0, pos: 0 }
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Immutable byte buffer with a read cursor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Sub-buffer over `range` of the *unread* portion, like
    /// `bytes::Bytes::slice`.
    pub fn slice(&self, range: impl std::ops::RangeBounds<usize>) -> Bytes {
        use std::ops::Bound;
        let rest = &self.data[self.pos..];
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => rest.len(),
        };
        Bytes {
            data: rest[start..end].to_vec(),
            pos: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.data.len() - self.pos
    }
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn chunk(&self) -> &[u8] {
        &self.data[self.pos..]
    }
    fn advance(&mut self, cnt: usize) {
        self.pos += cnt;
    }
}
