//! crossbeam stand-in for the offline harness: `channel::bounded` over
//! `std::sync::mpsc::sync_channel`.

pub mod channel {
    use std::sync::mpsc;

    pub struct Sender<T>(mpsc::SyncSender<T>);
    pub struct Receiver<T>(mpsc::Receiver<T>);

    pub struct SendError<T>(pub T);

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            self.0.send(value).map_err(|e| SendError(e.0))
        }
    }

    impl<T> Receiver<T> {
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }

        pub fn recv(&self) -> Result<T, mpsc::RecvError> {
            self.0.recv()
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = mpsc::IntoIter<T>;
        fn into_iter(self) -> Self::IntoIter {
            self.0.into_iter()
        }
    }

    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::sync_channel(cap);
        (Sender(tx), Receiver(rx))
    }
}
