//! rand stand-in for the offline harness.
//!
//! `StdRng` is a SplitMix64 generator — statistically fine for the
//! workload model's distribution tests, deterministic per seed, but a
//! *different stream* than the real `rand::rngs::StdRng` (ChaCha12).
//! Calibration assertions were tuned against this stub in offline runs.

pub trait Rng {
    fn next_u64(&mut self) -> u64;
}

/// Extension methods (rand 0.10 splits these from `Rng`).
pub trait RngExt: Rng {
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: Rng + ?Sized> RngExt for T {}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

fn unit_f64(raw: u64) -> f64 {
    // 53 mantissa bits -> [0, 1).
    (raw >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64 (Steele et al.), the canonical seeding generator.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// A range a value can be uniformly drawn from.
pub trait SampleRange<T> {
    fn sample_from(self, rng: &mut impl Rng) -> T;
}

macro_rules! int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from(self, rng: &mut impl Rng) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (self.start as i128 + v) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from(self, rng: &mut impl Rng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty inclusive range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from(self, rng: &mut impl Rng) -> f64 {
        assert!(self.start < self.end, "empty range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up to the excluded end.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_from(self, rng: &mut impl Rng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

impl SampleRange<f32> for std::ops::Range<f32> {
    fn sample_from(self, rng: &mut impl Rng) -> f32 {
        let r = (self.start as f64)..(self.end as f64);
        r.sample_from(rng) as f32
    }
}
