//! rayon stand-in for the offline harness: everything runs sequentially
//! on the calling thread. The morsel-tree reduction in `spider_core`
//! produces identical results either way by design, so sequential
//! execution changes wall-clock only, never values.

/// Sequential stand-in: the "pool" is the calling thread.
pub fn current_num_threads() -> usize {
    1
}

pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Sequential wrapper exposing the rayon adapter surface in use.
pub struct SeqIter<I: Iterator>(I);

impl<I: Iterator> SeqIter<I> {
    pub fn map<B, F: FnMut(I::Item) -> B>(self, f: F) -> SeqIter<std::iter::Map<I, F>> {
        SeqIter(self.0.map(f))
    }

    pub fn filter<F: FnMut(&I::Item) -> bool>(self, f: F) -> SeqIter<std::iter::Filter<I, F>> {
        SeqIter(self.0.filter(f))
    }

    pub fn with_min_len(self, _len: usize) -> Self {
        self
    }

    pub fn with_max_len(self, _len: usize) -> Self {
        self
    }

    /// rayon-style fold: one accumulator per "thread" — exactly one here.
    pub fn fold<T, ID, F>(self, init: ID, f: F) -> SeqIter<std::iter::Once<T>>
    where
        ID: Fn() -> T,
        F: FnMut(T, I::Item) -> T,
    {
        SeqIter(std::iter::once(self.0.fold(init(), f)))
    }

    /// rayon-style reduce with an identity factory.
    pub fn reduce<ID, F>(mut self, identity: ID, op: F) -> I::Item
    where
        ID: Fn() -> I::Item,
        F: FnMut(I::Item, I::Item) -> I::Item,
    {
        match self.0.next() {
            None => identity(),
            Some(first) => self.0.fold(first, op),
        }
    }

    pub fn any<F: FnMut(I::Item) -> bool>(mut self, f: F) -> bool {
        self.0.any(f)
    }

    pub fn all<F: FnMut(I::Item) -> bool>(mut self, f: F) -> bool {
        self.0.all(f)
    }

    pub fn count(self) -> usize {
        self.0.count()
    }

    pub fn sum<S: std::iter::Sum<I::Item>>(self) -> S {
        self.0.sum()
    }

    pub fn collect<C: FromIterator<I::Item>>(self) -> C {
        self.0.collect()
    }

    pub fn for_each<F: FnMut(I::Item)>(self, f: F) {
        self.0.for_each(f)
    }
}

pub mod prelude {
    use super::SeqIter;

    pub trait IntoParallelIterator {
        type Iter: Iterator<Item = Self::Item>;
        type Item;
        fn into_par_iter(self) -> SeqIter<Self::Iter>;
    }

    impl<T> IntoParallelIterator for std::ops::Range<T>
    where
        std::ops::Range<T>: Iterator<Item = T>,
    {
        type Iter = std::ops::Range<T>;
        type Item = T;
        fn into_par_iter(self) -> SeqIter<Self::Iter> {
            SeqIter(self)
        }
    }

    impl<T> IntoParallelIterator for Vec<T> {
        type Iter = std::vec::IntoIter<T>;
        type Item = T;
        fn into_par_iter(self) -> SeqIter<Self::Iter> {
            SeqIter(self.into_iter())
        }
    }

    pub trait ParallelSlice<T> {
        fn par_iter(&self) -> SeqIter<std::slice::Iter<'_, T>>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> SeqIter<std::slice::Iter<'_, T>> {
            SeqIter(self.iter())
        }
    }

    impl<T> ParallelSlice<T> for Vec<T> {
        fn par_iter(&self) -> SeqIter<std::slice::Iter<'_, T>> {
            SeqIter(self.iter())
        }
    }
}
