//! rustc-hash stand-in for the offline harness: the FxHash mixing
//! function over std's `HashMap`/`HashSet` (same API, same determinism
//! properties — FxHash is not randomly seeded).

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut raw = [0u8; 8];
            raw[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(raw));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }
    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.add_to_hash(n as u64);
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;
