//! serde stand-in for the offline harness.
//!
//! Marker traits satisfied by every type, plus re-exported no-op
//! derives. Anything bounded on `Serialize`/`Deserialize` compiles; the
//! stub `serde_json` renders placeholders instead of real JSON.

pub use serde_derive::{Deserialize, Serialize};

pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

pub trait Deserialize<'de>: Sized {}
impl<'de, T> Deserialize<'de> for T {}

pub mod de {
    pub use super::Deserialize;
}
pub mod ser {
    pub use super::Serialize;
}
