//! No-op stand-ins for serde's derive macros (offline harness only).
//!
//! The real derives generate `Serialize`/`Deserialize` impls; the stub
//! `serde` crate instead blanket-implements both traits for every type,
//! so these derives only need to *exist* and swallow `#[serde(...)]`
//! helper attributes.

extern crate proc_macro;

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
