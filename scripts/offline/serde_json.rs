//! serde_json stand-in for the offline harness.
//!
//! Real serialization needs the real serde data model; offline we only
//! need the call sites to compile and produce *deterministic* strings
//! (the lab cache compares marker files for equality). `Debug` output
//! of the value type name is stable enough for that.

use std::fmt;

#[derive(Debug)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde_json stub error: {}", self.0)
    }
}

impl std::error::Error for Error {}

fn placeholder<T: ?Sized>(_value: &T) -> String {
    // Deterministic for a given type; values of the same type compare
    // equal, which keeps cache-marker logic consistent offline.
    format!("{{\"offline-stub\":{:?}}}", std::any::type_name::<T>())
}

pub fn to_string<T: ?Sized>(value: &T) -> Result<String, Error> {
    Ok(placeholder(value))
}

pub fn to_string_pretty<T: ?Sized>(value: &T) -> Result<String, Error> {
    Ok(placeholder(value))
}
