#!/usr/bin/env bash
# Offline workspace gate: compile every crate and run its tests with
# plain rustc against the API stubs in scripts/offline/ (see the README
# there). Used when the crates registry is unreachable; with registry
# access, prefer scripts/check.sh.
#
# Usage:
#   bash scripts/offline_check.sh            # everything
#   bash scripts/offline_check.sh snapshot   # crates matching "snapshot"
set -euo pipefail
cd "$(dirname "$0")/.."

FILTER="${1:-}"
OUT=target/offline
DEPS="$OUT/deps"
mkdir -p "$DEPS"

EDITION=2021
RUSTC="rustc --edition $EDITION -O -A warnings --out-dir $DEPS -L $DEPS"

say() { printf '\n\033[1m== %s\033[0m\n' "$*"; }

# ---- stubs ----------------------------------------------------------------
say "stubs"
rustc --edition $EDITION -O -A warnings --crate-type proc-macro \
    --crate-name serde_derive scripts/offline/serde_derive.rs --out-dir "$DEPS"
for stub in serde bytes rand rayon rustc_hash crossbeam; do
    $RUSTC --crate-type rlib --crate-name $stub scripts/offline/$stub.rs \
        $( [ $stub = serde ] && echo "--extern serde_derive=$DEPS/libserde_derive.so" )
done
$RUSTC --crate-type rlib --crate-name serde_json scripts/offline/serde_json.rs

ext() { echo "--extern $1=$DEPS/lib$1.rlib"; }

# Workspace crates in dependency order: "name:lib_path:deps"
CRATES=(
    "spider_stats:crates/stats/src/lib.rs:serde"
    "spider_telemetry:crates/telemetry/src/lib.rs:spider_stats serde"
    "spider_obs:crates/obs/src/lib.rs:spider_telemetry"
    "spider_fsmeta:crates/fsmeta/src/lib.rs:rustc_hash serde"
    "spider_snapshot:crates/snapshot/src/lib.rs:spider_fsmeta spider_telemetry bytes rayon rustc_hash serde"
    "spider_raft:crates/raft/src/lib.rs:spider_snapshot spider_telemetry"
    "spider_workload:crates/workload/src/lib.rs:spider_stats spider_fsmeta rand rustc_hash serde"
    "spider_graph:crates/graph/src/lib.rs:spider_stats rayon rustc_hash"
    "spider_core:crates/core/src/lib.rs:spider_stats spider_telemetry spider_fsmeta spider_snapshot spider_raft spider_graph spider_workload rayon crossbeam rustc_hash serde"
    "spider_serve:crates/serve/src/lib.rs:spider_snapshot spider_core spider_telemetry rustc_hash"
    "spider_sim:crates/simulate/src/lib.rs:spider_fsmeta spider_snapshot spider_telemetry spider_workload spider_core rand rustc_hash serde"
    "spider_report:crates/report/src/lib.rs:serde serde_json"
    "spider_experiments:crates/experiments/src/lib.rs:spider_stats spider_telemetry spider_fsmeta spider_snapshot spider_graph spider_workload spider_sim spider_core spider_report rand rayon rustc_hash serde serde_json"
)

# Integration tests runnable offline (no proptest/criterion):
# "test_name:path:deps"
ITESTS=(
    "fault_matrix:crates/snapshot/tests/fault_matrix.rs:spider_snapshot spider_fsmeta"
    "cluster_soak:crates/raft/tests/cluster_soak.rs:spider_raft spider_snapshot"
    "golden_fixtures:crates/snapshot/tests/golden_fixtures.rs:spider_snapshot"
    "frame_equivalence:crates/core/tests/frame_equivalence.rs:spider_core spider_snapshot spider_fsmeta"
    "pushdown_equivalence:crates/core/tests/pushdown_equivalence.rs:spider_core spider_snapshot spider_fsmeta spider_telemetry"
    "cache_fairness:crates/core/tests/cache_fairness.rs:spider_core spider_snapshot spider_fsmeta spider_telemetry spider_obs"
    "incremental_equivalence:crates/core/tests/incremental_equivalence.rs:spider_core spider_snapshot spider_fsmeta spider_telemetry spider_obs"
    "degraded_serve:crates/serve/tests/degraded_serve.rs:spider_serve spider_snapshot spider_core spider_fsmeta"
    "epoch_cache:crates/serve/tests/epoch_cache.rs:spider_serve spider_snapshot spider_core spider_fsmeta"
    "serve_soak:crates/serve/tests/serve_soak.rs:spider_serve spider_snapshot spider_core spider_telemetry"
    "pipeline_end_to_end:tests/pipeline_end_to_end.rs:spider_experiments spider_sim spider_snapshot spider_core spider_graph spider_report spider_workload spider_fsmeta spider_stats serde_json"
    "determinism:tests/determinism.rs:spider_experiments spider_sim spider_snapshot spider_core spider_graph spider_report spider_workload spider_fsmeta spider_stats serde_json"
    "experiment_shapes:tests/experiment_shapes.rs:spider_experiments spider_sim spider_snapshot spider_core spider_graph spider_report spider_workload spider_fsmeta spider_stats serde_json"
    "calibration_targets:tests/calibration_targets.rs:spider_experiments spider_sim spider_snapshot spider_core spider_graph spider_report spider_workload spider_fsmeta spider_stats serde_json"
)

build_crate() {
    local name=$1 path=$2 deps=$3 externs=""
    for d in $deps; do externs+=" $(ext $d)"; done
    say "build $name"
    $RUSTC --crate-type rlib --crate-name "$name" "$path" $externs \
        --extern serde_derive="$DEPS/libserde_derive.so"
}

# Tests that assert on behaviour the stubs deliberately do not
# reproduce (real serde_json rendering, real rand streams). Skipped
# offline; they run under the full cargo gate.
stub_sensitive_skips() {
    case $1 in
        spider_report) echo "--skip json_emission" ;;
        *) echo "" ;;
    esac
}

test_crate() {
    local name=$1 path=$2 deps=$3 externs=""
    for d in $deps; do externs+=" $(ext $d)"; done
    say "test $name"
    $RUSTC --test --crate-name "${name}_tests" "$path" $externs \
        --extern serde_derive="$DEPS/libserde_derive.so" \
        -o "$OUT/${name}_tests"
    "$OUT/${name}_tests" --test-threads=4 -q $(stub_sensitive_skips "$name")
}

for entry in "${CRATES[@]}"; do
    IFS=: read -r name path deps <<<"$entry"
    if [ -n "$FILTER" ] && [[ "$name" != *"$FILTER"* ]]; then
        # Still build (later crates need the rlib), just skip its tests.
        build_crate "$name" "$path" "$deps"
        continue
    fi
    build_crate "$name" "$path" "$deps"
    test_crate "$name" "$path" "$deps"
done

# CLI binary (library deps of spider_experiments plus itself).
if [ -z "$FILTER" ] || [[ "spider_cli" == *"$FILTER"* ]]; then
    say "build spider-metalab binary"
    CLI_DEPS="spider_fsmeta spider_snapshot spider_raft spider_telemetry spider_obs spider_workload spider_sim spider_core spider_serve spider_graph spider_report spider_experiments spider_stats serde_json"
    externs=""
    for d in $CLI_DEPS; do externs+=" $(ext $d)"; done
    $RUSTC --crate-name spider_metalab crates/cli/src/main.rs $externs \
        -o "$OUT/spider-metalab"

    say "test cli_smoke"
    # env!("CARGO_BIN_EXE_spider-metalab") is read at *compile* time; the
    # variable name contains a dash, so it needs env(1) to set.
    env "CARGO_BIN_EXE_spider-metalab=$PWD/$OUT/spider-metalab" \
        $RUSTC --test --crate-name cli_smoke_tests crates/cli/tests/cli_smoke.rs \
        $externs -o "$OUT/cli_smoke_tests"
    "$OUT/cli_smoke_tests" --test-threads=2 -q

    # Instrumented pipeline run; --check validates the exported snapshot
    # (schema version, span sums cover children, no unaccounted pipeline
    # bucket over 10%).
    say "telemetry smoke"
    rm -rf "$OUT/telemetry-smoke"
    "$OUT/spider-metalab" telemetry --dir "$OUT/telemetry-smoke" --quick \
        --scale 0.00005 --days 28 --json --check >/dev/null
fi

# Serve load-generator smoke: synthesize a tiny store, run a 3-level
# in-process sweep (including an overload level), and require zero
# protocol errors and zero dropped requests.
if [ -z "$FILTER" ] || [[ "serve_load" == *"$FILTER"* ]]; then
    say "serve loadgen smoke"
    rm -rf "$OUT/serve-smoke"
    "$OUT/spider-metalab" loadgen --dir "$OUT/serve-smoke" --synth-days 4 \
        --synth-rows 400 --seed 660942 --sweep --analysts 8 --tenants 3 \
        --threads 4 --queries 40 --out "$OUT/BENCH_serve_smoke.json" >/dev/null
fi

# Observability smoke: a seeded loadgen run with --trace must produce a
# chrome trace that validates (well-formed trace_event JSON, spans,
# flow starts/finishes paired, child spans inside their parents), and
# the flightrec subcommand must dump a ring whose trace carries >=1
# cross-thread flow pair, while its two
# bracketing metrics scrapes report deltas equal to the counters'
# actual movement. Span-sum consistency of the underlying stream is
# covered by the telemetry smoke above (`telemetry --check`).
if [ -z "$FILTER" ] || [[ "obs_smoke" == *"$FILTER"* ]]; then
    say "obs smoke"
    rm -rf "$OUT/obs-smoke" "$OUT/obs-smoke-trace.json"
    "$OUT/spider-metalab" loadgen --dir "$OUT/obs-smoke" --synth-days 3 \
        --synth-rows 300 --seed 660942 --analysts 4 --tenants 2 --threads 2 \
        --queries 10 --trace="$OUT/obs-smoke-trace.json" >/dev/null
    "$OUT/spider-metalab" flightrec --check "$OUT/obs-smoke-trace.json"
    "$OUT/spider-metalab" flightrec --dir "$OUT/obs-smoke" --validate >/dev/null
fi

# Columnar fast-path benchmark smoke: tiny run, asserts the row-path /
# fast-path fingerprint cross-checks internally (sequential under the
# rayon stub, so timings here are not representative — see BENCH notes).
if [ -z "$FILTER" ] || [[ "frame_path" == *"$FILTER"* ]]; then
    say "build + smoke frame_path bench"
    BENCH_DEPS="spider_core spider_snapshot spider_telemetry spider_obs spider_fsmeta rustc_hash"
    externs=""
    for d in $BENCH_DEPS; do externs+=" $(ext $d)"; done
    $RUSTC --crate-name frame_path crates/bench/src/bin/frame_path.rs $externs \
        -o "$OUT/frame_path"
    "$OUT/frame_path" "$OUT/BENCH_frame_path_smoke.json" --days 2 --rows 2000 --reps 1 >/dev/null
fi

# Incremental aggregation benchmark smoke: small warm store, one
# appended day; asserts the delta-applied state fingerprints identical
# to the full-rescan oracle and that the fault cells fall back cleanly.
# (Speedup is asserted inside the bin; a small store keeps it honest —
# the committed BENCH_incremental.json comes from the full-size run.)
if [ -z "$FILTER" ] || [[ "incremental_bench" == *"$FILTER"* ]]; then
    say "build + smoke incremental bench"
    BENCH_DEPS="spider_core spider_snapshot spider_telemetry spider_obs spider_fsmeta rustc_hash"
    externs=""
    for d in $BENCH_DEPS; do externs+=" $(ext $d)"; done
    $RUSTC --crate-name incremental_bench crates/bench/src/bin/incremental_bench.rs $externs \
        -o "$OUT/incremental_bench"
    "$OUT/incremental_bench" "$OUT/BENCH_incremental_smoke.json" --days 65 --rows 1500 --reps 2 >/dev/null
fi

for entry in "${ITESTS[@]}"; do
    IFS=: read -r name path deps <<<"$entry"
    [ -f "$path" ] || continue
    if [ -n "$FILTER" ] && [[ "$name" != *"$FILTER"* ]]; then continue; fi
    externs=""
    for d in $deps; do externs+=" $(ext $d)"; done
    say "itest $name"
    $RUSTC --test --crate-name "it_${name}" "$path" $externs \
        --extern serde_derive="$DEPS/libserde_derive.so" \
        -o "$OUT/it_${name}"
    "$OUT/it_${name}" --test-threads=4 -q
done

say "offline gate: PASS"
