//! Population-level calibration: the generated population reproduces the
//! paper's structural targets at full project scale (no simulation).

use spider_graph::{BipartiteGraphBuilder, ComponentSet, Labeling};
use spider_workload::{Population, PopulationConfig, ScienceDomain};

fn population() -> Population {
    Population::generate(&PopulationConfig::default())
}

#[test]
fn population_scale_matches_paper() {
    let pop = population();
    assert_eq!(pop.project_count(), 380, "the paper's 380 projects");
    let users = pop.user_count();
    assert!(
        (900..=1900).contains(&users),
        "user count {users} out of band (paper: 1,362)"
    );
}

#[test]
fn membership_graph_has_paper_structure() {
    let pop = population();
    let mut builder =
        BipartiteGraphBuilder::new(pop.user_count() as u32, pop.project_count() as u32);
    for p in &pop.projects {
        for m in &p.members {
            builder.add_edge(m.0, p.id.0);
        }
    }
    let graph = builder.build();
    let components = ComponentSet::compute(&graph, Labeling::UnionFind);

    // One giant component holding most vertices (paper: 72%).
    let largest = components.largest().unwrap();
    let giant = components.sizes()[largest as usize] as f64;
    let frac = giant / graph.num_vertices() as f64;
    assert!(
        (0.45..=0.92).contains(&frac),
        "giant fraction {frac} (paper 0.72)"
    );

    // A fringe of many small components (paper: 160 total, 60%+ pairs).
    assert!(
        components.count() >= 30,
        "{} components",
        components.count()
    );
    let pairs = components
        .size_distribution()
        .iter()
        .filter(|&&(s, _)| s <= 2)
        .map(|&(_, c)| c)
        .sum::<u32>();
    assert!(
        pairs as f64 / components.count() as f64 > 0.4,
        "pair components {pairs}/{}",
        components.count()
    );
}

#[test]
fn networked_flags_respect_table1_network_column() {
    let pop = population();
    for (domain, expect_all) in [
        (ScienceDomain::Chp, true),
        (ScienceDomain::Env, true),
        (ScienceDomain::Nfu, true),
        (ScienceDomain::Nro, true),
    ] {
        let all_networked = pop.domain_projects(domain).all(|p| p.networked);
        assert_eq!(all_networked, expect_all, "{}", domain.id());
    }
    for domain in [ScienceDomain::Aph, ScienceDomain::Med, ScienceDomain::Pss] {
        assert!(
            pop.domain_projects(domain).all(|p| !p.networked),
            "{} should be isolated",
            domain.id()
        );
    }
}

#[test]
fn volume_split_reproduces_heavy_projects() {
    let pop = population();
    // The paper's heaviest projects: a 505M-file stf project and a 372M
    // chp project. In paper-absolute terms our top projects must also be
    // in the hundreds of millions.
    let mut volumes: Vec<(f64, &str)> = pop
        .projects
        .iter()
        .map(|p| (p.volume_k, p.domain.id()))
        .collect();
    volumes.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap());
    assert!(volumes[0].0 > 100_000.0, "top project {volumes:?}");
    let top5_domains: Vec<&str> = volumes[..5].iter().map(|v| v.1).collect();
    assert!(
        top5_domains
            .iter()
            .any(|d| ["stf", "chp", "bip", "csc"].contains(d)),
        "top-5 volume domains {top5_domains:?}"
    );
}

#[test]
fn projects_per_user_distribution() {
    let pop = population();
    let counts = pop.projects_per_user();
    let multi = counts.iter().filter(|&&c| c > 1).count() as f64 / counts.len() as f64;
    assert!(multi > 0.4, "multi-project fraction {multi} (paper >60%)");
    let heavy = counts.iter().filter(|&&c| c >= 8).count() as f64 / counts.len() as f64;
    assert!(heavy > 0.002, "heavy-user fraction {heavy} (paper ~2%)");
    assert!(*counts.iter().max().unwrap() >= 6);
}
