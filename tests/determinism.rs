//! Determinism: the same seed yields byte-identical snapshots and
//! identical analysis results; different seeds diverge.

use spider_experiments::{Lab, LabConfig};
use spider_sim::{SimConfig, Simulation};
use spider_snapshot::{colf, SnapshotStore};

fn dir_for(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("spider-det-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn same_seed_same_snapshot_bytes() {
    let run = |tag: &str| {
        let dir = dir_for(tag);
        let mut store = SnapshotStore::open(&dir).unwrap();
        let mut sim = Simulation::new(SimConfig::test_small(77));
        sim.run(&mut store).unwrap();
        let last = *store.days().last().unwrap();
        let snap = store.get(last).unwrap().unwrap();
        let bytes = colf::encode(&snap);
        std::fs::remove_dir_all(&dir).unwrap();
        bytes
    };
    assert_eq!(run("a"), run("b"));
}

#[test]
fn different_seeds_diverge() {
    let run = |seed: u64, tag: &str| {
        let dir = dir_for(tag);
        let mut store = SnapshotStore::open(&dir).unwrap();
        let mut sim = Simulation::new(SimConfig::test_small(seed));
        let outcome = sim.run(&mut store).unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
        outcome.total_created
    };
    assert_ne!(run(1, "s1"), run(2, "s2"));
}

#[test]
fn analyses_are_deterministic() {
    let summarize = |tag: &str| {
        let dir = dir_for(tag);
        let lab = Lab::prepare(LabConfig::test_small(&dir, 42)).unwrap();
        let a = lab.analyses();
        let result = (
            a.census.unique_files(),
            a.census.unique_dirs(),
            a.users.active_users,
            a.components.component_count,
            a.components.largest_size,
            a.collaboration.collaborating_pairs,
            serde_json::to_string(&a.summary).unwrap(),
        );
        std::fs::remove_dir_all(&dir).unwrap();
        result
    };
    assert_eq!(summarize("x"), summarize("y"));
}
