//! Every experiment runner executes on a shared small-scale lab and
//! produces well-formed output; the scale-robust shape checks must pass
//! even at test scale. (The full-scale shape validation is recorded in
//! EXPERIMENTS.md by the `repro` binary.)

use spider_experiments::{all_experiments, Lab, LabConfig};
use std::sync::OnceLock;

fn shared_lab() -> &'static Lab {
    static LAB: OnceLock<Lab> = OnceLock::new();
    LAB.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("spider-shapes-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        Lab::prepare(LabConfig::test_small(dir, 7)).expect("lab prepares")
    })
}

#[test]
fn all_runners_produce_output() {
    let lab = shared_lab();
    let experiments = all_experiments();
    assert_eq!(experiments.len(), 21);
    for (id, run) in experiments {
        let out = run(lab);
        assert_eq!(out.id, id);
        assert!(!out.title.is_empty(), "{id}: empty title");
        assert!(!out.text.is_empty(), "{id}: empty text");
        assert!(
            !out.verdicts.checks.is_empty(),
            "{id}: no shape checks recorded"
        );
        if let Some(csv) = &out.csv {
            assert!(csv.lines().count() >= 2, "{id}: csv has no data rows");
        }
    }
}

#[test]
fn runner_lookup_by_id() {
    assert!(spider_experiments::experiment_by_id("table1").is_some());
    assert!(spider_experiments::experiment_by_id("fig16").is_some());
    assert!(spider_experiments::experiment_by_id("nope").is_none());
}

/// Checks that are robust to the reduced test scale. Anything tied to
/// absolute volume (e.g. the scaled-100M census) is validated only in the
/// full-scale repro run.
#[test]
fn scale_robust_shapes_hold() {
    let lab = shared_lab();
    let robust: &[(&str, &[&str])] = &[
        ("table3", &["giant-component-share", "sparse-diameter"]),
        ("fig05", &["government-majority", "domain-experts-dominate"]),
        ("fig07", &["dirs-are-minority"]),
        ("fig09", &["floor-at-user-dirs"]),
        ("fig13", &["untouched-dominates", "more-new-than-readonly"]),
        ("fig14", &["default-only-domains"]),
        ("fig15", &["dirs-grow-slower"]),
        ("fig18", &["descending-loglog-slope"]),
        (
            "pipeline",
            &[
                "columnar-compression",
                "conversion-lossless",
                "psv-codec-lossless",
            ],
        ),
    ];
    let mut failures = Vec::new();
    for (id, names) in robust {
        let run = spider_experiments::experiment_by_id(id).unwrap();
        let out = run(lab);
        for name in *names {
            let check = out
                .verdicts
                .checks
                .iter()
                .find(|c| c.name == *name)
                .unwrap_or_else(|| panic!("{id}: check {name} missing"));
            if !check.pass {
                failures.push(format!("{id}/{name}: measured {}", check.measured));
            }
        }
    }
    assert!(
        failures.is_empty(),
        "shape regressions:\n{}",
        failures.join("\n")
    );
}
