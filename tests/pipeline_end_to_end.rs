//! End-to-end pipeline test: simulate -> snapshot store -> stream analyses.
//!
//! Exercises the full reproduction stack at a small scale and checks the
//! structural invariants that hold at any scale.

use spider_experiments::{Lab, LabConfig};

fn lab_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("spider-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn full_pipeline_produces_consistent_analyses() {
    let dir = lab_dir("pipeline");
    let lab = Lab::prepare(LabConfig::test_small(&dir, 11)).expect("lab prepares");
    let a = lab.analyses();

    // The simulation ran (not cached) and persisted the expected cadence.
    let outcome = lab.outcome().expect("fresh run");
    assert_eq!(
        outcome.snapshot_days.len() as u32,
        lab.config().sim.snapshot_count()
    );
    assert!(outcome.total_created > 1_000);

    // Census consistency: per-domain counts sum to the global counts, and
    // nothing was unattributed.
    let per_domain: u64 = spider_workload::ALL_DOMAINS
        .iter()
        .map(|&d| a.census.domain_counts(d).total())
        .sum();
    assert_eq!(per_domain, a.census.unique_entries());
    assert_eq!(a.census.unattributed, 0);

    // Ownership consistency: files per user and per project both sum to
    // the unique file total.
    let by_user: u64 = a.census.files_per_user().values().sum();
    let by_project: u64 = a.census.files_per_project().values().sum();
    assert_eq!(by_user, a.census.unique_files());
    assert_eq!(by_project, a.census.unique_files());

    // Unique files >= peak live files (deletions inflate the census).
    let peak_live = a
        .growth
        .files()
        .points()
        .iter()
        .map(|&(_, v)| v as u64)
        .max()
        .unwrap();
    assert!(a.census.unique_files() >= peak_live);

    // Active users are a subset of the registered population and > 0.
    assert!(a.users.active_users > 0);
    assert!(a.users.active_users <= lab.population().user_count() as u64);

    // The growth series covers every snapshot.
    assert_eq!(
        a.growth.files().len() as u32,
        lab.config().sim.snapshot_count()
    );

    // Access breakdowns exist for every adjacent pair.
    assert_eq!(
        a.access.weeks().len() as u32,
        lab.config().sim.snapshot_count() - 1
    );

    // The network has both sides populated and a giant component.
    assert!(a.network.user_count() > 10);
    assert!(a.network.project_count() > 10);
    assert!(a.components.largest_size > 10);
    assert!(a.components.largest_fraction > 0.2);

    // Table 1 has all 35 rows and nonzero volume in the big domains.
    assert_eq!(a.summary.rows.len(), 35);
    assert!(a.summary.row(spider_workload::ScienceDomain::Bip).entries_k > 0.0);

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lab_heals_a_rotted_cached_store() {
    let dir = lab_dir("rot");
    let config = LabConfig::test_small(&dir, 13);
    let first = Lab::prepare(config.clone()).expect("first run");
    assert!(first.store_health().is_clean(), "fresh store scrubs clean");
    let days: Vec<u32> = first.store().days().to_vec();
    assert!(days.len() >= 3);
    let store_dir = first.store_dir().to_path_buf();
    drop(first);

    // Rot the middle week in place: keep the header but destroy the body,
    // the way a torn write or media fault would.
    let victim = days[days.len() / 2];
    let path = store_dir.join(format!("snap-{victim:05}.colf"));
    let bytes = std::fs::read(&path).expect("victim file exists");
    std::fs::write(&path, &bytes[..bytes.len().min(16)]).unwrap();

    let healed = Lab::prepare(config).expect("cached run heals instead of failing");
    assert!(healed.outcome().is_none(), "store cache was reused");
    let health = healed.store_health();
    assert_eq!(health.quarantined.len(), 1);
    assert_eq!(health.quarantined[0].day, victim);
    let substitute = health
        .substitute_for(victim)
        .expect("a healthy neighbor substitutes");
    assert!(days.contains(&substitute) && substitute != victim);
    assert!(!healed.store().days().contains(&victim));
    assert!(store_dir
        .join("quarantine")
        .join(format!("snap-{victim:05}.colf"))
        .is_file());

    // Analyses still ran over the surviving weeks.
    assert!(healed.analyses().census.unique_files() > 0);
    assert_eq!(
        healed.analyses().growth.files().len(),
        days.len() - 1,
        "growth series covers every surviving week"
    );

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn lab_cache_reuses_the_store() {
    let dir = lab_dir("cache");
    let config = LabConfig::test_small(&dir, 12);
    let first = Lab::prepare(config.clone()).expect("first run");
    assert!(first.outcome().is_some(), "first run simulates");
    let first_files = first.analyses().census.unique_files();
    drop(first);

    let second = Lab::prepare(config).expect("cached run");
    assert!(second.outcome().is_none(), "second run reuses the store");
    assert_eq!(second.analyses().census.unique_files(), first_files);

    std::fs::remove_dir_all(&dir).unwrap();
}
